"""Stateful property tests (hypothesis rule-based machines).

Two state machines exercise long random operation sequences:

* :class:`TrapPoolMachine` -- arbitrary stress/release/query schedules
  must keep the pool's physics invariants;
* :class:`ProviderMachine` -- arbitrary rent/release/advance sequences
  must keep the platform's tenancy invariants.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cloud.fleet import build_fleet
from repro.cloud.provider import CloudProvider
from repro.errors import CapacityError
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.physics.constants import HIGH_POOL, REFERENCE_TEMPERATURE_K
from repro.physics.kinetics import TrapPool


class TrapPoolMachine(RuleBasedStateMachine):
    """Physics invariants under arbitrary schedules."""

    def __init__(self):
        super().__init__()
        self.pool = TrapPool(params=HIGH_POOL, amplitude_ps=1.0)
        self.total_stress_hours = 0.0
        self.peak_charge = 0.0

    @rule(hours=st.floats(min_value=0.01, max_value=100.0),
          temp_offset=st.floats(min_value=-30.0, max_value=30.0))
    def stress(self, hours, temp_offset):
        self.pool.stress(hours, REFERENCE_TEMPERATURE_K + temp_offset)
        self.total_stress_hours += hours
        self.peak_charge = max(self.peak_charge, self.pool.charge_ps)

    @rule(hours=st.floats(min_value=0.01, max_value=100.0))
    def release(self, hours):
        before = self.pool.charge_ps
        self.pool.release(hours, REFERENCE_TEMPERATURE_K)
        assert self.pool.charge_ps <= before

    @invariant()
    def charge_never_negative(self):
        assert self.pool.charge_ps >= 0.0

    @invariant()
    def charge_bounded_by_accelerated_continuous_stress(self):
        if self.total_stress_hours <= 0.0:
            return
        bound_pool = TrapPool(params=HIGH_POOL, amplitude_ps=1.0)
        bound_pool.stress(
            self.total_stress_hours, REFERENCE_TEMPERATURE_K + 30.0
        )
        assert self.pool.charge_ps <= bound_pool.charge_ps * 1.001

    @invariant()
    def equivalent_time_never_negative(self):
        assert self.pool.equivalent_stress_hours >= 0.0


TestTrapPoolStateful = TrapPoolMachine.TestCase
TestTrapPoolStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class ProviderMachine(RuleBasedStateMachine):
    """Platform tenancy invariants under arbitrary operation sequences."""

    FLEET_SIZE = 3

    def __init__(self):
        super().__init__()
        self.provider = CloudProvider(seed=3)
        fleet = build_fleet(ZYNQ_ULTRASCALE_PLUS, self.FLEET_SIZE, seed=4)
        self.device_ids = {d.device_id for d in fleet}
        self.provider.create_region("r", fleet)
        self.held = []

    @rule()
    def rent(self):
        try:
            instance = self.provider.rent("r", "tenant")
        except CapacityError:
            assert len(self.held) == self.FLEET_SIZE
            return
        self.held.append(instance)

    @precondition(lambda self: self.held)
    @rule(index=st.integers(min_value=0, max_value=10))
    def release(self, index):
        instance = self.held.pop(index % len(self.held))
        self.provider.release(instance)
        assert instance.device.loaded_design is None  # wiped

    @rule(hours=st.floats(min_value=0.1, max_value=24.0))
    def advance(self, hours):
        self.provider.advance(hours)

    @invariant()
    def no_device_double_rented(self):
        rented = [inst.device.device_id for inst in self.held]
        assert len(rented) == len(set(rented))

    @invariant()
    def every_device_accounted_for(self):
        region = self.provider.region("r")
        pooled = {d.device_id for d in region.devices()}
        assert pooled == self.device_ids

    @invariant()
    def clocks_are_synchronised(self):
        # Lazy aging defers the walk; syncing here stress-tests the
        # catch-up replay at every step of every generated schedule.
        self.provider.sync_all()
        region = self.provider.region("r")
        for device in region.devices():
            assert abs(device.sim_hours - self.provider.clock_hours) < 1e-6


TestProviderStateful = ProviderMachine.TestCase
TestProviderStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
