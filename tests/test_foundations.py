"""Tests for units, RNG management and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.rng import RngFactory, make_rng
from repro.units import (
    celsius_to_kelvin,
    hours_to_seconds,
    kelvin_to_celsius,
    ns_to_ps,
    ps_to_ns,
    seconds_to_hours,
)


class TestUnits:
    def test_temperature_round_trip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(60.0)) == pytest.approx(60.0)

    def test_known_values(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert hours_to_seconds(1.0) == 3600.0
        assert seconds_to_hours(1800.0) == 0.5
        assert ns_to_ps(2.8) == pytest.approx(2800.0)
        assert ps_to_ns(2800.0) == pytest.approx(2.8)


class TestRng:
    def test_make_rng_accepts_int(self):
        a, b = make_rng(42), make_rng(42)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_make_rng_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_factory_spawns_independent_streams(self):
        factory = RngFactory(7)
        a, b = factory.spawn(), factory.spawn()
        draws_a = a.integers(0, 1000, 20)
        draws_b = b.integers(0, 1000, 20)
        assert not np.array_equal(draws_a, draws_b)

    def test_named_streams_stable(self):
        factory = RngFactory(7)
        first = factory.stream("device")
        second = factory.stream("device")
        assert first is second

    def test_named_streams_reproducible_across_factories(self):
        a = RngFactory(7).stream("device").integers(0, 1000, 10)
        b = RngFactory(7).stream("device").integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        factory = RngFactory(7)
        a = factory.stream("x").integers(0, 1000, 10)
        b = factory.stream("y").integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_adding_consumers_does_not_perturb_named_streams(self):
        plain = RngFactory(3)
        values_before = plain.stream("sensors").integers(0, 1000, 5)
        busy = RngFactory(3)
        busy.spawn()  # extra consumer
        busy.stream("other")
        values_after = busy.stream("sensors").integers(0, 1000, 5)
        assert np.array_equal(values_before, values_after)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigurationError, errors.PhysicsError, errors.FabricError,
        errors.PlacementError, errors.RoutingError, errors.DesignRuleViolation,
        errors.SensorError, errors.CalibrationError, errors.CloudError,
        errors.CapacityError, errors.AccessError, errors.TenancyError,
        errors.AttackError, errors.AnalysisError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_subdomain_relationships(self):
        assert issubclass(errors.PlacementError, errors.FabricError)
        assert issubclass(errors.CalibrationError, errors.SensorError)
        assert issubclass(errors.CapacityError, errors.CloudError)
