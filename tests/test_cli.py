"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp1_flags(self):
        args = build_parser().parse_args(
            ["exp1", "--quick", "--seed", "9", "--burn-hours", "12"]
        )
        assert args.quick and args.seed == 9 and args.burn_hours == 12

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--compare"])
        assert args.compare

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_every_subcommand_has_observability_flags(self):
        for argv in (["exp1"], ["exp2"], ["exp3"], ["sweep", "exp1"],
                     ["table1"], ["report"], ["profile", "exp1"]):
            args = build_parser().parse_args(argv + ["--trace"])
            assert args.trace and args.metrics_out is None

    def test_trace_accepts_optional_file(self):
        args = build_parser().parse_args(["exp1", "--trace", "out.jsonl"])
        assert args.trace == "out.jsonl"
        args = build_parser().parse_args(["exp1", "--trace"])
        assert args.trace is True
        args = build_parser().parse_args(["exp1"])
        assert args.trace is False

    def test_chrome_trace_flag(self):
        args = build_parser().parse_args(
            ["sweep", "exp1", "--chrome-trace", "trace.json"]
        )
        assert args.chrome_trace == "trace.json"

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["profile", "exp1", "--quick", "--seed", "5",
             "--json", "prof.json"]
        )
        assert args.experiment == "exp1"
        assert args.quick and args.seed == 5
        assert args.profile_json == "prof.json"

    def test_bench_diff_flags(self):
        args = build_parser().parse_args(
            ["bench", "diff", "old.json", "new.json", "--gate", "80"]
        )
        assert args.old == "old.json" and args.new == "new.json"
        assert args.gate == 80.0

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "exp2", "--seeds", "1:4,9", "--jobs", "3"]
        )
        assert args.experiment == "exp2"
        assert args.seeds == "1:4,9" and args.jobs == "3"
        assert not args.paper

    def test_sweep_jobs_auto_accepted(self):
        args = build_parser().parse_args(["sweep", "exp1", "--jobs", "auto"])
        assert args.jobs == "auto"

    def test_sweep_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "exp9"])

    def test_sweep_resume_flag(self):
        args = build_parser().parse_args(
            ["sweep", "exp1", "--resume", "sweep.journal"]
        )
        assert args.resume == "sweep.journal"
        assert build_parser().parse_args(["sweep", "exp1"]).resume is None

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--campaign", "scan", "--devices", "512",
             "--victims", "3", "--engine", "reference",
             "--batch-hours", "9", "--quick"]
        )
        assert args.campaign == "scan"
        assert args.devices == 512 and args.victims == 3
        assert args.engine == "reference" and args.batch_hours == 9.0
        assert args.quick

    def test_fleet_has_observability_flags(self):
        args = build_parser().parse_args(["fleet", "--trace"])
        assert args.trace and args.metrics_out is None

    def test_fleet_rejects_unknown_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--campaign", "psychic"])

    def test_fleet_series_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--series", "series.json",
             "--series-cadence", "0.5"]
        )
        assert args.series == "series.json"
        assert args.series_cadence == 0.5
        defaults = build_parser().parse_args(["fleet"])
        assert defaults.series is None
        assert defaults.series_cadence == 1.0

    def test_fleet_chaos_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--fault-plan", "storm.json", "--seeds", "1:3",
             "--resume", "fleet.journal"]
        )
        assert args.fault_plan == "storm.json"
        assert args.seeds == "1:3"
        assert args.resume == "fleet.journal"
        defaults = build_parser().parse_args(["fleet"])
        assert defaults.fault_plan is None
        assert defaults.seeds is None and defaults.resume is None

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "exp2", "--seed", "3", "--plan", "storm.json"]
        )
        assert args.target == "exp2"
        assert args.seed == 3 and args.plan == "storm.json"
        assert not args.paper

    def test_chaos_sweep_flags(self):
        args = build_parser().parse_args(
            ["chaos", "sweep", "--experiment", "exp2", "--seeds", "1:4",
             "--jobs", "2", "--resume", "chaos.journal"]
        )
        assert args.target == "sweep" and args.experiment == "exp2"
        assert args.seeds == "1:4" and args.jobs == "2"
        assert args.resume == "chaos.journal"

    def test_chaos_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "exp9"])

    def test_chaos_has_observability_flags(self):
        args = build_parser().parse_args(["chaos", "exp1", "--trace"])
        assert args.trace is True


class TestSeedSpec:
    def test_comma_list_and_ranges(self):
        from repro.cli import parse_seed_spec

        assert parse_seed_spec("1,2,5") == [1, 2, 5]
        assert parse_seed_spec("1:4") == [1, 2, 3, 4]
        assert parse_seed_spec("1:3,9, 11") == [1, 2, 3, 9, 11]

    def test_invalid_specs_rejected(self):
        from repro.cli import parse_seed_spec

        for spec in ("", "a", "3:1", "1:2:3"):
            with pytest.raises(ValueError):
                parse_seed_spec(spec)


class TestMain:
    def test_table1_prints_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "/kmac_app_rsp" in out

    def test_exp1_quick(self, capsys):
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_exp1_figure_panels(self, capsys):
        main(["exp1", "--quick", "--burn-hours", "16",
              "--recovery-hours", "8", "--seed", "5"])
        out = capsys.readouterr().out
        assert "ps routes" in out

    def test_exp2_quick(self, capsys):
        assert main(["exp2", "--quick", "--no-figure",
                     "--burn-hours", "24", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "accuracy by length" in out

    def test_exp3_quick(self, capsys):
        assert main(["exp3", "--quick", "--no-figure",
                     "--recovery-hours", "8", "--seed", "19"]) == 0
        out = capsys.readouterr().out
        assert "boards probed" in out

    def test_sweep_quick(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5,6"]) == 0
        out = capsys.readouterr().out
        assert "exp1 recovery accuracy" in out
        assert "seeds=2 jobs=1" in out

    def test_sweep_with_jobs(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5:6", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_sweep_bad_seed_spec_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "9:1"]) == 2
        assert "invalid --seeds" in capsys.readouterr().err

    def test_sweep_bad_jobs_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_non_numeric_jobs_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1", "--jobs", "lots"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_jobs_auto_runs(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5", "--jobs", "auto"]) == 0
        assert "jobs=auto" in capsys.readouterr().out

    def test_fleet_quick(self, capsys):
        assert main(["fleet", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "recovery yield" in out
        assert "lifecycle events" in out

    def test_fleet_churn_bench(self, capsys):
        assert main(["fleet", "--campaign", "churn", "--quick",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "capacity misses" in out

    def test_fleet_series_end_to_end(self, tmp_path, capsys):
        """--series writes the document, lands it in the run store and
        adds the sim-clock tracks to the Chrome trace."""
        import json

        series_path = tmp_path / "series.json"
        trace_path = tmp_path / "trace.json"
        store_path = tmp_path / "runs.db"
        assert main([
            "fleet", "--devices", "40", "--horizon-hours", "60",
            "--victims", "1", "--seed", "3",
            "--series", str(series_path),
            "--chrome-trace", str(trace_path),
            "--runstore", str(store_path),
        ]) == 0
        assert "sim-time series written" in capsys.readouterr().out

        payload = json.loads(series_path.read_text())
        assert payload["version"] == 1
        assert "fleet.pool_free" in payload["series"]
        assert payload["series"]["fleet.pool_free"]["points"][0] == \
            [0.0, 40.0]

        from repro.observability.runstore import RunStore
        from repro.observability.timeline import SIM_CLOCK_PID

        with RunStore(store_path) as store:
            run = store.get_run(store.resolve("latest"))
        assert run["kind"] == "fleet"
        assert run["experiment"] == "fleet"
        assert run["series"] == payload

        document = json.loads(trace_path.read_text())
        sim = [e for e in document["traceEvents"]
               if e.get("pid") == SIM_CLOCK_PID and e["ph"] == "C"]
        assert {e["name"] for e in sim} == set(payload["series"])

    def test_fleet_series_engine_invariant(self, tmp_path):
        """The CLI surface reproduces the acceptance gate: both engines
        write byte-identical series files."""
        paths = {}
        for engine in ("reference", "bulk"):
            paths[engine] = tmp_path / f"{engine}.json"
            assert main([
                "fleet", "--devices", "40", "--horizon-hours", "60",
                "--victims", "1", "--seed", "5", "--engine", engine,
                "--series", str(paths[engine]),
            ]) == 0
        assert paths["reference"].read_bytes() == \
            paths["bulk"].read_bytes()

    def test_fleet_with_committed_fault_plan(self, tmp_path, capsys):
        """The committed chaos plan drives a quick campaign end to end
        and its hash lands in the run store."""
        from pathlib import Path

        plan = Path(__file__).resolve().parent.parent / "plans" \
            / "fleet-chaos-default.json"
        store_path = tmp_path / "runs.db"
        assert main(["fleet", "--quick", "--seed", "3",
                     "--fault-plan", str(plan),
                     "--runstore", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "recovery yield" in out
        assert "faults injected" in out
        assert "region r0" in out

        from repro.observability.runstore import RunStore

        with RunStore(store_path) as store:
            run = store.get_run(store.resolve("latest"))
        assert run["fault_plan_hash"]

    def test_fleet_missing_fault_plan_fails_cleanly(self, tmp_path, capsys):
        assert main(["fleet", "--quick", "--seed", "3", "--fault-plan",
                     str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "absent.json" in err

    def test_fleet_churn_rejects_chaos_flags(self, capsys):
        assert main(["fleet", "--campaign", "churn", "--quick",
                     "--fault-plan", "storm.json"]) == 2
        assert "pure-churn" in capsys.readouterr().err

    def test_fleet_resume_requires_seeds(self, capsys):
        assert main(["fleet", "--quick",
                     "--resume", "fleet.journal"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_fleet_sweep_resume_round_trip(self, tmp_path, capsys):
        """A journalled fleet sweep rerun from its journal reports the
        identical per-seed distribution plus the resumed-count line."""
        journal = tmp_path / "fleet.journal"
        argv = ["fleet", "--devices", "40", "--horizon-hours", "60",
                "--victims", "1", "--seeds", "3,4",
                "--resume", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert "sweep [bulk] over 40 boards" in first
        assert f"journal: {journal}" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed 2 seed(s)" in second
        assert second.replace("resumed 2 seed(s) from the journal\n",
                              "") == first

    def test_sweep_resume_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        assert main(["sweep", "exp1", "--seeds", "5,6",
                     "--resume", str(journal)]) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert f"journal: {journal}" in first
        assert main(["sweep", "exp1", "--seeds", "5,6",
                     "--resume", str(journal)]) == 0
        second = capsys.readouterr().out
        # The resumed run reports the identical distribution.
        assert first == second


class TestChaosCommand:
    def test_chaos_exp1_quick_passes_gate(self, capsys):
        assert main(["chaos", "exp1", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos exp1" in out
        assert "within bound" in out
        assert "retries=" in out

    def test_chaos_with_committed_plan(self, capsys):
        from pathlib import Path

        plan = Path(__file__).resolve().parent.parent / "plans" \
            / "chaos-default.json"
        assert main(["chaos", "exp1", "--quick", "--seed", "1",
                     "--plan", str(plan)]) == 0
        assert "within bound" in capsys.readouterr().out

    def test_chaos_sweep_reports_bound(self, capsys):
        assert main(["chaos", "sweep", "--experiment", "exp1",
                     "--seeds", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "chaos recovery accuracy" in out
        assert "bound=0.85" in out

    def test_chaos_missing_plan_fails_cleanly(self, tmp_path, capsys):
        assert main(["chaos", "exp1",
                     "--plan", str(tmp_path / "ghost.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "ghost.json" in err


class TestErrorReporting:
    """ReproError -> one line on stderr, exit 2; stack under REPRO_DEBUG."""

    def _corrupt_journal(self, tmp_path):
        path = tmp_path / "broken.journal"
        path.write_text("{half a json")
        return path

    def test_repro_error_is_one_line_exit_2(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        journal = self._corrupt_journal(tmp_path)
        assert main(["sweep", "exp1", "--seeds", "5",
                     "--resume", str(journal)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "broken.journal" in err
        assert "Traceback" not in err

    def test_repro_debug_adds_traceback(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        journal = self._corrupt_journal(tmp_path)
        assert main(["sweep", "exp1", "--seeds", "5",
                     "--resume", str(journal)]) == 2
        err = capsys.readouterr().err
        assert "Traceback" in err
        assert "error: " in err

    def test_non_repro_errors_still_propagate(self, monkeypatch):
        """Only ReproError is swallowed; genuine bugs keep their stack."""
        import repro.cli as cli

        def explode(args):
            raise RuntimeError("a real bug")

        monkeypatch.setitem(cli._HANDLERS, "table1", explode)
        with pytest.raises(RuntimeError, match="a real bug"):
            main(["table1"])


class TestObservabilityFlags:
    def test_trace_prints_span_tree(self, capsys):
        code = main(["exp1", "--quick", "--no-figure", "--trace",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "experiment [" in out
        assert "phase.measurement [" in out
        assert "sensor.capture [" in out

    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5", "--metrics-out", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        counters = payload["metrics"]["counters"]
        assert counters["captures_total"] > 0
        assert counters["protocol_cycles_total"] > 0
        latency = payload["metrics"]["histograms"]["capture_latency_seconds"]
        assert latency["count"] > 0 and latency["p95"] >= latency["p50"]
        assert payload["manifest"]["config"]["burn_hours"] == 16
        assert payload["manifest"]["seed"] == 5

    def test_archive_embeds_manifest(self, tmp_path):
        target = tmp_path / "exp1.json"
        assert main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5", "--output", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 2
        assert payload["manifest"]["seed"] == 5


def _walk_span_dicts(payload):
    yield payload
    for child in payload.get("children", ()):
        yield from _walk_span_dicts(child)


class TestShardedTraceCollection:
    def test_sharded_sweep_writes_worker_spans(self, tmp_path, capsys,
                                               monkeypatch):
        """Acceptance: ``repro sweep exp1 --seeds 1:8 --jobs 4 --trace
        out.jsonl`` captures spans from every worker -- each shard has
        at least one worker-attributed span in the written forest."""
        import repro.montecarlo as montecarlo

        monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 4)
        target = tmp_path / "out.jsonl"
        code = main(["sweep", "exp1", "--seeds", "1:8", "--jobs", "4",
                     "--trace", str(target)])
        assert code == 0
        assert "spans written to" in capsys.readouterr().out
        roots = [json.loads(line)
                 for line in target.read_text().splitlines() if line]
        spans = [sp for root in roots for sp in _walk_span_dicts(root)]
        worker_spans = [sp for sp in spans
                        if sp.get("attrs", {}).get("worker_pid")]
        per_shard = {}
        for sp in worker_spans:
            shard = sp["attrs"]["shard"]
            per_shard[shard] = per_shard.get(shard, 0) + 1
        assert sorted(per_shard) == list(range(8))
        assert all(count > 0 for count in per_shard.values())
        # More than one worker process actually contributed.
        assert len({sp["attrs"]["worker_pid"] for sp in worker_spans}) > 1

    def test_chrome_trace_export_from_experiment(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5", "--chrome-trace", str(target)])
        assert code == 0
        assert "Chrome trace written to" in capsys.readouterr().out
        document = json.loads(target.read_text())
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert xs and all(
            {"name", "ts", "dur", "pid", "tid"} <= set(e) for e in xs
        )
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert any(e["name"] == "capture_words_total" for e in counters)


class TestProfileCommand:
    def test_profile_exp1_quick_covers_wall_time(self, tmp_path, capsys):
        """Acceptance: the attribution table's total accounts for at
        least 90% of the measured wall time."""
        target = tmp_path / "prof.json"
        code = main(["profile", "exp1", "--quick", "--seed", "5",
                     "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "self%" in out and "experiment" in out
        assert "measured wall time" in out
        report = json.loads(target.read_text())
        assert report["experiment"] == "exp1"
        assert report["coverage"] >= 0.9
        assert report["rows"] and report["wall_s"] > 0
        assert set(report["kernels"]) == {"capture", "aging"}


class TestBenchCommand:
    @staticmethod
    def _suite(tmp_path, name, seconds):
        path = tmp_path / name
        path.write_text(json.dumps(
            {"exp1": {"total_seconds": seconds, "recovery_accuracy": 1.0}}
        ))
        return str(path)

    def test_identical_suites_pass_gate(self, tmp_path, capsys):
        old = self._suite(tmp_path, "old.json", 2.0)
        new = self._suite(tmp_path, "new.json", 2.0)
        assert main(["bench", "diff", old, new, "--gate", "80"]) == 0
        out = capsys.readouterr().out
        assert "no regression past the 80% gate" in out

    def test_regression_past_gate_fails(self, tmp_path, capsys):
        old = self._suite(tmp_path, "old.json", 1.0)
        new = self._suite(tmp_path, "new.json", 5.0)
        assert main(["bench", "diff", old, new, "--gate", "80"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed past the 80% gate" in captured.err
        assert "exp1.total_seconds" in captured.err

    def test_without_gate_only_reports(self, tmp_path, capsys):
        old = self._suite(tmp_path, "old.json", 1.0)
        new = self._suite(tmp_path, "new.json", 5.0)
        assert main(["bench", "diff", old, new]) == 0
        assert "+400.0%" in capsys.readouterr().out

    def test_missing_suite_fails_cleanly(self, tmp_path, capsys):
        old = self._suite(tmp_path, "old.json", 1.0)
        assert main(["bench", "diff", old,
                     str(tmp_path / "absent.json")]) == 2
        assert "not found" in capsys.readouterr().err


class TestBenchJson:
    def test_json_document_written(self, tmp_path, capsys):
        old = TestBenchCommand._suite(tmp_path, "old.json", 1.0)
        new = TestBenchCommand._suite(tmp_path, "new.json", 5.0)
        target = tmp_path / "diff.json"
        assert main(["bench", "diff", old, new, "--gate", "80",
                     "--json", str(target)]) == 1
        document = json.loads(target.read_text())
        assert document["verdict"] == "fail"
        assert document["failures"] == ["exp1.total_seconds"]
        by_key = {d["key"]: d for d in document["deltas"]}
        assert by_key["exp1.total_seconds"]["gate"] == "fail"
        assert f"bench diff written to {target}" in capsys.readouterr().out

    def test_json_without_gate(self, tmp_path):
        old = TestBenchCommand._suite(tmp_path, "old.json", 1.0)
        new = TestBenchCommand._suite(tmp_path, "new.json", 1.0)
        target = tmp_path / "diff.json"
        assert main(["bench", "diff", old, new,
                     "--json", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["verdict"] == "pass"
        assert document["gate_pct"] is None


class TestRunRecording:
    def test_experiment_records_a_run(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert main(["exp1", "--quick", "--no-figure",
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        from repro.observability.runstore import RunStore

        runs = RunStore(db).list_runs()
        assert len(runs) == 1
        assert runs[0]["kind"] == "experiment"
        assert runs[0]["experiment"] == "exp1"
        assert runs[0]["outcome"] == "ok"
        assert runs[0]["accuracy"] is not None
        assert runs[0]["wall_seconds"] > 0.0

    def test_sweep_records_seed_rows(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert main(["sweep", "exp1", "--seeds", "1:3",
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        from repro.observability.runstore import RunStore

        store = RunStore(db)
        run = store.get_run(store.resolve("latest"))
        assert run["kind"] == "sweep"
        assert [row["seed"] for row in run["seed_results"]] == [1, 2, 3]
        assert run["config"]["seeds"] == [1, 2, 3]
        assert run["manifest"]["kernels"]["capture"] in (
            "batched", "scalar"
        )
        assert run["metrics"]["dump_id"]

    def test_no_record_suppresses_recording(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert main(["exp1", "--quick", "--no-figure", "--no-record",
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        assert not db.exists()

    def test_runstore_off_disables(self, tmp_path, capsys):
        assert main(["exp1", "--quick", "--no-figure",
                     "--runstore", "off"]) == 0
        capsys.readouterr()

    def test_resumed_sweep_records_one_row_per_seed(self, tmp_path,
                                                    capsys):
        # Record/replay idempotence along the runstore path: a journal
        # resume re-emits completed seeds, the store keeps one row each.
        db = tmp_path / "runs.db"
        journal = tmp_path / "sweep.journal"
        assert main(["sweep", "exp1", "--seeds", "1:3",
                     "--resume", str(journal),
                     "--runstore", str(db)]) == 0
        assert main(["sweep", "exp1", "--seeds", "1:3",
                     "--resume", str(journal),
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        from repro.observability.runstore import RunStore

        store = RunStore(db)
        first = store.get_run(store.resolve("latest~1"))
        second = store.get_run(store.resolve("latest"))
        assert [row["seed"] for row in first["seed_results"]] == [1, 2, 3]
        assert [row["seed"] for row in second["seed_results"]] == [1, 2, 3]
        # the resumed run replayed every seed from the journal
        assert all(row["resumed"] for row in second["seed_results"])
        assert not any(row["resumed"] for row in first["seed_results"])
        # replayed values are bit-identical to the originals
        assert [row["value"] for row in second["seed_results"]] == \
            [row["value"] for row in first["seed_results"]]

    def test_metrics_state_replays_idempotently(self, tmp_path, capsys):
        # dump_state -> store -> merge_state twice must count once.
        db = tmp_path / "runs.db"
        assert main(["exp1", "--quick", "--no-figure",
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.runstore import RunStore

        store = RunStore(db)
        state = store.get_run(store.resolve("latest"))["metrics"]
        replay = MetricsRegistry()
        replay.merge_state(state)
        once = replay.snapshot()["counters"]["experiments_total"]
        replay.merge_state(state)  # same dump_id: a no-op
        twice = replay.snapshot()["counters"]["experiments_total"]
        assert once == twice == 1.0


class TestProgressFlag:
    def test_jsonl_progress_on_stderr(self, tmp_path, capsys):
        assert main(["sweep", "exp1", "--seeds", "1:2",
                     "--progress", "jsonl", "--no-record"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line)
                 for line in captured.err.splitlines() if line]
        events = [line["event"] for line in lines]
        assert "phase" in events
        assert events.count("seed_done") == 2
        # stdout stays byte-parseable (the chaos CI compares it)
        assert "seed_done" not in captured.out

    def test_progress_off_is_silent(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1:2",
                     "--progress", "off", "--no-record"]) == 0
        assert capsys.readouterr().err == ""

    def test_auto_is_silent_when_piped(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1:2",
                     "--no-record"]) == 0
        assert capsys.readouterr().err == ""


class TestRunsCommand:
    @staticmethod
    def _seed_store(tmp_path, values_by_run):
        import time as _time

        from repro.observability.runstore import RunRecord, RunStore

        db = tmp_path / "runs.db"
        store = RunStore(db)
        for i, values in enumerate(values_by_run):
            store.record_run(RunRecord(
                kind="sweep", experiment="exp1",
                started_unix=1000.0 + i, outcome="ok",
                accuracy=sum(values) / len(values),
                config={"experiment": "exp1", "quick": True},
                seed_rows=[{"seed": j + 1, "value": v}
                           for j, v in enumerate(values)],
            ))
        return db

    def test_list_and_show(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0, 0.9]])
        assert main(["runs", "list", "--runstore", str(db)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "exp1" in out
        assert main(["runs", "show", "latest",
                     "--runstore", str(db)]) == 0
        out = capsys.readouterr().out
        assert "seeds     2 recorded" in out

    def test_list_json(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0]])
        assert main(["runs", "list", "--json",
                     "--runstore", str(db)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "exp1"

    def test_compare_gate_detects_regression(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [
            [1.0, 0.99, 1.0, 0.98],
            [0.70, 0.69, 0.71, 0.68],  # seeded 30% regression
        ])
        assert main(["runs", "compare", "latest~1", "latest",
                     "--gate", "--runstore", str(db)]) == 1
        captured = capsys.readouterr()
        assert "CONFIRMED" in captured.out
        assert "regression" in captured.err

    def test_compare_ok_passes_gate(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0, 0.99], [1.0, 0.99]])
        assert main(["runs", "compare", "latest~1", "latest",
                     "--gate", "--runstore", str(db)]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_compare_json_file(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0], [0.5]])
        target = tmp_path / "cmp.json"
        assert main(["runs", "compare", "latest~1", "latest",
                     "--json", str(target),
                     "--runstore", str(db)]) == 0
        capsys.readouterr()
        assert json.loads(target.read_text())["verdict"] == "CONFIRMED"

    def test_export_and_gc(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0], [0.9], [0.8]])
        target = tmp_path / "export.json"
        assert main(["runs", "export", "--output", str(target),
                     "--runstore", str(db)]) == 0
        assert len(json.loads(target.read_text())["runs"]) == 3
        capsys.readouterr()
        assert main(["runs", "gc", "--keep", "1",
                     "--runstore", str(db)]) == 0
        assert "removed 2 run(s)" in capsys.readouterr().out

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["runs", "list", "--runstore",
                     str(tmp_path / "absent.db")]) == 2
        assert "nothing has been recorded" in capsys.readouterr().err

    def test_unknown_ref_fails_cleanly(self, tmp_path, capsys):
        db = self._seed_store(tmp_path, [[1.0]])
        assert main(["runs", "show", "zzz", "--runstore", str(db)]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportHistory:
    def test_history_html_written(self, tmp_path, capsys):
        db = TestRunsCommand._seed_store(tmp_path, [[1.0], [0.9]])
        target = tmp_path / "history.html"
        assert main(["report", "--history", "--output", str(target),
                     "--runstore", str(db)]) == 0
        html_text = target.read_text()
        assert "<!DOCTYPE html>" in html_text
        assert "<h2>exp1</h2>" in html_text
        assert "<svg" in html_text

    def test_history_without_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", "--history", "--runstore",
                     str(tmp_path / "absent.db")]) == 2
        assert "nothing has been recorded" in capsys.readouterr().err
