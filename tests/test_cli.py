"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp1_flags(self):
        args = build_parser().parse_args(
            ["exp1", "--quick", "--seed", "9", "--burn-hours", "12"]
        )
        assert args.quick and args.seed == 9 and args.burn_hours == 12

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--compare"])
        assert args.compare

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_every_subcommand_has_observability_flags(self):
        for argv in (["exp1"], ["exp2"], ["exp3"], ["sweep", "exp1"],
                     ["table1"], ["report"]):
            args = build_parser().parse_args(argv + ["--trace"])
            assert args.trace and args.metrics_out is None

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "exp2", "--seeds", "1:4,9", "--jobs", "3"]
        )
        assert args.experiment == "exp2"
        assert args.seeds == "1:4,9" and args.jobs == "3"
        assert not args.paper

    def test_sweep_jobs_auto_accepted(self):
        args = build_parser().parse_args(["sweep", "exp1", "--jobs", "auto"])
        assert args.jobs == "auto"

    def test_sweep_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "exp9"])


class TestSeedSpec:
    def test_comma_list_and_ranges(self):
        from repro.cli import parse_seed_spec

        assert parse_seed_spec("1,2,5") == [1, 2, 5]
        assert parse_seed_spec("1:4") == [1, 2, 3, 4]
        assert parse_seed_spec("1:3,9, 11") == [1, 2, 3, 9, 11]

    def test_invalid_specs_rejected(self):
        from repro.cli import parse_seed_spec

        for spec in ("", "a", "3:1", "1:2:3"):
            with pytest.raises(ValueError):
                parse_seed_spec(spec)


class TestMain:
    def test_table1_prints_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "/kmac_app_rsp" in out

    def test_exp1_quick(self, capsys):
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_exp1_figure_panels(self, capsys):
        main(["exp1", "--quick", "--burn-hours", "16",
              "--recovery-hours", "8", "--seed", "5"])
        out = capsys.readouterr().out
        assert "ps routes" in out

    def test_exp2_quick(self, capsys):
        assert main(["exp2", "--quick", "--no-figure",
                     "--burn-hours", "24", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "accuracy by length" in out

    def test_exp3_quick(self, capsys):
        assert main(["exp3", "--quick", "--no-figure",
                     "--recovery-hours", "8", "--seed", "19"]) == 0
        out = capsys.readouterr().out
        assert "boards probed" in out

    def test_sweep_quick(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5,6"]) == 0
        out = capsys.readouterr().out
        assert "exp1 recovery accuracy" in out
        assert "seeds=2 jobs=1" in out

    def test_sweep_with_jobs(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5:6", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_sweep_bad_seed_spec_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "9:1"]) == 2
        assert "invalid --seeds" in capsys.readouterr().err

    def test_sweep_bad_jobs_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_non_numeric_jobs_fails_cleanly(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "1", "--jobs", "lots"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_sweep_jobs_auto_runs(self, capsys):
        assert main(["sweep", "exp1", "--seeds", "5", "--jobs", "auto"]) == 0
        assert "jobs=auto" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_trace_prints_span_tree(self, capsys):
        code = main(["exp1", "--quick", "--no-figure", "--trace",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "experiment [" in out
        assert "phase.measurement [" in out
        assert "sensor.capture [" in out

    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5", "--metrics-out", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        counters = payload["metrics"]["counters"]
        assert counters["captures_total"] > 0
        assert counters["protocol_cycles_total"] > 0
        latency = payload["metrics"]["histograms"]["capture_latency_seconds"]
        assert latency["count"] > 0 and latency["p95"] >= latency["p50"]
        assert payload["manifest"]["config"]["burn_hours"] == 16
        assert payload["manifest"]["seed"] == 5

    def test_archive_embeds_manifest(self, tmp_path):
        target = tmp_path / "exp1.json"
        assert main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5", "--output", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 2
        assert payload["manifest"]["seed"] == 5
