"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exp1_flags(self):
        args = build_parser().parse_args(
            ["exp1", "--quick", "--seed", "9", "--burn-hours", "12"]
        )
        assert args.quick and args.seed == 9 and args.burn_hours == 12

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--compare"])
        assert args.compare


class TestMain:
    def test_table1_prints_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "/kmac_app_rsp" in out

    def test_exp1_quick(self, capsys):
        code = main(["exp1", "--quick", "--no-figure",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_exp1_figure_panels(self, capsys):
        main(["exp1", "--quick", "--burn-hours", "16",
              "--recovery-hours", "8", "--seed", "5"])
        out = capsys.readouterr().out
        assert "ps routes" in out

    def test_exp2_quick(self, capsys):
        assert main(["exp2", "--quick", "--no-figure",
                     "--burn-hours", "24", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "accuracy by length" in out

    def test_exp3_quick(self, capsys):
        assert main(["exp3", "--quick", "--no-figure",
                     "--recovery-hours", "8", "--seed", "19"]) == 0
        out = capsys.readouterr().out
        assert "boards probed" in out
