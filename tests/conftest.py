"""Shared fixtures for the pentimento reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro.designs import build_measure_design, build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.observability import progress, trace
from repro.observability.metrics import registry
from repro.observability.runstore import RUNSTORE_ENV
from repro.physics.aging import CLOUD_PART, NEW_PART
from repro.reliability.faults import set_fault_plan
from repro.reliability.retry import RetryPolicy, set_retry_policy

# Tests must never write a run database into the developer's working
# directory: recording defaults to off for the whole suite, and each
# test that wants a store points REPRO_RUNSTORE (or --runstore) at a
# tmp path of its own.
os.environ[RUNSTORE_ENV] = "off"


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with empty global metrics/span state,
    no fault plan installed, no progress emitter, and the default retry
    policy."""
    registry.reset()
    trace.clear()
    trace.disable()
    set_fault_plan(None)
    set_retry_policy(RetryPolicy())
    progress.set_emitter(None)
    yield
    registry.reset()
    trace.clear()
    trace.disable()
    set_fault_plan(None)
    set_retry_policy(RetryPolicy())
    progress.set_emitter(None)


@pytest.fixture
def zynq_device():
    """A factory-new ZCU102-like device with a fixed seed."""
    return FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=101)


@pytest.fixture
def virtex_device():
    """An aged cloud VU9P-like device with a fixed seed."""
    return FpgaDevice(VIRTEX_ULTRASCALE_PLUS, wear=CLOUD_PART, seed=102)


@pytest.fixture
def small_route_bank(zynq_device):
    """Four routes, one of each paper length class."""
    return build_route_bank(
        zynq_device.grid, [1000.0, 2000.0, 5000.0, 10000.0]
    )


@pytest.fixture
def small_target(zynq_device, small_route_bank):
    """A compiled Target design over the small bank (no heaters)."""
    return build_target_design(
        zynq_device.part, small_route_bank, [1, 0, 1, 0], heater_dsps=0
    )


@pytest.fixture
def small_measure(zynq_device, small_route_bank):
    """A compiled Measure design over the small bank."""
    return build_measure_design(zynq_device.part, small_route_bank)
