"""Tests for the Monte Carlo robustness harness."""

import pytest

import repro.montecarlo as montecarlo
from repro.errors import AnalysisError, ConfigurationError
from repro.montecarlo import (
    MonteCarloResult,
    experiment_sweep,
    resolve_jobs,
    run_monte_carlo,
)
from repro.observability import trace
from repro.observability.metrics import registry


def _tenth(seed: int) -> float:
    """Module-level metric: picklable for the jobs > 1 path."""
    return float(seed) / 10.0


def _boom_on_two(seed: int) -> float:
    """Records work, then crashes on seed 2 -- partial-state fixture."""
    registry.counter("partial_work_total").inc()
    if seed == 2:
        raise ValueError("seed 2 exploded")
    return float(seed)


def _boom_unpicklable(seed: int) -> float:
    """Raises an exception that cannot travel between processes."""
    exc = RuntimeError("cannot travel")
    exc.payload = lambda: None  # lambdas do not pickle
    raise exc


def _tenth_boom_on_three(seed: int) -> float:
    """_tenth, except the process dies at seed 3 (kill-after-K fixture)."""
    if seed == 3:
        raise RuntimeError("killed at seed 3")
    return _tenth(seed)


def _tenth_interrupt_on_three(seed: int) -> float:
    """_tenth, except seed 3 hits Ctrl-C (interrupt-safety fixture)."""
    if seed == 3:
        raise KeyboardInterrupt
    return _tenth(seed)


@pytest.fixture
def four_cpus(monkeypatch):
    """Pretend the machine has four CPUs so the pool path really runs.

    CI containers can report a single CPU, which would clamp every
    ``jobs > 1`` request down to the sequential path and silently skip
    the ProcessPoolExecutor coverage these tests exist for.
    """
    monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 4)


class TestRunner:
    def test_evaluates_every_seed(self):
        result = run_monte_carlo(lambda s: float(s) / 10.0, [1, 2, 3],
                                 metric_name="demo")
        assert result.values == (0.1, 0.2, 0.3)
        assert result.mean == pytest.approx(0.2)
        assert result.minimum == pytest.approx(0.1)
        assert result.maximum == pytest.approx(0.3)

    def test_single_seed_has_zero_std(self):
        result = run_monte_carlo(lambda s: 0.5, [7])
        assert result.std == 0.0

    def test_percentile_interval(self):
        result = run_monte_carlo(lambda s: float(s), range(1, 101))
        lo, hi = result.percentile_interval(0.9)
        assert lo == pytest.approx(5.95, abs=1.0)
        assert hi == pytest.approx(95.05, abs=1.0)

    def test_invalid_coverage_rejected(self):
        result = run_monte_carlo(lambda s: 1.0, [1, 2])
        with pytest.raises(AnalysisError):
            result.percentile_interval(1.5)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda s: 1.0, [])

    def test_str_summary(self):
        result = run_monte_carlo(lambda s: 0.9, [1, 2, 3],
                                 metric_name="accuracy")
        assert "accuracy" in str(result)
        assert "n=3" in str(result)


class TestParallelRunner:
    def test_jobs_bit_identical_to_sequential(self, four_cpus):
        seeds = [3, 1, 4, 1, 5, 9]
        sequential = run_monte_carlo(_tenth, seeds, metric_name="demo")
        parallel = run_monte_carlo(_tenth, seeds, metric_name="demo", jobs=3)
        assert parallel == sequential

    def test_more_jobs_than_seeds(self):
        result = run_monte_carlo(_tenth, [2], jobs=8)
        assert result.values == (0.2,)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_tenth, [1], jobs=0)
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_tenth, [1], jobs=-2)
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_tenth, [1], jobs="turbo")

    def test_unpicklable_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda s: 1.0, [1, 2], jobs=2)

    def test_unpicklable_metric_rejected_even_when_clamped(self, monkeypatch):
        """An explicit jobs=2 request holds the documented contract even
        when the machine only has one CPU and the run falls back to the
        sequential path."""
        monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 1)
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda s: 1.0, [1, 2], jobs=2)

    def test_worker_metrics_merge_into_parent_registry(self, four_cpus):
        run_monte_carlo(_tenth, [1, 2, 3], jobs=2)
        assert registry.counter("montecarlo_runs_total").value == 3
        assert registry.histogram("montecarlo_run_seconds").count == 3

    def test_jobs_auto_runs_every_seed(self):
        result = run_monte_carlo(_tenth, [1, 2, 3], jobs="auto")
        assert result.values == (0.1, 0.2, 0.3)

    def test_auto_metric_need_not_pickle_on_one_cpu(self, monkeypatch):
        """``auto`` on a single-CPU machine resolves to the sequential
        path, which accepts any callable."""
        monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 1)
        result = run_monte_carlo(lambda s: float(s), [4], jobs="auto")
        assert result.values == (4.0,)


class TestWorkerSpans:
    def test_worker_spans_merged_with_attribution(self, four_cpus):
        """--trace under --jobs N: every worker's subtree comes back,
        tagged with the worker's pid and its shard index."""
        trace.enable()
        run_monte_carlo(_tenth, [1, 2, 3], jobs=2)
        (root,) = trace.roots()
        assert root.name == "montecarlo"
        seed_spans = [c for c in root.children
                      if c.name == "montecarlo.seed"]
        assert len(seed_spans) == 3
        for sp in seed_spans:
            assert sp.attrs["worker_pid"] > 0
            assert sp.finished
        assert {sp.attrs["seed"] for sp in seed_spans} == {1, 2, 3}
        assert {sp.attrs["shard"] for sp in seed_spans} == {0, 1, 2}

    def test_no_spans_collected_when_tracing_off(self, four_cpus):
        run_monte_carlo(_tenth, [1, 2], jobs=2)
        assert trace.roots() == ()

    def test_sharded_tree_matches_sequential_shape(self, four_cpus):
        trace.enable()
        run_monte_carlo(_tenth, [1, 2], jobs=1)
        sequential = [c.name for c in trace.roots()[0].children]
        trace.clear()
        run_monte_carlo(_tenth, [1, 2], jobs=2)
        sharded = [c.name for c in trace.roots()[0].children]
        assert sharded == sequential == ["montecarlo.seed"] * 2


class TestWorkerCrash:
    def test_crash_reraises_original_exception(self, four_cpus):
        with pytest.raises(ValueError, match="seed 2 exploded"):
            run_monte_carlo(_boom_on_two, [1, 2, 3], jobs=2)

    def test_crashed_shard_still_ships_partial_metrics(self, four_cpus):
        with pytest.raises(ValueError):
            run_monte_carlo(_boom_on_two, [1, 2, 3], jobs=2)
        # Every shard incremented the counter before seed 2 raised, and
        # the parent merged all three dumps before re-raising.
        assert registry.counter("partial_work_total").value == 3
        assert registry.counter("montecarlo_worker_failures_total").value == 1
        # Only the seeds that completed count as runs.
        assert registry.counter("montecarlo_runs_total").value == 2

    def test_crashed_shard_still_ships_spans(self, four_cpus):
        trace.enable()
        with pytest.raises(ValueError):
            run_monte_carlo(_boom_on_two, [1, 2, 3], jobs=2)
        (root,) = trace.roots()
        seed_spans = [c for c in root.children
                      if c.name == "montecarlo.seed"]
        assert {sp.attrs["seed"] for sp in seed_spans} == {1, 2, 3}
        assert all(sp.finished for sp in seed_spans)

    def test_unpicklable_exception_surfaces_as_traceback_text(
        self, four_cpus
    ):
        with pytest.raises(AnalysisError) as excinfo:
            run_monte_carlo(_boom_unpicklable, [1, 2], jobs=2)
        message = str(excinfo.value)
        assert "cannot travel" in message
        assert "RuntimeError" in message
        assert "failed in worker" in message


class TestResolveJobs:
    def test_explicit_request_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 2)
        assert resolve_jobs(8, n_seeds=16) == 2

    def test_clamped_to_seed_count(self, four_cpus):
        assert resolve_jobs(4, n_seeds=2) == 2

    def test_auto_uses_available_cpus(self, four_cpus):
        assert resolve_jobs("auto", n_seeds=16) == 4

    def test_auto_on_one_cpu_is_sequential(self, monkeypatch):
        monkeypatch.setattr(montecarlo, "_available_cpus", lambda: 1)
        assert resolve_jobs("auto", n_seeds=16) == 1

    def test_unclamped_request_passes_through(self, four_cpus):
        assert resolve_jobs(3, n_seeds=16) == 3

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0, n_seeds=4)
        with pytest.raises(ConfigurationError):
            resolve_jobs("fast", n_seeds=4)


class TestExperimentSweep:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            experiment_sweep("exp9", [1])

    def test_exp1_sweep_is_robust(self):
        """Experiment 1's quick configuration recovers perfectly across
        seeds -- the lab setting's headline robustness claim."""
        result = experiment_sweep("exp1", seeds=[5, 6, 7])
        assert result.mean == 1.0
        assert result.std == 0.0

    def test_overrides_apply(self):
        result = experiment_sweep(
            "exp1", seeds=[5],
            config_overrides={"burn_hours": 16, "recovery_hours": 8},
        )
        assert 0.0 <= result.mean <= 1.0

    def test_sharded_sweep_bit_identical(self, four_cpus):
        """Acceptance pin: jobs=N returns the same MonteCarloResult as
        jobs=1 for the same seed list, including seed order."""
        seeds = [5, 6, 7]
        sequential = experiment_sweep("exp1", seeds=seeds, jobs=1)
        sharded = experiment_sweep("exp1", seeds=seeds, jobs=2)
        assert sharded == sequential

    def test_sharded_sweep_merges_capture_metrics(self, four_cpus):
        experiment_sweep("exp1", seeds=[5, 6], jobs=2)
        assert registry.counter("captures_total").value > 0
        assert registry.counter("montecarlo_runs_total").value == 2

    def test_unknown_experiment_rejected_before_workers_spawn(self):
        with pytest.raises(ConfigurationError):
            experiment_sweep("exp9", [1], jobs=4)


class TestCheckpointResume:
    """``--resume``: journaled sweeps skip finished seeds bit-identically."""

    def _journal(self, tmp_path):
        from repro.reliability.checkpoint import SweepJournal

        return SweepJournal(tmp_path / "sweep.journal")

    def test_sequential_run_journals_every_seed(self, tmp_path):
        from repro.reliability.checkpoint import SweepJournal

        journal = self._journal(tmp_path)
        result = run_monte_carlo(_tenth, [1, 2, 3], journal=journal)
        loaded = SweepJournal.load(tmp_path / "sweep.journal")
        assert loaded.completed_seeds() == [1, 2, 3]
        assert [loaded.value(s) for s in (1, 2, 3)] == list(result.values)

    def test_kill_after_k_of_n_resume_bit_identical(self, tmp_path):
        """Acceptance pin: a sweep killed partway and resumed matches an
        uninterrupted run -- values AND deterministic counters."""
        from repro.reliability.checkpoint import SweepJournal

        seeds = [1, 2, 3, 4]
        baseline = run_monte_carlo(_tenth, seeds, metric_name="demo")
        baseline_runs = registry.counter("montecarlo_runs_total").value
        registry.reset()

        journal = self._journal(tmp_path)
        with pytest.raises(RuntimeError, match="killed at seed 3"):
            run_monte_carlo(_tenth_boom_on_three, seeds,
                            metric_name="demo", journal=journal)
        partial = SweepJournal.load(tmp_path / "sweep.journal")
        assert partial.completed_seeds() == [1, 2]
        registry.reset()

        resumed = run_monte_carlo(_tenth, seeds, metric_name="demo",
                                  journal=partial)
        assert resumed == baseline
        assert registry.counter("montecarlo_runs_total").value \
            == baseline_runs
        assert registry.counter("sweep_seeds_resumed_total").value == 2

    def test_fully_journaled_resume_skips_all_seeds(self, tmp_path):
        from repro.reliability.checkpoint import SweepJournal

        journal = self._journal(tmp_path)
        first = run_monte_carlo(_tenth, [1, 2], journal=journal)
        registry.reset()
        reloaded = SweepJournal.load(tmp_path / "sweep.journal")
        second = run_monte_carlo(_tenth, [1, 2], journal=reloaded)
        assert second == first
        assert registry.counter("sweep_seeds_resumed_total").value == 2
        # Replayed states restore the runs counter too.
        assert registry.counter("montecarlo_runs_total").value == 2

    def test_parallel_journaled_matches_sequential(self, four_cpus,
                                                   tmp_path):
        sequential = run_monte_carlo(_tenth, [1, 2, 3])
        journal = self._journal(tmp_path)
        parallel = run_monte_carlo(_tenth, [1, 2, 3], jobs=2,
                                   journal=journal)
        assert parallel == sequential
        assert journal.completed_seeds() == [1, 2, 3]
        assert registry.counter("montecarlo_runs_total").value == 6

    def test_journaled_sweep_rejects_duplicate_seeds(self, tmp_path):
        journal = self._journal(tmp_path)
        with pytest.raises(ConfigurationError, match="unique seeds"):
            run_monte_carlo(_tenth, [1, 1, 2], journal=journal)

    def test_experiment_sweep_resume_round_trip(self, tmp_path):
        path = tmp_path / "exp.journal"
        first = experiment_sweep("exp1", seeds=[5, 6], journal_path=path)
        registry.reset()
        second = experiment_sweep("exp1", seeds=[5, 6], journal_path=path)
        assert second == first
        assert registry.counter("sweep_seeds_resumed_total").value == 2

    def test_experiment_sweep_refuses_foreign_journal(self, tmp_path):
        from repro.errors import PersistenceError

        path = tmp_path / "exp.journal"
        experiment_sweep("exp1", seeds=[5], journal_path=path)
        with pytest.raises(PersistenceError, match="different sweep"):
            experiment_sweep("exp1", seeds=[5, 6], journal_path=path)


class TestInterruptSafety:
    """Ctrl-C mid-sweep: clean executor shutdown, loadable journal."""

    def test_keyboard_interrupt_leaves_loadable_partial_journal(
        self, four_cpus, tmp_path
    ):
        from repro.reliability.checkpoint import SweepJournal

        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path)
        with pytest.raises(KeyboardInterrupt):
            run_monte_carlo(_tenth_interrupt_on_three, [1, 2, 3, 4],
                            jobs=2, journal=journal)
        # The pool shut down (the test returned at all) and the journal
        # on disk is a consistent snapshot of the finished seeds.
        partial = SweepJournal.load(path)
        assert partial.completed_seeds() == [1, 2]
        resumed = run_monte_carlo(_tenth, [1, 2, 3, 4], jobs=2,
                                  journal=partial)
        baseline = run_monte_carlo(_tenth, [1, 2, 3, 4])
        assert resumed.values == baseline.values

    def test_keyboard_interrupt_sequential_journal_consistent(
        self, tmp_path
    ):
        from repro.reliability.checkpoint import SweepJournal

        path = tmp_path / "sweep.journal"
        with pytest.raises(KeyboardInterrupt):
            run_monte_carlo(_tenth_interrupt_on_three, [1, 2, 3, 4],
                            journal=SweepJournal(path))
        assert SweepJournal.load(path).completed_seeds() == [1, 2]
