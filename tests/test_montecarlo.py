"""Tests for the Monte Carlo robustness harness."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.montecarlo import MonteCarloResult, experiment_sweep, run_monte_carlo
from repro.observability.metrics import registry


def _tenth(seed: int) -> float:
    """Module-level metric: picklable for the jobs > 1 path."""
    return float(seed) / 10.0


class TestRunner:
    def test_evaluates_every_seed(self):
        result = run_monte_carlo(lambda s: float(s) / 10.0, [1, 2, 3],
                                 metric_name="demo")
        assert result.values == (0.1, 0.2, 0.3)
        assert result.mean == pytest.approx(0.2)
        assert result.minimum == pytest.approx(0.1)
        assert result.maximum == pytest.approx(0.3)

    def test_single_seed_has_zero_std(self):
        result = run_monte_carlo(lambda s: 0.5, [7])
        assert result.std == 0.0

    def test_percentile_interval(self):
        result = run_monte_carlo(lambda s: float(s), range(1, 101))
        lo, hi = result.percentile_interval(0.9)
        assert lo == pytest.approx(5.95, abs=1.0)
        assert hi == pytest.approx(95.05, abs=1.0)

    def test_invalid_coverage_rejected(self):
        result = run_monte_carlo(lambda s: 1.0, [1, 2])
        with pytest.raises(AnalysisError):
            result.percentile_interval(1.5)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda s: 1.0, [])

    def test_str_summary(self):
        result = run_monte_carlo(lambda s: 0.9, [1, 2, 3],
                                 metric_name="accuracy")
        assert "accuracy" in str(result)
        assert "n=3" in str(result)


class TestParallelRunner:
    def test_jobs_bit_identical_to_sequential(self):
        seeds = [3, 1, 4, 1, 5, 9]
        sequential = run_monte_carlo(_tenth, seeds, metric_name="demo")
        parallel = run_monte_carlo(_tenth, seeds, metric_name="demo", jobs=3)
        assert parallel == sequential

    def test_more_jobs_than_seeds(self):
        result = run_monte_carlo(_tenth, [2], jobs=8)
        assert result.values == (0.2,)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_tenth, [1], jobs=0)
        with pytest.raises(ConfigurationError):
            run_monte_carlo(_tenth, [1], jobs=-2)

    def test_unpicklable_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(lambda s: 1.0, [1, 2], jobs=2)

    def test_worker_metrics_merge_into_parent_registry(self):
        run_monte_carlo(_tenth, [1, 2, 3], jobs=2)
        assert registry.counter("montecarlo_runs_total").value == 3
        assert registry.histogram("montecarlo_run_seconds").count == 3


class TestExperimentSweep:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            experiment_sweep("exp9", [1])

    def test_exp1_sweep_is_robust(self):
        """Experiment 1's quick configuration recovers perfectly across
        seeds -- the lab setting's headline robustness claim."""
        result = experiment_sweep("exp1", seeds=[5, 6, 7])
        assert result.mean == 1.0
        assert result.std == 0.0

    def test_overrides_apply(self):
        result = experiment_sweep(
            "exp1", seeds=[5],
            config_overrides={"burn_hours": 16, "recovery_hours": 8},
        )
        assert 0.0 <= result.mean <= 1.0

    def test_sharded_sweep_bit_identical(self):
        """Acceptance pin: jobs=N returns the same MonteCarloResult as
        jobs=1 for the same seed list, including seed order."""
        seeds = [5, 6, 7]
        sequential = experiment_sweep("exp1", seeds=seeds, jobs=1)
        sharded = experiment_sweep("exp1", seeds=seeds, jobs=2)
        assert sharded == sequential

    def test_sharded_sweep_merges_capture_metrics(self):
        experiment_sweep("exp1", seeds=[5, 6], jobs=2)
        assert registry.counter("captures_total").value > 0
        assert registry.counter("montecarlo_runs_total").value == 2

    def test_unknown_experiment_rejected_before_workers_spawn(self):
        with pytest.raises(ConfigurationError):
            experiment_sweep("exp9", [1], jobs=4)
