"""The cross-run statistics: bootstrap CI and the rank-sum test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    RankSumResult,
    bootstrap_mean_diff_ci,
    rank_sum_test,
)
from repro.errors import AnalysisError


class TestBootstrapCI:
    def test_interval_brackets_true_difference(self):
        rng = np.random.default_rng(3)
        a = rng.normal(1.0, 0.05, 40)
        b = rng.normal(0.7, 0.05, 40)
        lo, hi = bootstrap_mean_diff_ci(a, b)
        assert lo <= -0.3 <= hi or abs((lo + hi) / 2 + 0.3) < 0.05
        assert hi < 0.0  # clearly excludes zero

    def test_equal_samples_straddle_zero(self):
        rng = np.random.default_rng(4)
        a = rng.normal(1.0, 0.1, 50)
        b = rng.normal(1.0, 0.1, 50)
        lo, hi = bootstrap_mean_diff_ci(a, b)
        assert lo <= 0.0 <= hi

    def test_seeded_and_reproducible(self):
        rng = np.random.default_rng(9)
        a = list(rng.normal(1.0, 0.2, 25))
        b = list(rng.normal(0.8, 0.2, 25))
        assert bootstrap_mean_diff_ci(a, b) == bootstrap_mean_diff_ci(a, b)
        assert bootstrap_mean_diff_ci(a, b, seed=7) != \
            bootstrap_mean_diff_ci(a, b, seed=8)

    def test_constant_samples_collapse_to_point(self):
        lo, hi = bootstrap_mean_diff_ci([1.0, 1.0], [0.7, 0.7])
        assert lo == pytest.approx(-0.3)
        assert hi == pytest.approx(-0.3)

    def test_coverage_widens_interval(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0.0, 1.0, 30)
        b = rng.normal(0.5, 1.0, 30)
        lo95, hi95 = bootstrap_mean_diff_ci(a, b, coverage=0.95)
        lo50, hi50 = bootstrap_mean_diff_ci(a, b, coverage=0.50)
        assert hi95 - lo95 > hi50 - lo50


class TestRankSum:
    def test_separated_samples_significant(self):
        a = [1.0, 0.99, 1.0, 0.98, 1.0, 0.97]
        b = [0.70, 0.69, 0.71, 0.68, 0.72, 0.70]
        result = rank_sum_test(a, b)
        assert isinstance(result, RankSumResult)
        assert result.p_value < 0.01
        assert result.n_a == result.n_b == 6

    def test_identical_samples_not_significant(self):
        a = [0.9, 1.0, 0.95, 0.97, 0.92]
        result = rank_sum_test(a, list(a))
        assert result.p_value == pytest.approx(1.0, abs=0.05)

    def test_ties_handled_with_midranks(self):
        # Heavily tied data must still produce a finite, sane p-value.
        a = [1.0, 1.0, 1.0, 2.0, 2.0]
        b = [1.0, 2.0, 2.0, 2.0, 2.0]
        result = rank_sum_test(a, b)
        assert 0.0 <= result.p_value <= 1.0
        assert np.isfinite(result.z_score)

    def test_all_constant_limits(self):
        # Zero total variance (every observation identical): no
        # evidence either way, the limiting p-value is 1.
        equal = rank_sum_test([1.0, 1.0], [1.0, 1.0])
        assert equal.p_value == 1.0
        assert equal.z_score == 0.0
        # Two separated constants: maximal evidence for this n.
        separated = rank_sum_test([1.0, 1.0], [2.0, 2.0])
        assert separated.p_value < equal.p_value
        assert separated.u_statistic == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            rank_sum_test([], [1.0])

    def test_matches_large_sample_normal_theory(self):
        # For two standard normal samples shifted by 1 with n=100 the
        # test should be overwhelmingly significant.
        rng = np.random.default_rng(6)
        a = rng.normal(0.0, 1.0, 100)
        b = rng.normal(1.0, 1.0, 100)
        assert rank_sum_test(a, b).p_value < 1e-6
