"""Tests for the from-scratch kernel regression (statsmodels replacement)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.analysis.kernel_regression import (
    KernelRegression,
    local_linear_smooth,
    nadaraya_watson_smooth,
    select_bandwidth_cv,
)


def noisy_line(n=60, slope=0.5, intercept=1.0, noise=0.2, seed=3):
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 10.0, n)
    y = intercept + slope * x + rng.normal(0.0, noise, n)
    return x, y


class TestLocalLinear:
    def test_recovers_linear_function_exactly(self):
        """A local-linear estimator is exact on linear data, including at
        the boundaries (unlike Nadaraya-Watson)."""
        x = np.linspace(0.0, 10.0, 40)
        y = 2.0 + 0.7 * x
        fitted = local_linear_smooth(x, y, bandwidth=2.0)
        assert np.allclose(fitted, y, atol=1e-8)

    def test_smooths_noise(self):
        x, y = noisy_line(noise=0.5)
        fitted = local_linear_smooth(x, y, bandwidth=2.0)
        truth = 1.0 + 0.5 * x
        assert np.mean((fitted - truth) ** 2) < np.mean((y - truth) ** 2)

    def test_evaluates_off_grid(self):
        x, y = noisy_line()
        grid = np.array([2.5, 7.5])
        fitted = local_linear_smooth(x, y, eval_x=grid, bandwidth=2.0)
        assert fitted.shape == (2,)
        assert fitted[0] == pytest.approx(1.0 + 0.5 * 2.5, abs=0.3)

    def test_recovers_smooth_nonlinearity(self):
        rng = np.random.default_rng(5)
        x = np.linspace(0.0, 2.0 * np.pi, 120)
        y = np.sin(x) + rng.normal(0.0, 0.1, x.size)
        fitted = local_linear_smooth(x, y, bandwidth=0.6)
        assert np.max(np.abs(fitted - np.sin(x))) < 0.25


class TestNadarayaWatson:
    def test_constant_function_exact(self):
        x = np.linspace(0.0, 5.0, 20)
        y = np.full_like(x, 3.0)
        assert np.allclose(nadaraya_watson_smooth(x, y, bandwidth=1.0), 3.0)

    def test_boundary_bias_on_linear_data(self):
        """NW shrinks towards the interior at boundaries -- the reason
        the paper uses the local linear estimator."""
        x = np.linspace(0.0, 10.0, 50)
        y = x.copy()
        nw = nadaraya_watson_smooth(x, y, bandwidth=2.0)
        ll = local_linear_smooth(x, y, bandwidth=2.0)
        assert abs(nw[0] - y[0]) > abs(ll[0] - y[0])


class TestBandwidthSelection:
    def test_cv_picks_reasonable_bandwidth(self):
        x, y = noisy_line(n=80)
        bandwidth = select_bandwidth_cv(x, y)
        assert 0.05 < bandwidth < 10.0

    def test_invalid_estimator_rejected(self):
        x, y = noisy_line()
        with pytest.raises(AnalysisError):
            select_bandwidth_cv(x, y, estimator="cubic")

    def test_identical_x_rejected(self):
        with pytest.raises(AnalysisError):
            select_bandwidth_cv(np.ones(10), np.arange(10.0))


class TestObjectInterface:
    def test_fit_predict_round_trip(self):
        x, y = noisy_line()
        model = KernelRegression(estimator="ll").fit(x, y)
        fitted = model.predict(x)
        assert fitted.shape == x.shape

    def test_predict_before_fit_rejected(self):
        with pytest.raises(AnalysisError):
            KernelRegression().predict([1.0, 2.0])


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            local_linear_smooth([1, 2, 3], [1, 2])

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            local_linear_smooth([1, 2], [1, 2])

    def test_nonfinite_rejected(self):
        with pytest.raises(AnalysisError):
            local_linear_smooth([1, 2, np.nan], [1, 2, 3])

    @given(
        slope=st.floats(min_value=-3.0, max_value=3.0),
        intercept=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_local_linear_exact_on_lines_property(self, slope, intercept):
        x = np.linspace(0.0, 8.0, 30)
        y = intercept + slope * x
        fitted = local_linear_smooth(x, y, bandwidth=1.5)
        assert np.allclose(fitted, y, atol=1e-6)
