"""Tests for time-series containers, statistics and text rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.analysis.report import render_series_chart, render_table
from repro.analysis.stats import (
    ols_slope,
    route_length_stats,
    theil_sen_slope,
    welch_t_statistic,
)
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle, length_class


def make_series(name="r", length=1000.0, values=(0.0, 0.5, 1.0), burn=1):
    series = DeltaPsSeries(route_name=name, nominal_delay_ps=length,
                           burn_value=burn)
    for hour, value in enumerate(values):
        series.append(float(hour), float(value))
    return series


class TestDeltaPsSeries:
    def test_centering_at_first_point(self):
        series = make_series(values=(2.0, 2.5, 3.0))
        assert list(series.centered) == [0.0, 0.5, 1.0]

    def test_out_of_order_append_rejected(self):
        series = make_series()
        with pytest.raises(AnalysisError):
            series.append(1.0, 0.0)

    def test_window_selects_inclusive_range(self):
        series = make_series(values=(0, 1, 2, 3, 4))
        window = series.window(1.0, 3.0)
        assert window.hours == [1.0, 2.0, 3.0]
        assert window.burn_value == series.burn_value

    def test_empty_series_centered_rejected(self):
        series = DeltaPsSeries(route_name="e", nominal_delay_ps=1000.0)
        with pytest.raises(AnalysisError):
            _ = series.centered


class TestSeriesBundle:
    def test_duplicate_route_rejected(self):
        bundle = SeriesBundle("b")
        bundle.add(make_series("a"))
        with pytest.raises(AnalysisError):
            bundle.add(make_series("a"))

    def test_grouping_by_length(self):
        bundle = SeriesBundle("b")
        bundle.add(make_series("a", length=1020.0))
        bundle.add(make_series("b", length=1015.0))
        bundle.add(make_series("c", length=4995.0))
        groups = bundle.by_length()
        assert {len(v) for v in groups.values()} == {1, 2}

    def test_length_class_snapping(self):
        assert length_class(1020.0) == 1000.0
        assert length_class(4995.0) == 5000.0
        assert length_class(777.0) == 777.0  # outside every band


class TestStats:
    def test_route_length_stats_columns(self):
        stats = route_length_stats([100.0, 200.0, 300.0, 400.0])
        assert stats.mean == pytest.approx(250.0)
        assert stats.minimum == 100.0
        assert stats.maximum == 400.0
        assert stats.p50 == pytest.approx(250.0)
        assert stats.count == 4

    def test_single_value_stats(self):
        stats = route_length_stats([42.0])
        assert stats.sd == 0.0
        assert stats.mean == 42.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            route_length_stats([])

    def test_ols_slope_exact_on_line(self):
        x = np.arange(10.0)
        assert ols_slope(x, 3.0 * x + 1.0) == pytest.approx(3.0)

    def test_theil_sen_robust_to_outlier(self):
        x = np.arange(20.0)
        y = 2.0 * x
        y[7] = 1000.0  # gross outlier
        assert theil_sen_slope(x, y) == pytest.approx(2.0, abs=0.2)
        assert abs(ols_slope(x, y) - 2.0) > 1.0

    def test_welch_t_detects_separation(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(3.0, 1.0, 50)
        assert welch_t_statistic(b, a) > 5.0

    @given(
        slope=st.floats(min_value=-5.0, max_value=5.0),
        noise_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_theil_sen_near_truth_property(self, slope, noise_seed):
        rng = np.random.default_rng(noise_seed)
        x = np.arange(30.0)
        y = slope * x + rng.normal(0.0, 0.1, 30)
        assert theil_sen_slope(x, y) == pytest.approx(slope, abs=0.1)


class TestReport:
    def test_table_renders_all_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_table_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            render_table(["a"], [[1, 2]])

    def test_chart_contains_both_glyphs(self):
        up = make_series("u", values=np.linspace(0, 2, 30), burn=1)
        down = make_series("d", values=np.linspace(0, -2, 30), burn=0)
        chart = render_series_chart([up, down], smooth=False)
        assert "#" in chart and "o" in chart

    def test_chart_marks_stress_change(self):
        series = make_series(values=np.linspace(0, 1, 30))
        chart = render_series_chart([series], stress_change_hour=15.0,
                                    smooth=False)
        assert "|" in chart

    def test_empty_chart_rejected(self):
        with pytest.raises(AnalysisError):
            render_series_chart([])
