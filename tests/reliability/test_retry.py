"""Retry policy: backoff math, retry_call semantics, telemetry."""

from __future__ import annotations

import pytest

from repro.errors import (
    CaptureDropError,
    ConfigurationError,
    SensorError,
)
from repro.observability import trace
from repro.observability.metrics import registry
from repro.reliability.retry import (
    RetryPolicy,
    get_retry_policy,
    retry_call,
    retry_policy,
    set_retry_policy,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_total_delay_s=-1.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=3.0, jitter=0.0
        )
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 3.0  # capped, would be 4.0
        with pytest.raises(ConfigurationError):
            policy.delay_s(0)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.1)
        first = policy.delay_s(1, "some.label")
        assert first == policy.delay_s(1, "some.label")
        assert 0.9 <= first <= 1.1
        # Different labels / attempts de-correlate without an RNG.
        assert policy.delay_s(1, "other.label") != first

    def test_process_default_swap(self):
        custom = RetryPolicy(max_attempts=2)
        previous = set_retry_policy(custom)
        try:
            assert get_retry_policy() is custom
        finally:
            set_retry_policy(previous)
        with pytest.raises(ConfigurationError):
            set_retry_policy("nope")


class TestRetryCall:
    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise CaptureDropError("transient")
            return "ok"

        trace.enable()
        assert retry_call(flaky, label="test.flaky") == "ok"
        assert calls["n"] == 3
        assert registry.counters["retries_total"].value == 2
        assert (
            registry.counters["retry_wait_simulated_seconds_total"].value
            > 0.0
        )
        waits = [
            sp for root in trace.roots() for sp in root.walk()
            if sp.name == "retry.wait"
        ]
        assert len(waits) == 2
        assert waits[0].attrs["label"] == "test.flaky"
        assert waits[0].attrs["simulated_delay_s"] > 0.0

    def test_fatal_errors_propagate_immediately(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise SensorError("fatal")

        with pytest.raises(SensorError):
            retry_call(fatal)
        assert calls["n"] == 1
        assert "retries_total" not in registry.counters

    def test_attempt_budget_reraises_original(self):
        policy = RetryPolicy(max_attempts=3)

        def always():
            raise CaptureDropError("still down")

        with pytest.raises(CaptureDropError, match="still down"):
            retry_call(always, policy=policy)
        assert registry.counters["retries_total"].value == 2

    def test_total_delay_budget_gives_up_early(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=5.0, jitter=0.0,
            max_total_delay_s=12.0,
        )

        def always():
            raise CaptureDropError("down")

        with pytest.raises(CaptureDropError):
            retry_call(always, policy=policy)
        # waits 5 + 10(capped at 8) = 13 > 12: give up on attempt 2's wait.
        assert registry.counters["retries_total"].value == 1

    def test_scoped_policy_context(self):
        with retry_policy(RetryPolicy(max_attempts=1)):
            def always():
                raise CaptureDropError("down")

            with pytest.raises(CaptureDropError):
                retry_call(always)
            assert "retries_total" not in registry.counters

    def test_passes_arguments_through(self):
        assert retry_call(lambda a, b=0: a + b, 2, b=3) == 5
