"""Fleet fault plans: spec validation, keyed draws, churn transforms.

The engine-invariance contract lives in
``tests/cloud/test_campaigns.py`` (whole campaigns bit-identical across
engines under a plan); these tests pin the plan object itself --
validation errors that name the offending key, draws keyed to event
identity rather than call order, and the pure-array churn transforms.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.observability.metrics import registry
from repro.reliability.fleet_chaos import (
    FLEET_FAULT_SITES,
    ExcursionAmbient,
    FleetFaultPlan,
    OutageWindow,
    PreemptionStorm,
    RetirementWave,
    ThermalExcursion,
    WipeFaultSpec,
    default_fleet_chaos_plan,
    derive_fleet_plan_seed,
    load_fleet_fault_plan,
    note_fleet_fault,
)


class TestSpecs:
    def test_wipe_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            WipeFaultSpec(fail_probability=1.5)
        with pytest.raises(ConfigurationError):
            WipeFaultSpec(partial_probability=-0.1)
        with pytest.raises(ConfigurationError):
            WipeFaultSpec(fail_probability=0.6, partial_probability=0.6)
        with pytest.raises(ConfigurationError):
            WipeFaultSpec(fail_probability=0.1, max_fires=-1)
        WipeFaultSpec(fail_probability=0.5, partial_probability=0.5)

    def test_wipe_round_trip(self):
        spec = WipeFaultSpec(fail_probability=0.1,
                             partial_probability=0.2,
                             scrub_fraction=0.75, max_fires=3)
        assert WipeFaultSpec.from_dict(spec.to_dict()) == spec

    def test_wipe_unknown_key_named(self):
        with pytest.raises(ConfigurationError, match="fial_probability"):
            WipeFaultSpec.from_dict({"fial_probability": 0.1})

    def test_outage_validation(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(start_hours=-1.0, duration_hours=5.0)
        with pytest.raises(ConfigurationError):
            OutageWindow(start_hours=10.0, duration_hours=0.0)
        window = OutageWindow(start_hours=10.0, duration_hours=5.0)
        assert window.end_hours == 15.0
        assert OutageWindow.from_dict(window.to_dict()) == window

    def test_outage_missing_and_unknown_keys_named(self):
        with pytest.raises(ConfigurationError, match="duration_hours"):
            OutageWindow.from_dict({"start_hours": 1.0})
        with pytest.raises(ConfigurationError, match="finish_hours"):
            OutageWindow.from_dict({"start_hours": 1.0,
                                    "duration_hours": 2.0,
                                    "finish_hours": 3.0})
        with pytest.raises(ConfigurationError, match="start_hours"):
            OutageWindow.from_dict({"start_hours": "soon",
                                    "duration_hours": 2.0})

    def test_storm_and_wave_and_excursion_round_trip(self):
        storm = PreemptionStorm(start_hours=100.0, probability=0.5,
                                cut_churn=False)
        assert PreemptionStorm.from_dict(storm.to_dict()) == storm
        wave = RetirementWave(time_hours=20.0, boards=4)
        assert RetirementWave.from_dict(wave.to_dict()) == wave
        exc = ThermalExcursion(start_hours=5.0, duration_hours=2.0,
                               delta_k=12.0)
        assert ThermalExcursion.from_dict(exc.to_dict()) == exc

    def test_storm_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            PreemptionStorm(start_hours=1.0, probability=1.2)

    def test_wave_needs_boards(self):
        with pytest.raises(ConfigurationError):
            RetirementWave(time_hours=1.0, boards=0)

    def test_non_dict_spec_rejected(self):
        for klass in (WipeFaultSpec, OutageWindow, PreemptionStorm,
                      RetirementWave, ThermalExcursion):
            with pytest.raises(ConfigurationError):
                klass.from_dict(["not", "a", "dict"])


class TestExcursionAmbient:
    def test_adds_delta_inside_window_only(self):
        class Flat:
            def at(self, hours):
                return 300.0

        ambient = ExcursionAmbient(Flat(), (
            ThermalExcursion(start_hours=10.0, duration_hours=5.0,
                             delta_k=8.0),
            ThermalExcursion(start_hours=12.0, duration_hours=1.0,
                             delta_k=2.0),
        ))
        assert ambient.at(9.9) == 300.0
        assert ambient.at(10.0) == 308.0
        assert ambient.at(12.5) == 310.0  # overlap is additive
        assert ambient.at(15.0) == 300.0

    def test_pure_function_of_time(self):
        class Flat:
            def at(self, hours):
                return 290.0

        ambient = ExcursionAmbient(Flat(), (
            ThermalExcursion(start_hours=2.0, duration_hours=2.0),
        ))
        # Evaluation order must not matter (lazy timeline replays).
        forward = [ambient.at(t) for t in (0.0, 3.0, 5.0)]
        backward = [ambient.at(t) for t in (5.0, 3.0, 0.0)]
        assert forward == backward[::-1]


class TestKeyedDraws:
    def test_wipe_decision_keyed_to_identity_not_order(self):
        spec = WipeFaultSpec(fail_probability=0.3,
                             partial_probability=0.3)
        a = FleetFaultPlan(seed=5, wipe=spec)
        b = FleetFaultPlan(seed=5, wipe=spec)
        keys = [f"victim{i}" for i in range(12)]
        first = {k: a.decide_wipe(k, 4) for k in keys}
        # Same keys visited in reverse order: identical outcomes.
        second = {k: b.decide_wipe(k, 4) for k in reversed(keys)}
        assert first == second
        assert a.fires == b.fires

    def test_wipe_modes_and_scrub_mask(self):
        plan = FleetFaultPlan(
            seed=1, wipe=WipeFaultSpec(fail_probability=0.4,
                                       partial_probability=0.4,
                                       scrub_fraction=0.5),
        )
        modes = {"ok": 0, "failed": 0, "partial": 0}
        for i in range(64):
            mode, scrubbed = plan.decide_wipe(f"v{i}", 6)
            modes[mode] += 1
            if mode == "partial":
                assert isinstance(scrubbed, list) and len(scrubbed) == 6
                assert all(isinstance(s, bool) for s in scrubbed)
            else:
                assert scrubbed is None
        assert modes["failed"] > 0 and modes["partial"] > 0
        assert plan.fires["fleet.wipe_fail"] == modes["failed"]
        assert plan.fires["fleet.wipe_partial"] == modes["partial"]

    def test_wipe_max_fires_caps(self):
        plan = FleetFaultPlan(
            seed=1, wipe=WipeFaultSpec(fail_probability=1.0, max_fires=2),
        )
        modes = [plan.decide_wipe(f"v{i}", 2)[0] for i in range(5)]
        assert modes == ["failed", "failed", "ok", "ok", "ok"]

    def test_no_wipe_spec_is_always_ok(self):
        plan = FleetFaultPlan(seed=1)
        assert plan.decide_wipe("v0", 4) == ("ok", None)
        assert plan.total_fires == 0

    def test_storm_preempt_keyed_and_certain_at_one(self):
        storm = PreemptionStorm(start_hours=10.0, probability=0.5)
        a = FleetFaultPlan(seed=9, storms=(storm,))
        b = FleetFaultPlan(seed=9, storms=(storm,))
        keys = [f"victim{i}" for i in range(16)]
        assert ([a.storm_preempts(0, k) for k in keys]
                == [b.storm_preempts(0, k) for k in reversed(keys)][::-1])
        certain = FleetFaultPlan(seed=9, storms=(
            PreemptionStorm(start_hours=10.0, probability=1.0),))
        assert all(certain.storm_preempts(0, k) for k in keys)

    def test_retire_positions_descending_unique_clamped(self):
        plan = FleetFaultPlan(
            seed=3, retirements=(RetirementWave(time_hours=1.0, boards=5),)
        )
        picks = plan.retire_positions(0, available=20, count=5)
        assert picks == sorted(picks, reverse=True)
        assert len(set(picks)) == 5
        assert all(0 <= p < 20 for p in picks)
        assert plan.retire_positions(0, available=2, count=5) == [1, 0]
        assert plan.retire_positions(0, available=0, count=5) == []


class TestChurnTransforms:
    def test_outage_drops_arrivals_in_window(self):
        plan = FleetFaultPlan(seed=0, outages=(
            OutageWindow(start_hours=10.0, duration_hours=10.0),))
        arrivals = np.array([5.0, 10.0, 15.0, 19.999, 20.0, 30.0])
        durations = np.full(6, 2.0)
        out_a, out_d, dropped, truncated = plan.transform_churn(
            arrivals, durations)
        assert dropped == 3 and truncated == 0
        assert out_a.tolist() == [5.0, 20.0, 30.0]
        assert plan.churn_dropped == 3
        assert plan.ledger()["churn.dropped_by_outage"] == 3

    def test_storm_truncates_spanning_rentals(self):
        plan = FleetFaultPlan(seed=0, storms=(
            PreemptionStorm(start_hours=10.0),))
        arrivals = np.array([4.0, 8.0, 10.0, 12.0])
        durations = np.array([3.0, 5.0, 5.0, 5.0])
        out_a, out_d, dropped, truncated = plan.transform_churn(
            arrivals, durations)
        assert dropped == 0 and truncated == 1
        # Only the 8.0 arrival spans the storm; it now ends at 10.0.
        assert out_d.tolist() == [3.0, 2.0, 5.0, 5.0]

    def test_cut_churn_false_leaves_trace_alone(self):
        plan = FleetFaultPlan(seed=0, storms=(
            PreemptionStorm(start_hours=10.0, cut_churn=False),))
        arrivals = np.array([8.0])
        durations = np.array([5.0])
        _, out_d, _, truncated = plan.transform_churn(arrivals, durations)
        assert truncated == 0 and out_d.tolist() == [5.0]

    def test_outage_geometry(self):
        plan = FleetFaultPlan(seed=0, outages=(
            OutageWindow(start_hours=10.0, duration_hours=5.0),))
        assert plan.in_outage(10.0) and not plan.in_outage(15.0)
        assert plan.outage_end(12.0) == 15.0
        assert plan.outage_end(20.0) is None
        assert plan.outage_hours_within(12.0) == 2.0
        assert plan.outage_hours_within(100.0) == 5.0


class TestPlanLifecycle:
    def test_round_trip_and_fresh(self):
        plan = default_fleet_chaos_plan(7)
        clone = FleetFaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        plan.decide_wipe("v0", 4)  # consume state
        pristine = plan.fresh()
        assert pristine.total_fires == 0
        assert pristine.to_dict() == plan.to_dict()

    def test_reseeded_changes_only_seed(self):
        plan = default_fleet_chaos_plan(7)
        other = plan.reseeded(99)
        assert other.seed == 99
        expected = dict(plan.to_dict(), seed=99)
        assert other.to_dict() == expected

    def test_derive_fleet_plan_seed_decorrelates(self):
        seeds = {derive_fleet_plan_seed(0, s) for s in range(100)}
        assert len(seeds) == 100
        assert derive_fleet_plan_seed(1, 2) != derive_fleet_plan_seed(2, 1)

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ConfigurationError, match="storm"):
            FleetFaultPlan.from_dict({"schema": 1, "storm": []})

    def test_schema_mismatch(self):
        with pytest.raises(ConfigurationError, match="schema"):
            FleetFaultPlan.from_dict({"schema": 99})

    def test_non_spec_members_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetFaultPlan(seed=0, outages=({"start_hours": 1.0},))
        with pytest.raises(ConfigurationError):
            FleetFaultPlan(seed=0, wipe={"fail_probability": 0.1})


class TestLoader:
    def test_save_load_round_trip(self, tmp_path):
        plan = default_fleet_chaos_plan(3)
        path = plan.save(tmp_path / "plan.json")
        loaded = load_fleet_fault_plan(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no fleet fault plan"):
            load_fleet_fault_plan(tmp_path / "absent.json")

    def test_corrupt_json_names_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PersistenceError, match="bad.json"):
            load_fleet_fault_plan(bad)

    def test_malformed_spec_names_key_and_file(self, tmp_path):
        bad = tmp_path / "typo.json"
        bad.write_text(json.dumps({
            "schema": 1,
            "outages": [{"start_hours": 1.0, "durration_hours": 2.0}],
        }))
        with pytest.raises(PersistenceError) as excinfo:
            load_fleet_fault_plan(bad)
        message = str(excinfo.value)
        assert "typo.json" in message and "durration_hours" in message

    def test_committed_default_plan_meets_the_gate(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        plan = load_fleet_fault_plan(
            root / "plans" / "fleet-chaos-default.json"
        )
        # The robustness gate: >= 1% failed wipes, one outage window,
        # a preemption storm.
        assert plan.wipe is not None
        assert plan.wipe.fail_probability >= 0.01
        assert plan.wipe.partial_probability > 0.0
        assert len(plan.outages) >= 1
        assert len(plan.storms) >= 1


class TestNoteFleetFault:
    def test_counters_decompose_per_site(self):
        registry.reset()
        try:
            note_fleet_fault("fleet.wipe_fail", victim=0)
            note_fleet_fault("fleet.wipe_fail", victim=1)
            note_fleet_fault("fleet.outage", victim=2)
            snap = registry.snapshot()["counters"]
            assert snap["fleet_faults_injected_total"] == 3
            assert snap["fleet_faults_injected_fleet_wipe_fail_total"] == 2
            assert snap["fleet_faults_injected_fleet_outage_total"] == 1
        finally:
            registry.reset()

    def test_sites_are_stable(self):
        assert FLEET_FAULT_SITES == (
            "fleet.wipe_fail", "fleet.wipe_partial", "fleet.outage",
            "fleet.preempt", "fleet.retire", "fleet.thermal",
        )
