"""Sweep journal: atomic per-seed checkpointing and resume safety."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError
from repro.reliability.checkpoint import JOURNAL_SCHEMA, SweepJournal


class TestSweepJournal:
    def test_missing_file_is_empty_journal(self, tmp_path):
        journal = SweepJournal.load(tmp_path / "new.json", context={"x": 1})
        assert len(journal) == 0
        assert journal.completed_seeds() == []
        assert not (tmp_path / "new.json").exists()

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "sweep.json"
        journal = SweepJournal(path, context={"experiment": "exp1"})
        journal.record(3, 0.875, metrics_state={"counters": {}})
        journal.record(1, 1.0)
        assert path.exists()

        loaded = SweepJournal.load(path, context={"experiment": "exp1"})
        assert loaded.completed_seeds() == [1, 3]
        assert 3 in loaded and 2 not in loaded
        assert loaded.value(3) == 0.875
        assert loaded.get(3)["metrics_state"] == {"counters": {}}
        assert "metrics_state" not in loaded.get(1)

    def test_rerecording_a_seed_overwrites(self, tmp_path):
        path = tmp_path / "sweep.json"
        journal = SweepJournal(path)
        journal.record(1, 0.5)
        journal.record(1, 0.75)
        loaded = SweepJournal.load(path)
        assert len(loaded) == 1
        assert loaded.value(1) == 0.75

    def test_flush_leaves_no_temp_files(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.json")
        for seed in range(5):
            journal.record(seed, float(seed))
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.json"]

    def test_corrupt_journal_names_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text('{"schema": 1, "entries": [')
        with pytest.raises(PersistenceError, match="sweep.json"):
            SweepJournal.load(path)

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(PersistenceError, match="not a sweep journal"):
            SweepJournal.load(path)

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "schema": JOURNAL_SCHEMA + 1, "context": {}, "entries": [],
        }))
        with pytest.raises(PersistenceError, match="schema"):
            SweepJournal.load(path)

    def test_context_mismatch_refuses_to_mix(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepJournal(path, context={"experiment": "exp1"}).record(1, 1.0)
        with pytest.raises(PersistenceError, match="different sweep"):
            SweepJournal.load(path, context={"experiment": "exp2"})
        # Without a requested context the journal loads as written.
        loaded = SweepJournal.load(path)
        assert loaded.context == {"experiment": "exp1"}

    def test_extra_payload_round_trips(self, tmp_path):
        """Fleet sweeps stash the full campaign result and series dump
        in ``extra``; it must survive the disk round trip verbatim."""
        path = tmp_path / "sweep.json"
        journal = SweepJournal(path, context={"kind": "fleet_sweep"})
        extra = {
            "result": {"recovery_yield": 0.5, "faults": {"fleet.retire": 3}},
            "series_state": {"series": {}, "dump_id": "abc123"},
        }
        journal.record(7, 0.5, metrics_state={"counters": {"x": 1}},
                       extra=extra)
        journal.record(8, 1.0)  # no extra: key absent, not null
        loaded = SweepJournal.load(path, context={"kind": "fleet_sweep"})
        assert loaded.get(7)["extra"] == extra
        assert "extra" not in loaded.get(8)

    def test_malformed_entries(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "schema": JOURNAL_SCHEMA, "context": {},
            "entries": [{"value": 1.0}],  # no seed
        }))
        with pytest.raises(PersistenceError, match="missing required data"):
            SweepJournal.load(path)
