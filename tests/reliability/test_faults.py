"""Fault injection: plans, specs, determinism, and the no-op fast path."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    CaptureDropError,
    ConfigurationError,
    PersistenceError,
    TransientError,
)
from repro.observability.metrics import registry
from repro.reliability.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    fault_plan,
    get_fault_plan,
    load_fault_plan,
    maybe_inject,
    set_fault_plan,
)


class TestFaultSpec:
    def test_needs_exactly_one_mode(self):
        with pytest.raises(ConfigurationError):
            FaultSpec()
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=0.5, schedule=(1,))

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=-0.1)
        FaultSpec(probability=0.0)
        FaultSpec(probability=1.0)

    def test_schedule_indices_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(schedule=(-1,))

    def test_max_fires_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=0.5, max_fires=-1)

    def test_round_trip(self):
        spec = FaultSpec(schedule=(0, 3), max_fires=1)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        spec = FaultSpec(probability=0.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_schedule_fires_on_listed_visits(self):
        plan = FaultPlan(seed=1, specs={"s": FaultSpec(schedule=(1, 3))})
        fired = [plan.should_fire("s") for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert plan.fires == {"s": 2}
        assert plan.visits == {"s": 5}
        assert plan.total_fires == 2

    def test_probability_is_deterministic_per_seed(self):
        def sequence(seed):
            plan = FaultPlan(
                seed=seed, specs={"s": FaultSpec(probability=0.5)}
            )
            return [plan.should_fire("s") for _ in range(64)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        assert any(sequence(7))
        assert not all(sequence(7))

    def test_streams_are_independent_per_site(self):
        # Visiting site A must not perturb site B's decisions.
        specs = {
            "a": FaultSpec(probability=0.5),
            "b": FaultSpec(probability=0.5),
        }
        solo = FaultPlan(seed=3, specs=dict(specs))
        solo_b = [solo.should_fire("b") for _ in range(32)]
        mixed = FaultPlan(seed=3, specs=dict(specs))
        mixed_b = []
        for _ in range(32):
            mixed.should_fire("a")
            mixed_b.append(mixed.should_fire("b"))
        assert solo_b == mixed_b

    def test_max_fires_caps_injections(self):
        plan = FaultPlan(
            seed=1,
            specs={"s": FaultSpec(probability=1.0, max_fires=2)},
        )
        fired = [plan.should_fire("s") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.fires == {"s": 2}

    def test_unknown_site_never_fires(self):
        plan = FaultPlan(seed=1, specs={"s": FaultSpec(probability=1.0)})
        assert not plan.should_fire("other")

    def test_rejects_non_spec_values(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, specs={"s": {"probability": 0.5}})

    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan(seed=11, specs={
            "cloud.allocate": FaultSpec(probability=0.2),
            "cloud.preempt": FaultSpec(schedule=(1, 4), max_fires=1),
        })
        path = plan.save(tmp_path / "plan.json")
        loaded = load_fault_plan(path)
        assert loaded.seed == 11
        assert loaded.specs == plan.specs

    def test_load_missing_plan(self, tmp_path):
        with pytest.raises(PersistenceError, match="no fault plan"):
            load_fault_plan(tmp_path / "absent.json")

    def test_load_corrupt_plan_names_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PersistenceError, match="bad.json"):
            load_fault_plan(bad)

    def test_load_wrong_shape(self, tmp_path):
        bad = tmp_path / "shape.json"
        bad.write_text(json.dumps({"seed": 1}))
        with pytest.raises(PersistenceError):
            load_fault_plan(bad)

    def test_load_unknown_site_names_site_and_file(self, tmp_path):
        plan_path = tmp_path / "typo.json"
        plan_path.write_text(json.dumps({
            "seed": 1,
            "specs": {"cloud.alocate": {"probability": 0.5}},
        }))
        with pytest.raises(PersistenceError) as excinfo:
            load_fault_plan(plan_path)
        message = str(excinfo.value)
        assert "cloud.alocate" in message and "typo.json" in message

    def test_load_malformed_spec_names_site(self, tmp_path):
        plan_path = tmp_path / "bad-spec.json"
        plan_path.write_text(json.dumps({
            "seed": 1,
            "specs": {"cloud.allocate": {"probabillity": 0.5}},
        }))
        with pytest.raises(PersistenceError) as excinfo:
            load_fault_plan(plan_path)
        message = str(excinfo.value)
        assert "cloud.allocate" in message
        assert "probabillity" in message

    def test_load_unreadable_plan_names_file(self, tmp_path):
        target = tmp_path / "directory.json"
        target.mkdir()  # read_text -> IsADirectoryError (an OSError)
        with pytest.raises(PersistenceError, match="directory.json"):
            load_fault_plan(target)

    def test_spec_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="probabillity"):
            FaultSpec.from_dict({"probabillity": 0.5})
        with pytest.raises(ConfigurationError, match="object"):
            FaultSpec.from_dict([0.5])

    def test_committed_default_plan_is_loadable(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        plan = load_fault_plan(root / "plans" / "chaos-default.json")
        assert set(plan.specs) == set(FAULT_SITES)
        assert plan.specs["cloud.allocate"].probability >= 0.10
        assert len(plan.specs["cloud.preempt"].schedule) >= 2
        assert plan.specs["sensor.capture"].probability >= 0.05


class TestMaybeInject:
    def test_no_plan_is_a_noop(self):
        assert get_fault_plan() is None
        maybe_inject("sensor.capture", CaptureDropError, "unused")
        assert "faults_injected_total" not in registry.counters

    def test_injection_raises_and_counts(self):
        plan = FaultPlan(
            seed=1, specs={"sensor.capture": FaultSpec(probability=1.0)}
        )
        with fault_plan(plan):
            with pytest.raises(CaptureDropError) as excinfo:
                maybe_inject("sensor.capture", CaptureDropError, "dropped")
        assert isinstance(excinfo.value, TransientError)
        assert registry.counters["faults_injected_total"].value == 1
        assert (
            registry.counters["faults_injected_sensor_capture_total"].value
            == 1
        )
        assert plan.fires == {"sensor.capture": 1}

    def test_context_manager_restores_previous(self):
        plan = FaultPlan(seed=1)
        outer = FaultPlan(seed=2)
        set_fault_plan(outer)
        try:
            with fault_plan(plan):
                assert get_fault_plan() is plan
            assert get_fault_plan() is outer
        finally:
            set_fault_plan(None)

    def test_set_fault_plan_type_checked(self):
        with pytest.raises(ConfigurationError):
            set_fault_plan("not a plan")
