"""Chaos gate: experiments survive the default storm within bounds."""

from __future__ import annotations

import pytest

from repro.experiments import Experiment1Config, run_experiment1
from repro.persistence import bundle_to_dict
from repro.reliability.chaos import (
    CHAOS_ACCURACY_BOUNDS,
    DEFAULT_CHAOS_SPECS,
    default_chaos_plan,
    run_chaos,
    run_chaos_sweep,
)
from repro.reliability.faults import FAULT_SITES, FaultPlan, fault_plan


class TestDefaultStorm:
    def test_storm_meets_the_documented_gate(self):
        # The robustness gate: >= 10% transient allocation failures,
        # >= 2 preemptions, >= 5% dropped captures.
        assert DEFAULT_CHAOS_SPECS["cloud.allocate"].probability >= 0.10
        assert len(DEFAULT_CHAOS_SPECS["cloud.preempt"].schedule) >= 2
        assert DEFAULT_CHAOS_SPECS["sensor.capture"].probability >= 0.05
        assert set(DEFAULT_CHAOS_SPECS) <= set(FAULT_SITES)
        assert set(CHAOS_ACCURACY_BOUNDS) == {"exp1", "exp2", "exp3"}

    def test_default_plan_is_fresh_per_call(self):
        plan = default_chaos_plan(seed=3)
        assert plan.seed == 3
        assert plan.total_fires == 0
        assert plan.specs == DEFAULT_CHAOS_SPECS


class TestRunChaos:
    def test_exp1_storm_completes_within_bound(self):
        report = run_chaos("exp1", quick=True, seed=1)
        assert report.passed
        assert report.accuracy >= CHAOS_ACCURACY_BOUNDS["exp1"]
        assert report.bound == CHAOS_ACCURACY_BOUNDS["exp1"]
        # The storm actually struck and the pipeline actually recovered.
        assert report.total_faults > 0
        assert report.retries > 0
        assert report.total_faults == sum(report.faults_injected.values())
        assert "within bound" in str(report)

    def test_ledger_is_per_run_not_cumulative(self):
        first = run_chaos("exp1", quick=True, seed=1)
        second = run_chaos("exp1", quick=True, seed=1)
        assert first.faults_injected == second.faults_injected
        assert first.retries == second.retries
        assert first.accuracy == second.accuracy

    def test_unknown_experiment_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_chaos("exp9")


class TestEmptyPlanBitIdentity:
    def test_empty_plan_matches_plain_run(self):
        """An installed-but-empty plan must not perturb the pipeline."""
        config = Experiment1Config.quick(seed=5)
        plain = run_experiment1(config)
        with fault_plan(FaultPlan(seed=5, specs={})):
            stormless = run_experiment1(config)
        assert bundle_to_dict(plain.bundle) == bundle_to_dict(
            stormless.bundle
        )
        assert (
            plain.recovery_score.accuracy
            == stormless.recovery_score.accuracy
        )


class TestChaosSweep:
    def test_sweep_is_jobs_independent(self):
        seeds = [1, 2]
        sequential = run_chaos_sweep("exp1", seeds, quick=True, jobs=1)
        sharded = run_chaos_sweep("exp1", seeds, quick=True, jobs=2)
        assert sequential.values == sharded.values
        assert sequential.seeds == sharded.seeds

    def test_sweep_resumes_from_journal(self, tmp_path):
        journal_path = tmp_path / "chaos.journal"
        seeds = [1, 2]
        full = run_chaos_sweep(
            "exp1", seeds, quick=True, journal_path=journal_path
        )
        resumed = run_chaos_sweep(
            "exp1", seeds, quick=True, journal_path=journal_path
        )
        assert resumed.values == full.values

    def test_sweep_needs_seeds(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_chaos_sweep("exp1", [])
