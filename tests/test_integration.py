"""Cross-package integration invariants."""

import numpy as np
import pytest

from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.provider import CloudProvider
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.experiments import Experiment1Config, run_experiment1
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS


class TestDeterminism:
    def test_same_seed_reproduces_everything(self):
        """One seed pins the full pipeline: fabric, physics, sensors."""
        a = run_experiment1(Experiment1Config.quick(seed=17))
        b = run_experiment1(Experiment1Config.quick(seed=17))
        assert a.burn_values == b.burn_values
        for name, series in a.bundle.series.items():
            assert series.raw_delta_ps == b.bundle.series[name].raw_delta_ps

    def test_different_seeds_differ(self):
        a = run_experiment1(Experiment1Config.quick(seed=17))
        b = run_experiment1(Experiment1Config.quick(seed=18))
        some_route = next(iter(a.bundle.series))
        assert (a.bundle.series[some_route].raw_delta_ps
                != b.bundle.series[some_route].raw_delta_ps)


class TestMultiTenantIsolationFailure:
    """The vulnerability, stated as an integration property: tenant N's
    data is readable by tenant N+1, but NOT by a tenant on a different
    physical board."""

    def _platform(self):
        provider = CloudProvider(seed=5)
        fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 2,
                            wear=cloud_wear_profile(100.0), seed=6)
        provider.create_region("r", fleet)
        return provider

    def test_imprint_is_board_local(self):
        provider = self._platform()
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [10000.0, 10000.0])
        design = build_target_design(
            VIRTEX_ULTRASCALE_PLUS, routes, [1, 1], heater_dsps=0
        )
        victim = provider.rent("r", "victim")
        victim_device = victim.device
        other = provider.rent("r", "bystander")
        other_device = other.device
        victim.load_image(design.bitstream)
        provider.advance(48.0)
        provider.release(victim)
        provider.release(other)
        assert victim_device.route_delta_ps(routes[0]) > 1.0
        assert abs(other_device.route_delta_ps(routes[0])) < 0.5

    def test_successive_tenants_stack_imprints(self):
        provider = self._platform()
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [10000.0])
        one = build_target_design(VIRTEX_ULTRASCALE_PLUS, routes, [1],
                                  heater_dsps=0, name="tenant-one")
        zero = build_target_design(VIRTEX_ULTRASCALE_PLUS, routes, [0],
                                   heater_dsps=0, name="tenant-two")
        first = provider.rent("r", "one")
        device = first.device
        first.load_image(one.bitstream)
        provider.advance(100.0)
        provider.release(first)
        after_first = device.route_delta_ps(routes[0])
        second = provider.rent("r", "two")
        assert second.device is device  # LIFO hands the same board out
        second.load_image(zero.bitstream)
        provider.advance(20.0)
        provider.release(second)
        after_second = device.route_delta_ps(routes[0])
        # The second tenant's opposite value eats into the imprint.
        assert after_second < after_first


class TestPartPortability:
    @pytest.mark.parametrize("part", [ZYNQ_ULTRASCALE_PLUS,
                                      VIRTEX_ULTRASCALE_PLUS])
    def test_full_stack_runs_on_both_parts(self, part):
        from repro.core.bench import LabBench
        from repro.core.protocol import ConditionMeasureProtocol
        from repro.fabric.device import FpgaDevice
        from repro.sensor.noise import LAB_NOISE

        device = FpgaDevice(part, seed=23)
        bench = LabBench(device)
        routes = build_route_bank(device.grid, [5000.0, 5000.0])
        target = build_target_design(part, routes, [1, 0], heater_dsps=0)
        measure = build_measure_design(part, routes)
        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
            condition_hours_per_cycle=4.0,
        )
        protocol.calibration.noise = LAB_NOISE
        protocol.calibrate()
        bundle = protocol.run_cycles(6)
        assert bundle.series[routes[0].name].centered[-1] > 0.0
        assert bundle.series[routes[1].name].centered[-1] < 0.0


class TestVerifierPredictsAttack:
    def test_high_grade_nets_are_the_recoverable_ones(self):
        """The Section 8.1 analyzer's grades match attack reality: on a
        fresh board, long routes grade CRITICAL and short ones lower,
        mirroring the per-length accuracies every experiment measures."""
        from repro.verify import ThreatScenario, analyze_routes

        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 10000.0])
        report = analyze_routes(
            routes, ThreatScenario(residency_hours=48.0,
                                   device_age_hours=0.0)
        )
        short, long_ = report.exposures
        assert long_.attacker_snr > 4.0 * short.attacker_snr
        assert long_.hours_to_extraction < short.hours_to_extraction


class TestMultiRegion:
    def test_regions_advance_together(self):
        provider = CloudProvider(seed=9)
        provider.create_region(
            "us", build_fleet(VIRTEX_ULTRASCALE_PLUS, 1, seed=1)
        )
        provider.create_region(
            "eu", build_fleet(VIRTEX_ULTRASCALE_PLUS, 1, seed=2)
        )
        provider.advance(7.0)
        provider.sync_all()
        for region_name in ("us", "eu"):
            for device in provider.region(region_name).devices():
                assert device.sim_hours == pytest.approx(7.0)
