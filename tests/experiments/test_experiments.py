"""Integration tests: the three experiment drivers (quick configs)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.analysis.timeseries import length_class
from repro.experiments import (
    Experiment1Config,
    Experiment2Config,
    Experiment3Config,
    render_experiment_panels,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)
from repro.physics.pool_array import aging_kernel


class TestConfigs:
    def test_paper_configs_match_protocol(self):
        config = Experiment1Config.paper()
        assert len(config.route_lengths) == 64
        assert config.burn_hours == 200
        assert config.recovery_hours == 200
        assert Experiment2Config.paper().heater_dsps == 3896
        assert Experiment3Config.paper().recovery_hours == 25
        assert Experiment3Config.paper().conditioned_to == 0

    def test_quick_configs_preserve_structure(self):
        for config in (Experiment1Config.quick(), Experiment2Config.quick(),
                       Experiment3Config.quick()):
            classes = {length_class(l) for l in config.route_lengths}
            assert classes == {1000.0, 2000.0, 5000.0, 10000.0}

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            Experiment1Config(routes_per_length=0)
        with pytest.raises(ConfigurationError):
            Experiment3Config(conditioned_to=2)


class TestExperiment1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment1(Experiment1Config.quick(seed=5))

    def test_full_bit_recovery(self, result):
        assert result.recovery_score.accuracy == 1.0

    def test_burn_direction_by_value(self, result):
        for series in result.bundle:
            burn_window = series.window(0.0, result.stress_change_hour)
            end = burn_window.centered[-1]
            if series.burn_value == 1:
                assert end > 0.0
            else:
                assert end < 0.0

    def test_magnitude_grows_with_length(self, result):
        bands = [result.magnitude_band(L)[1]
                 for L in (1000.0, 2000.0, 5000.0, 10000.0)]
        assert bands == sorted(bands)

    def test_burn_one_routes_recover(self, result):
        for series in result.bundle:
            if series.burn_value != 1:
                continue
            burn_end = series.window(0.0, result.stress_change_hour).centered[-1]
            final = series.centered[-1]
            assert final < burn_end  # moved back towards / below zero

    def test_panels_render(self, result):
        text = render_experiment_panels(
            result.bundle, "Fig6", stress_change_hour=result.stress_change_hour
        )
        assert text.count("ps routes") == 4


class TestExperiment2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment2(Experiment2Config.quick(seed=5))

    def test_recovery_above_chance(self, result):
        assert result.recovery_score.accuracy >= 0.75

    def test_long_routes_recover_reliably(self, result):
        accuracy = result.accuracy_by_length()
        assert accuracy[10000.0] == 1.0

    def test_cloud_magnitudes_smaller_than_lab(self, result):
        lab = run_experiment1(Experiment1Config.quick(seed=5))
        cloud_band = result.magnitude_band(10000.0)[1]
        lab_band = lab.magnitude_band(10000.0)[1]
        assert cloud_band < lab_band


class TestExperiment3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment3(Experiment3Config.quick(seed=19))

    def test_recovery_above_chance(self, result):
        assert result.recovery_score.accuracy >= 0.7

    def test_all_boards_probed(self, result):
        assert result.devices_probed == result.config.fleet_size

    def test_burn_one_routes_show_recovery_transient(self, result):
        """Figure 8: purple routes decrease relative to cyan ones."""
        burn1_ends, burn0_ends = [], []
        for series in result.bundle:
            if length_class(series.nominal_delay_ps) < 5000.0:
                continue
            scaled = series.centered[-1] / (series.nominal_delay_ps / 1000.0)
            (burn1_ends if series.burn_value == 1 else burn0_ends).append(scaled)
        assert np.mean(burn1_ends) < np.mean(burn0_ends)

    def test_series_start_at_attack_time(self, result):
        for series in result.bundle:
            assert series.hours[0] == 0.0  # attacker's clock, not victim's


class TestAgingKernelEquality:
    """Acceptance pin: the experiments report identical recovery
    accuracy under the vectorised and the scalar aging kernels."""

    @pytest.mark.parametrize("config_cls,runner,seed", [
        (Experiment1Config, run_experiment1, 5),
        (Experiment2Config, run_experiment2, 5),
        (Experiment3Config, run_experiment3, 19),
    ], ids=["exp1", "exp2", "exp3"])
    def test_accuracy_identical_under_both_kernels(
        self, config_cls, runner, seed
    ):
        with aging_kernel("array"):
            vectorised = runner(config_cls.quick(seed=seed))
        with aging_kernel("scalar"):
            reference = runner(config_cls.quick(seed=seed))
        assert (vectorised.recovery_score.accuracy
                == reference.recovery_score.accuracy)
        assert (vectorised.recovery_score.per_route
                == reference.recovery_score.per_route)
