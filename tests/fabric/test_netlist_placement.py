"""Tests for netlists, cells, activity, and placement."""

import pytest

from repro.errors import ConfigurationError, FabricError, PlacementError
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.placement import (
    SITES_PER_TILE,
    ClusteredPlacer,
    FixedPlacer,
)


def small_netlist():
    netlist = Netlist(name="t")
    netlist.add_cell(Cell("ff1", CellType.FLIP_FLOP))
    netlist.add_cell(Cell("lut1", CellType.LUT))
    return netlist


class TestNetlist:
    def test_duplicate_cell_rejected(self):
        netlist = small_netlist()
        with pytest.raises(FabricError):
            netlist.add_cell(Cell("ff1", CellType.FLIP_FLOP))

    def test_net_with_unknown_driver_rejected(self):
        netlist = small_netlist()
        with pytest.raises(FabricError):
            netlist.add_net(Net("n", driver="ghost", sinks=("lut1",)))

    def test_net_with_unknown_sink_rejected(self):
        netlist = small_netlist()
        with pytest.raises(FabricError):
            netlist.add_net(Net("n", driver="ff1", sinks=("ghost",)))

    def test_static_net_requires_value(self):
        with pytest.raises(ConfigurationError):
            Net("n", driver="a", sinks=(), activity=NetActivity.STATIC)

    def test_static_value_must_be_bit(self):
        with pytest.raises(ConfigurationError):
            Net("n", driver="a", sinks=(), activity=NetActivity.STATIC,
                static_value=2)

    def test_with_static_value_copies(self):
        net = Net("n", driver="a", sinks=("b",),
                  activity=NetActivity.STATIC, static_value=0)
        flipped = net.with_static_value(1)
        assert flipped.static_value == 1
        assert net.static_value == 0

    def test_classification_helpers(self):
        netlist = small_netlist()
        netlist.add_net(Net("s", driver="ff1", sinks=("lut1",),
                            activity=NetActivity.STATIC, static_value=1))
        netlist.add_net(Net("t", driver="ff1", sinks=("lut1",),
                            activity=NetActivity.TOGGLING))
        assert [n.name for n in netlist.static_nets()] == ["s"]
        assert [n.name for n in netlist.toggling_nets()] == ["t"]

    def test_combinational_graph_breaks_at_flip_flops(self):
        netlist = Netlist(name="g")
        netlist.add_cell(Cell("lut_a", CellType.LUT))
        netlist.add_cell(Cell("ff", CellType.FLIP_FLOP))
        netlist.add_cell(Cell("lut_b", CellType.LUT))
        netlist.add_net(Net("n1", driver="lut_a", sinks=("ff",)))
        netlist.add_net(Net("n2", driver="ff", sinks=("lut_b",)))
        graph = netlist.combinational_graph()
        assert not list(graph.edges)

    def test_combinational_loop_visible_in_graph(self):
        import networkx as nx

        netlist = Netlist(name="ro")
        netlist.add_cell(Cell("inv", CellType.INVERTER))
        netlist.add_net(Net("loop", driver="inv", sinks=("inv",)))
        cycles = list(nx.simple_cycles(netlist.combinational_graph()))
        assert cycles == [["inv"]]

    def test_merge_with_prefix(self):
        a, b = small_netlist(), small_netlist()
        a.merge(b, prefix="sub_")
        assert "sub_ff1" in a.cells
        assert len(a.cells) == 4


class TestFixedPlacer:
    def _grid(self):
        return FabricGrid(16, 16)

    def test_place_at_fills_sites_in_order(self):
        placer = FixedPlacer(self._grid())
        coord = Coordinate(0, 0)
        s0 = placer.place_at("a", CellType.LUT, coord)
        s1 = placer.place_at("b", CellType.LUT, coord)
        assert (s0.index, s1.index) == (0, 1)

    def test_tile_capacity_enforced(self):
        placer = FixedPlacer(self._grid())
        coord = Coordinate(0, 0)
        for i in range(SITES_PER_TILE[CellType.LUT]):
            placer.place_at(f"c{i}", CellType.LUT, coord)
        with pytest.raises(PlacementError):
            placer.place_at("overflow", CellType.LUT, coord)

    def test_wrong_tile_type_rejected(self):
        placer = FixedPlacer(self._grid())
        clb = Coordinate(0, 0)
        with pytest.raises(PlacementError):
            placer.place_at("d", CellType.DSP48, clb)

    def test_different_cell_types_share_a_tile(self):
        placer = FixedPlacer(self._grid())
        coord = Coordinate(0, 0)
        placer.place_at("lut", CellType.LUT, coord)
        placer.place_at("ff", CellType.FLIP_FLOP, coord)
        placer.place_at("carry", CellType.CARRY8, coord)

    def test_nearest_tile_skips_full_tiles(self):
        placer = FixedPlacer(self._grid())
        first = placer.nearest_tile(Coordinate(0, 0), CellType.CARRY8)
        placer.place_at("c0", CellType.CARRY8, first)
        second = placer.nearest_tile(Coordinate(0, 0), CellType.CARRY8)
        assert second != first

    def test_duplicate_cell_name_rejected(self):
        placer = FixedPlacer(self._grid())
        placer.place_at("a", CellType.LUT, Coordinate(0, 0))
        with pytest.raises(PlacementError):
            placer.place_at("a", CellType.LUT, Coordinate(1, 0))


class TestClusteredPlacer:
    def test_cluster_lands_near_centroid(self):
        grid = FabricGrid(32, 32)
        placer = ClusteredPlacer(grid, seed=5)
        names = [f"c{i}" for i in range(20)]
        centre = Coordinate(16, 16)
        placer.place_cluster(names, CellType.LUT, centre, spread_tiles=2.0)
        distances = [
            placer.placement.location_of(n).manhattan_distance(centre)
            for n in names
        ]
        assert max(distances) < 16
        assert sum(distances) / len(distances) < 8

    def test_negative_spread_rejected(self):
        placer = ClusteredPlacer(FabricGrid(8, 8), seed=1)
        with pytest.raises(PlacementError):
            placer.place_cluster(["a"], CellType.LUT, Coordinate(4, 4), -1.0)
