"""Tests for delay-targeting and maze routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.router import (
    DelayTargetRouter,
    MazeRouter,
    compose_delay,
    compose_displacement,
    displacement_delay_ps,
)
from repro.fabric.routing import validate_disjoint
from repro.fabric.segments import SegmentKind, spec_for


class TestComposeDelay:
    @pytest.mark.parametrize("target", [1000, 2000, 5000, 10000])
    def test_paper_lengths_within_tolerance(self, target):
        kinds = compose_delay(float(target))
        achieved = sum(spec_for(k).delay_ps for k in kinds)
        assert abs(achieved - target) / target < 0.05

    def test_small_target(self):
        kinds = compose_delay(50.0, tolerance=0.2)
        assert kinds  # at least a LOCAL hop

    def test_unreachable_tolerance_raises(self):
        with pytest.raises(RoutingError):
            compose_delay(1000.0, tolerance=0.0001)

    def test_nonpositive_target_rejected(self):
        with pytest.raises(RoutingError):
            compose_delay(0.0)

    @given(target=st.floats(min_value=400.0, max_value=20000.0))
    @settings(max_examples=50, deadline=None)
    def test_any_reasonable_target_within_tolerance(self, target):
        # Short targets quantise to the wire classes, so allow 10%.
        kinds = compose_delay(target, tolerance=0.1)
        achieved = sum(spec_for(k).delay_ps for k in kinds)
        assert abs(achieved - target) / target <= 0.1


class TestDelayTargetRouter:
    def _grid(self):
        return ZYNQ_ULTRASCALE_PLUS.make_grid()

    def test_route_stays_on_die(self):
        router = DelayTargetRouter(self._grid())
        route = router.route("r", Coordinate(0, 0), 10000.0)
        for seg in route:
            assert self._grid().contains(seg.origin)

    def test_routes_share_allocator_disjoint(self):
        router = DelayTargetRouter(self._grid())
        routes = [
            router.route(f"r{i}", Coordinate(0, 0), 5000.0) for i in range(8)
        ]
        validate_disjoint(routes)

    def test_track_exhaustion_raises(self):
        router = DelayTargetRouter(self._grid(), tracks_per_class=1)
        router.route("a", Coordinate(0, 0), 1000.0)
        with pytest.raises(RoutingError):
            router.route("b", Coordinate(0, 0), 1000.0)

    def test_shell_anchor_rejected(self):
        from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        router = DelayTargetRouter(grid)
        with pytest.raises(Exception):
            router.route("r", Coordinate(0, 0), 1000.0)  # shell row

    def test_switch_counts_for_paper_lengths(self):
        """The calibration relies on these compositions."""
        router = DelayTargetRouter(self._grid())
        counts = {}
        for i, length in enumerate((1000, 2000, 5000, 10000)):
            route = router.route(f"r{i}", Coordinate(i * 8, 0), float(length))
            counts[length] = route.switch_count
        assert counts[1000] == 6
        assert counts[10000] == 46
        assert counts[2000] < counts[5000] < counts[10000]


class TestMazeRouter:
    def test_route_connects_endpoints(self):
        grid = FabricGrid(16, 16)
        router = MazeRouter(grid)
        route = router.route("n", Coordinate(1, 1), Coordinate(10, 12))
        assert route.segments[0].origin == Coordinate(1, 1)
        assert route.segments[-1].origin == Coordinate(10, 12)

    def test_same_tile_route_is_two_local_hops(self):
        grid = FabricGrid(8, 8)
        router = MazeRouter(grid)
        route = router.route("n", Coordinate(2, 2), Coordinate(2, 2))
        assert all(s.kind is SegmentKind.LOCAL for s in route)

    def test_delay_close_to_greedy_composition(self):
        grid = FabricGrid(48, 64)
        router = MazeRouter(grid)
        route = router.route("n", Coordinate(2, 2), Coordinate(38, 50))
        greedy = displacement_delay_ps(36, 48)
        assert route.nominal_delay_ps == pytest.approx(greedy, rel=0.1)

    def test_distinct_nets_get_distinct_segments(self):
        grid = FabricGrid(16, 16)
        router = MazeRouter(grid)
        a = router.route("a", Coordinate(0, 0), Coordinate(8, 8))
        b = router.route("b", Coordinate(0, 0), Coordinate(8, 8))
        assert not a.overlaps(b)


class TestDisplacement:
    def test_zero_displacement_is_two_locals(self):
        kinds = compose_displacement(0, 0)
        assert kinds == [SegmentKind.LOCAL, SegmentKind.LOCAL]

    def test_long_first_decomposition(self):
        kinds = compose_displacement(25, 0)
        longs = [k for k in kinds if k is SegmentKind.LONG]
        assert len(longs) == 2  # 25 = 12 + 12 + 1

    def test_delay_monotone_per_long_line_multiple(self):
        # Delay is not globally monotone in tile distance (a 12-tile
        # LONG line is faster than 9 tiles of short wires -- real FPGA
        # behaviour), but adding a LONG line always adds delay.
        for d in range(0, 48, 1):
            assert displacement_delay_ps(d + 12, 0) > displacement_delay_ps(d, 0)

    @given(dx=st.integers(-50, 50), dy=st.integers(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_displacement_covers_distance(self, dx, dy):
        kinds = compose_displacement(dx, dy)
        span = sum(spec_for(k).span_tiles for k in kinds)
        assert span == abs(dx) + abs(dy)
