"""Tests for frame-level configuration memory and partial reconfiguration."""

import pytest

from repro.errors import AccessError, ConfigurationError
from repro.designs import build_route_bank, build_target_design
from repro.fabric.frames import (
    FrameAddress,
    apply_partial,
    compile_frames,
    diff_frames,
    extract_partial,
    readback,
)
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS

PART = ZYNQ_ULTRASCALE_PLUS


def design_with_key(key, name="keyed"):
    grid = PART.make_grid()
    routes = build_route_bank(grid, [1000.0] * len(key))
    return build_target_design(PART, routes, key, heater_dsps=0,
                               name=name), routes


class TestCompile:
    def test_deterministic(self):
        design, _ = design_with_key([1, 0])
        a = compile_frames(design.bitstream)
        b = compile_frames(design.bitstream)
        assert a.crc() == b.crc()

    def test_covers_every_used_column(self):
        design, routes = design_with_key([1, 0, 1])
        image = compile_frames(design.bitstream)
        used = {seg.origin.x for route in routes for seg in route}
        assert used <= image.columns()

    def test_frames_encode_constant_values(self):
        """The Type A secret is literally in the configuration bits --
        the reason AFIs are sealed."""
        ones, _ = design_with_key([1, 1], name="k")
        zeros, _ = design_with_key([0, 0], name="k")
        assert compile_frames(ones.bitstream).crc() != compile_frames(
            zeros.bitstream
        ).crc()

    def test_invalid_address_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameAddress(-1, 0)


class TestReadback:
    def test_tenant_readback_forbidden(self):
        design, _ = design_with_key([1])
        with pytest.raises(AccessError):
            readback(design.bitstream)

    def test_platform_readback_allowed(self):
        design, _ = design_with_key([1])
        image = readback(design.bitstream, platform_access=True)
        assert image.frames


class TestDiff:
    def test_identical_designs_produce_no_diff(self):
        design, _ = design_with_key([1, 0], name="same")
        image = compile_frames(design.bitstream)
        assert diff_frames(image, image) == []

    def test_value_change_localises_to_key_columns(self):
        """Two related public bitstreams leak where the secret lives."""
        a, routes = design_with_key([1, 0, 1, 1], name="v")
        b, _ = design_with_key([1, 0, 0, 1], name="v")
        changed = diff_frames(
            compile_frames(a.bitstream), compile_frames(b.bitstream)
        )
        assert changed
        changed_columns = {address.column for address in changed}
        # Only the flipped bit's route anchor column differs.
        flipped_anchor = routes[2].segments[0].origin.x
        assert changed_columns == {flipped_anchor}


class TestPartialReconfiguration:
    def test_extract_keeps_window_contained_nets(self):
        design, routes = design_with_key([1, 0])
        window = {seg.origin.x for seg in routes[0]}
        partial = extract_partial(design.bitstream, window)
        assert routes[0].name in partial.netlist.nets
        # Every frame stays inside the window.
        assert {a.column for a in partial.image.frames} <= set(window)

    def test_apply_round_trip_preserves_values(self):
        design, _ = design_with_key([1, 0])
        window = design.bitstream.skeleton().routes[
            design.routes[0].name
        ].segments
        columns = {seg.origin.x for seg in window}
        partial = extract_partial(design.bitstream, columns)
        merged = apply_partial(design.bitstream, partial)
        assert merged.static_values() == design.bitstream.static_values()

    def test_apply_swaps_key_in_place(self):
        """Partial reconfiguration rotates the key without touching the
        rest of the design -- the cheap form of the rotation mitigation."""
        original, routes = design_with_key([1, 1], name="rot")
        rotated, _ = design_with_key([0, 0], name="rot")
        columns = {seg.origin.x for route in routes for seg in route}
        partial = extract_partial(rotated.bitstream, columns)
        merged = apply_partial(original.bitstream, partial)
        assert set(merged.static_values().values()) == {0}

    def test_empty_window_rejected(self):
        design, _ = design_with_key([1])
        with pytest.raises(ConfigurationError):
            extract_partial(design.bitstream, [])
