"""Tests for the FpgaDevice: the persistence of analog state is the
vulnerability, so these are the most security-relevant invariants in the
code base."""

import pytest

from repro.errors import FabricError
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.physics.aging import CLOUD_PART, NEW_PART
from repro.physics.pool_array import aging_kernel
from repro.units import celsius_to_kelvin

AMBIENT = celsius_to_kelvin(60.0)


def conditioned_device(burn_values=(1, 0), hours=24):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=7)
    routes = build_route_bank(device.grid, [2000.0] * len(burn_values))
    design = build_target_design(
        device.part, routes, list(burn_values), heater_dsps=0
    )
    device.load(design.bitstream)
    device.advance_hours(float(hours), AMBIENT)
    return device, routes


class TestWipeSemantics:
    def test_wipe_clears_logical_state(self):
        device, _ = conditioned_device()
        assert device.loaded_design is not None
        device.wipe()
        assert device.loaded_design is None

    def test_wipe_preserves_analog_state(self):
        """The central claim of the paper, enforced structurally."""
        device, routes = conditioned_device()
        before = [device.route_delta_ps(r) for r in routes]
        device.wipe()
        after = [device.route_delta_ps(r) for r in routes]
        assert after == before
        assert abs(after[0]) > 0.1  # a real imprint survived

    def test_reload_after_wipe_sees_same_transistors(self):
        device, routes = conditioned_device()
        imprint = device.route_delta_ps(routes[0])
        device.wipe()
        other = build_target_design(
            device.part, routes, [0, 0], heater_dsps=0, name="second-tenant"
        )
        device.load(other.bitstream)
        assert device.route_delta_ps(routes[0]) == pytest.approx(imprint)


class TestLoadLifecycle:
    def test_double_load_rejected(self):
        device, routes = conditioned_device()
        design = build_target_design(
            device.part, routes, [1, 1], heater_dsps=0, name="x"
        )
        with pytest.raises(FabricError):
            device.load(design.bitstream)

    def test_advance_without_design_anneals(self):
        device, routes = conditioned_device(burn_values=(1, 1), hours=50)
        device.wipe()
        before = device.route_delta_ps(routes[0])
        device.advance_hours(100.0, AMBIENT)
        after = device.route_delta_ps(routes[0])
        assert 0.0 <= after < before

    def test_negative_advance_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        with pytest.raises(FabricError):
            device.advance_hours(-1.0, AMBIENT)

    def test_age_accumulates_only_while_powered(self):
        device, _ = conditioned_device(hours=10)
        powered_age = device.effective_age_hours
        device.wipe()
        device.advance_hours(10.0, AMBIENT)
        assert device.effective_age_hours == powered_age

    def test_sim_hours_always_advance(self):
        device, _ = conditioned_device(hours=10)
        device.wipe()
        device.advance_hours(5.0, AMBIENT)
        assert device.sim_hours == pytest.approx(15.0)


class TestBurnDirection:
    def test_burn_values_imprint_with_correct_signs(self):
        device, routes = conditioned_device(burn_values=(1, 0), hours=48)
        assert device.route_delta_ps(routes[0]) > 0.0
        assert device.route_delta_ps(routes[1]) < 0.0

    def test_longer_routes_imprint_more(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=9)
        routes = build_route_bank(device.grid, [1000.0, 10000.0])
        design = build_target_design(device.part, routes, [1, 1], heater_dsps=0)
        device.load(design.bitstream)
        device.advance_hours(48.0, AMBIENT)
        short, long_ = (device.route_delta_ps(r) for r in routes)
        assert long_ > 4.0 * short


class TestWear:
    def test_cloud_devices_have_residual_imprints(self):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, wear=CLOUD_PART, seed=11)
        routes = build_route_bank(device.grid, [5000.0])
        delta = device.route_delta_ps(routes[0])
        # Residuals are nonzero but small relative to a fresh burn.
        assert delta != 0.0
        assert abs(delta) < 3.0

    def test_new_devices_are_clean(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=12)
        routes = build_route_bank(device.grid, [5000.0])
        assert device.route_delta_ps(routes[0]) == 0.0

    def test_device_ids_unique(self):
        a = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        b = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        assert a.device_id != b.device_id

    def test_info_reports_identity(self):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, wear=CLOUD_PART, seed=13)
        info = device.info()
        assert info.part_name == "xcvu9p"
        assert info.effective_age_hours > 0.0


class TestAgingKernelEquivalence:
    """The array kernel must be bit-identical to the scalar reference
    at the device level: same seed, same schedule, same delays."""

    @staticmethod
    def _run_history(kernel, wear):
        with aging_kernel(kernel):
            device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=wear, seed=21)
        routes = build_route_bank(device.grid, [2000.0, 3000.0, 1500.0])
        design = build_target_design(
            device.part, routes, [1, 0, 1], heater_dsps=2
        )
        device.load(design.bitstream)
        device.advance_hours(24.0, AMBIENT)
        device.advance_hours(12.0, AMBIENT + 10.0)
        device.wipe()
        device.advance_hours(8.0, AMBIENT)
        second = build_target_design(
            device.part, routes, [0, 1, 0], heater_dsps=0, name="tenant-2"
        )
        device.load(second.bitstream)
        device.advance_hours(16.0, AMBIENT)
        return device, routes

    @pytest.mark.parametrize("wear", [NEW_PART, CLOUD_PART],
                             ids=["new", "cloud"])
    def test_kernels_bit_identical_across_tenant_history(self, wear):
        scalar_dev, scalar_routes = self._run_history("scalar", wear)
        array_dev, array_routes = self._run_history("array", wear)
        for sr, ar in zip(scalar_routes, array_routes):
            assert array_dev.route_delta_ps(ar) == scalar_dev.route_delta_ps(sr)
            assert (array_dev.transition_delays(ar)
                    == scalar_dev.transition_delays(sr))

    def test_kernel_resolved_at_construction(self):
        with aging_kernel("scalar"):
            device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        # Leaving the context does not retroactively change the device.
        assert device.aging_kernel == "scalar"
        assert "scalar" in repr(device)

    def test_explicit_kernel_overrides_default(self):
        with aging_kernel("scalar"):
            device = FpgaDevice(
                ZYNQ_ULTRASCALE_PLUS, seed=1, aging_kernel="array"
            )
        assert device.aging_kernel == "array"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(FabricError):
            FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1, aging_kernel="turbo")

    def test_segment_views_are_stable(self):
        """segment_state under the array kernel returns the same cached
        view object for the same physical segment."""
        device, routes = conditioned_device()
        assert device.aging_kernel == "array"
        segment_id = next(iter(routes[0]))
        assert device.segment_state(segment_id) is device.segment_state(
            segment_id
        )

    def test_group_cache_invalidated_by_reload(self):
        """A second tenant's design must not reuse the first design's
        activity grouping."""
        device, routes = conditioned_device(burn_values=(1, 1), hours=24)
        first = device.route_delta_ps(routes[0])
        device.wipe()
        opposite = build_target_design(
            device.part, routes, [0, 0], heater_dsps=0, name="opposite"
        )
        device.load(opposite.bitstream)
        device.advance_hours(24.0, AMBIENT)
        # Holding the opposite value anneals the high pool and stresses
        # the low pool: the imprint must move downward.
        assert device.route_delta_ps(routes[0]) < first


class TestThermalCoupling:
    def test_junction_reflects_loaded_power(self):
        device, _ = conditioned_device()
        loaded = device.junction_k()
        device.wipe()
        assert device.junction_k() < loaded

    def test_delays_shift_with_temperature(self):
        device, routes = conditioned_device(hours=1)
        cool = device.transition_delays(routes[0]).rising_ps
        device.set_ambient(AMBIENT + 30.0)
        warm = device.transition_delays(routes[0]).rising_ps
        assert warm > cool

    def test_invalid_ambient_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        with pytest.raises(FabricError):
            device.set_ambient(0.0)
