"""Tests for the FpgaDevice: the persistence of analog state is the
vulnerability, so these are the most security-relevant invariants in the
code base."""

import pytest

from repro.errors import FabricError
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.physics.aging import CLOUD_PART, NEW_PART
from repro.units import celsius_to_kelvin

AMBIENT = celsius_to_kelvin(60.0)


def conditioned_device(burn_values=(1, 0), hours=24):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=7)
    routes = build_route_bank(device.grid, [2000.0] * len(burn_values))
    design = build_target_design(
        device.part, routes, list(burn_values), heater_dsps=0
    )
    device.load(design.bitstream)
    device.advance_hours(float(hours), AMBIENT)
    return device, routes


class TestWipeSemantics:
    def test_wipe_clears_logical_state(self):
        device, _ = conditioned_device()
        assert device.loaded_design is not None
        device.wipe()
        assert device.loaded_design is None

    def test_wipe_preserves_analog_state(self):
        """The central claim of the paper, enforced structurally."""
        device, routes = conditioned_device()
        before = [device.route_delta_ps(r) for r in routes]
        device.wipe()
        after = [device.route_delta_ps(r) for r in routes]
        assert after == before
        assert abs(after[0]) > 0.1  # a real imprint survived

    def test_reload_after_wipe_sees_same_transistors(self):
        device, routes = conditioned_device()
        imprint = device.route_delta_ps(routes[0])
        device.wipe()
        other = build_target_design(
            device.part, routes, [0, 0], heater_dsps=0, name="second-tenant"
        )
        device.load(other.bitstream)
        assert device.route_delta_ps(routes[0]) == pytest.approx(imprint)


class TestLoadLifecycle:
    def test_double_load_rejected(self):
        device, routes = conditioned_device()
        design = build_target_design(
            device.part, routes, [1, 1], heater_dsps=0, name="x"
        )
        with pytest.raises(FabricError):
            device.load(design.bitstream)

    def test_advance_without_design_anneals(self):
        device, routes = conditioned_device(burn_values=(1, 1), hours=50)
        device.wipe()
        before = device.route_delta_ps(routes[0])
        device.advance_hours(100.0, AMBIENT)
        after = device.route_delta_ps(routes[0])
        assert 0.0 <= after < before

    def test_negative_advance_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        with pytest.raises(FabricError):
            device.advance_hours(-1.0, AMBIENT)

    def test_age_accumulates_only_while_powered(self):
        device, _ = conditioned_device(hours=10)
        powered_age = device.effective_age_hours
        device.wipe()
        device.advance_hours(10.0, AMBIENT)
        assert device.effective_age_hours == powered_age

    def test_sim_hours_always_advance(self):
        device, _ = conditioned_device(hours=10)
        device.wipe()
        device.advance_hours(5.0, AMBIENT)
        assert device.sim_hours == pytest.approx(15.0)


class TestBurnDirection:
    def test_burn_values_imprint_with_correct_signs(self):
        device, routes = conditioned_device(burn_values=(1, 0), hours=48)
        assert device.route_delta_ps(routes[0]) > 0.0
        assert device.route_delta_ps(routes[1]) < 0.0

    def test_longer_routes_imprint_more(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=9)
        routes = build_route_bank(device.grid, [1000.0, 10000.0])
        design = build_target_design(device.part, routes, [1, 1], heater_dsps=0)
        device.load(design.bitstream)
        device.advance_hours(48.0, AMBIENT)
        short, long_ = (device.route_delta_ps(r) for r in routes)
        assert long_ > 4.0 * short


class TestWear:
    def test_cloud_devices_have_residual_imprints(self):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, wear=CLOUD_PART, seed=11)
        routes = build_route_bank(device.grid, [5000.0])
        delta = device.route_delta_ps(routes[0])
        # Residuals are nonzero but small relative to a fresh burn.
        assert delta != 0.0
        assert abs(delta) < 3.0

    def test_new_devices_are_clean(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=12)
        routes = build_route_bank(device.grid, [5000.0])
        assert device.route_delta_ps(routes[0]) == 0.0

    def test_device_ids_unique(self):
        a = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        b = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        assert a.device_id != b.device_id

    def test_info_reports_identity(self):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, wear=CLOUD_PART, seed=13)
        info = device.info()
        assert info.part_name == "xcvu9p"
        assert info.effective_age_hours > 0.0


class TestThermalCoupling:
    def test_junction_reflects_loaded_power(self):
        device, _ = conditioned_device()
        loaded = device.junction_k()
        device.wipe()
        assert device.junction_k() < loaded

    def test_delays_shift_with_temperature(self):
        device, routes = conditioned_device(hours=1)
        cool = device.transition_delays(routes[0]).rising_ps
        device.set_ambient(AMBIENT + 30.0)
        warm = device.transition_delays(routes[0]).rising_ps
        assert warm > cool

    def test_invalid_ambient_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        with pytest.raises(FabricError):
            device.set_ambient(0.0)
