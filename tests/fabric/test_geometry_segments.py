"""Tests for the tile grid and the routing segment library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FabricError
from repro.fabric.geometry import Coordinate, FabricGrid, TileType
from repro.fabric.segments import SEGMENT_LIBRARY, SegmentKind, spec_for


class TestCoordinate:
    def test_offset(self):
        assert Coordinate(3, 4).offset(1, -2) == Coordinate(4, 2)

    def test_manhattan_distance(self):
        assert Coordinate(0, 0).manhattan_distance(Coordinate(3, 4)) == 7

    def test_ordering_and_hash(self):
        assert Coordinate(1, 2) < Coordinate(2, 0)
        assert len({Coordinate(1, 1), Coordinate(1, 1)}) == 1

    def test_str(self):
        assert str(Coordinate(5, 9)) == "X5Y9"


class TestFabricGrid:
    def test_contains(self):
        grid = FabricGrid(8, 8)
        assert grid.contains(Coordinate(0, 0))
        assert grid.contains(Coordinate(7, 7))
        assert not grid.contains(Coordinate(8, 0))
        assert not grid.contains(Coordinate(0, -1))

    def test_shell_region_not_user_visible(self):
        grid = FabricGrid(8, 16, shell_rows=4)
        assert not grid.is_user_visible(Coordinate(0, 3))
        assert grid.is_user_visible(Coordinate(0, 4))
        assert grid.tile_type(Coordinate(2, 2)) is TileType.SHELL

    def test_require_user_visible_raises(self):
        grid = FabricGrid(8, 16, shell_rows=4)
        with pytest.raises(FabricError):
            grid.require_user_visible(Coordinate(0, 0))
        with pytest.raises(FabricError):
            grid.require_user_visible(Coordinate(99, 4))
        grid.require_user_visible(Coordinate(0, 4))

    def test_column_pattern_includes_dsp_and_bram(self):
        grid = FabricGrid(16, 8)
        types = {grid.tile_type(Coordinate(x, 0)) for x in range(16)}
        assert TileType.CLB in types
        assert TileType.DSP in types
        assert TileType.BRAM in types

    def test_count_user_tiles(self):
        grid = FabricGrid(8, 8, shell_rows=2)
        total = sum(
            grid.count_user_tiles(t)
            for t in (TileType.CLB, TileType.DSP, TileType.BRAM)
        )
        assert total == 8 * 6

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            FabricGrid(0, 8)
        with pytest.raises(ConfigurationError):
            FabricGrid(8, 8, shell_rows=8)

    def test_off_die_tile_type_raises(self):
        with pytest.raises(FabricError):
            FabricGrid(4, 4).tile_type(Coordinate(9, 9))


class TestSegmentLibrary:
    def test_all_kinds_present(self):
        assert set(SEGMENT_LIBRARY) == set(SegmentKind)

    def test_longer_reach_is_cheaper_per_tile(self):
        """LONG lines cover more delay per switch -- the reason burn-in
        magnitude grows sub-linearly with route delay."""
        single = spec_for(SegmentKind.SINGLE)
        long_ = spec_for(SegmentKind.LONG)
        assert (long_.delay_ps / long_.switch_count) > (
            single.delay_ps / single.switch_count
        )

    def test_carry_bin_delay_matches_paper_constant(self):
        assert spec_for(SegmentKind.CARRY).delay_ps == pytest.approx(2.8)

    def test_carry_elements_do_not_age(self):
        assert spec_for(SegmentKind.CARRY).burn_amplitude_ps == 0.0

    @given(kind=st.sampled_from(list(SegmentKind)))
    @settings(max_examples=10, deadline=None)
    def test_burn_amplitude_proportional_to_switches(self, kind):
        spec = spec_for(kind)
        from repro.physics.constants import PS_PER_SWITCH_AT_REFERENCE

        assert spec.burn_amplitude_ps == pytest.approx(
            spec.switch_count * PS_PER_SWITCH_AT_REFERENCE
        )
