"""Tests for bitstreams (incl. sealing), DRC, power and thermal models."""

import pytest

from repro.errors import AccessError, DesignRuleViolation
from repro.fabric.bitstream import Bitstream, SealedBitstream, loadable
from repro.fabric.drc import check_design
from repro.fabric.geometry import Coordinate
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.placement import FixedPlacer
from repro.fabric.power import estimate_power
from repro.fabric.thermal import DataCenterAmbient, OvenAmbient, ThermalModel
from repro.sensor.ro import build_ro_netlist
from repro.units import celsius_to_kelvin


def compile_small_design(static_value=1):
    grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
    netlist = Netlist(name="secret-design")
    netlist.add_cell(Cell("src", CellType.FLIP_FLOP))
    netlist.add_cell(Cell("dst", CellType.LUT))
    placer = FixedPlacer(grid)
    placer.place_at("src", CellType.FLIP_FLOP, Coordinate(0, 0))
    placer.place_at("dst", CellType.LUT, Coordinate(0, 0))
    from repro.designs import build_route_bank

    route = build_route_bank(grid, [1000.0])[0]
    netlist.add_net(
        Net("key", driver="src", sinks=("dst",),
            activity=NetActivity.STATIC, static_value=static_value
            ).with_route(route)
    )
    return Bitstream.compile(netlist, placer.placement)


class TestBitstream:
    def test_static_values_extractable_from_plain(self):
        bitstream = compile_small_design(1)
        assert bitstream.static_values() == {"key": 1}

    def test_skeleton_hides_values(self):
        bitstream = compile_small_design(1)
        skeleton = bitstream.skeleton()
        assert "key" in skeleton.net_names
        assert skeleton.static_net_names == ("key",)
        assert not hasattr(skeleton, "static_values")

    def test_skeleton_static_routes(self):
        skeleton = compile_small_design().skeleton()
        routes = skeleton.static_routes()
        assert len(routes) == 1 and routes[0].name == "key"

    def test_unique_ids(self):
        assert compile_small_design().bitstream_id != compile_small_design().bitstream_id


class TestSealedBitstream:
    def test_sealed_netlist_inaccessible(self):
        sealed = SealedBitstream(compile_small_design(), publisher="acme")
        with pytest.raises(AccessError):
            _ = sealed.netlist

    def test_sealed_values_inaccessible(self):
        sealed = SealedBitstream(compile_small_design(), publisher="acme")
        with pytest.raises(AccessError):
            sealed.static_values()

    def test_private_skeleton_inaccessible(self):
        sealed = SealedBitstream(compile_small_design(), publisher="acme",
                                 public_skeleton=False)
        with pytest.raises(AccessError):
            sealed.skeleton()

    def test_public_skeleton_accessible(self):
        sealed = SealedBitstream(compile_small_design(), publisher="acme",
                                 public_skeleton=True)
        assert sealed.skeleton().net_names == ("key",)

    def test_power_visible_for_drc(self):
        sealed = SealedBitstream(compile_small_design(), publisher="acme")
        assert sealed.power.total_watts > 0.0

    def test_loadable_resolves_both(self):
        plain = compile_small_design()
        sealed = SealedBitstream(plain, publisher="acme")
        assert loadable(plain) is plain
        assert loadable(sealed) is plain
        assert loadable(object()) is None


class TestDrc:
    def _grid(self):
        return ZYNQ_ULTRASCALE_PLUS.make_grid()

    def test_clean_design_passes(self):
        report = check_design(compile_small_design(), self._grid(), 40.0)
        assert report.passed
        report.raise_on_failure()

    def test_ring_oscillator_rejected(self):
        """The Section 7 claim: RO sensors fail cloud DRC."""
        grid = self._grid()
        from repro.designs import build_route_bank

        route = build_route_bank(grid, [1000.0])[0]
        netlist = build_ro_netlist("probe", route)
        placer = FixedPlacer(grid)
        placer.place_at("loop_inv", CellType.INVERTER, Coordinate(0, 0))
        placer.place_at("counter_ff", CellType.FLIP_FLOP, Coordinate(0, 0))
        bitstream = Bitstream.compile(netlist, placer.placement)
        report = check_design(bitstream, grid, 40.0)
        assert not report.passed
        assert report.combinational_loops
        with pytest.raises(DesignRuleViolation):
            report.raise_on_failure()

    def test_power_cap_enforced(self):
        report = check_design(compile_small_design(), self._grid(), 0.001)
        assert not report.passed
        with pytest.raises(DesignRuleViolation):
            report.raise_on_failure()


class TestPower:
    def test_static_only_design_draws_leakage(self):
        netlist = Netlist(name="idle")
        report = estimate_power(netlist)
        assert report.dynamic_watts == 0.0
        assert report.total_watts == report.static_watts

    def test_heater_power_matches_paper(self):
        """3896 DSPs at the paper's activity draw ~63 W (vs the 85 W cap)."""
        from repro.designs import build_fma_array
        from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        netlist = Netlist(name="heater")
        placer = FixedPlacer(grid)
        build_fma_array(netlist, placer, dsp_count=3896)
        report = estimate_power(netlist)
        assert 55.0 < report.total_watts < 70.0
        assert report.total_watts < 85.0

    def test_static_nets_draw_no_dynamic_power(self):
        bitstream = compile_small_design()
        assert bitstream.power.dynamic_watts == 0.0


class TestThermal:
    def test_oven_is_constant(self):
        oven = OvenAmbient(60.0)
        assert oven.at(0.0) == oven.at(1000.0)

    def test_datacenter_fluctuates(self):
        ambient = DataCenterAmbient(seed=3)
        values = {round(ambient.at(float(h)), 3) for h in range(48)}
        assert len(values) > 10

    def test_datacenter_reproducible(self):
        a = DataCenterAmbient(seed=3)
        b = DataCenterAmbient(seed=3)
        assert [a.at(float(h)) for h in range(24)] == [
            b.at(float(h)) for h in range(24)
        ]

    def test_junction_above_ambient(self):
        model = ThermalModel()
        ambient = celsius_to_kelvin(38.0)
        assert model.junction_k(ambient, 63.0) > ambient
        assert model.junction_k(ambient, 63.0) - ambient == pytest.approx(
            63.0 * model.theta_ja_k_per_w
        )
