"""Tests for the benchmark suite differ and regression gate."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.benchdiff import (
    classify_key,
    diff_suites,
    flatten_suite,
    gate_failures,
    load_suite,
    render_deltas,
)


class TestClassify:
    @pytest.mark.parametrize("key,expected", [
        ("exp1.total_seconds", "lower"),
        ("capture.latency_p95_ms", "lower"),
        ("overhead_fraction", "lower"),
        ("capture.speedup", "higher"),
        ("capture.words_per_second", "higher"),
        ("exp1.recovery_accuracy", "higher"),
        ("meta.cpu_count", "info"),
        ("meta.routes", "info"),
    ])
    def test_direction_from_leaf_name(self, key, expected):
        assert classify_key(key) == expected

    def test_only_leaf_segment_matters(self):
        # "seconds" in a parent segment must not classify the leaf.
        assert classify_key("total_seconds.count") == "info"


class TestFlatten:
    def test_nested_numeric_leaves(self):
        flat = flatten_suite({
            "exp1": {"total_seconds": 1.5, "depth": {"p50": 2}},
            "count": 3,
        })
        assert flat == {
            "exp1.total_seconds": 1.5,
            "exp1.depth.p50": 2.0,
            "count": 3.0,
        }

    def test_strings_and_bools_dropped(self):
        flat = flatten_suite({
            "version": "1.0", "bit_identical": True, "runs": 4,
        })
        assert flat == {"runs": 4.0}


class TestDiff:
    def test_identical_suites_have_no_regressions(self):
        suite = {"exp1": {"total_seconds": 2.0, "recovery_accuracy": 0.9}}
        deltas = diff_suites(suite, suite)
        assert all(d.regression_pct is None for d in deltas)
        assert gate_failures(deltas, 0.0) == []

    def test_regression_past_gate_detected(self):
        old = {"exp1": {"total_seconds": 1.0}}
        new = {"exp1": {"total_seconds": 3.0}}
        (delta,) = diff_suites(old, new)
        assert delta.change_pct == pytest.approx(200.0)
        assert delta.regression_pct == pytest.approx(200.0)
        assert gate_failures([delta], 80.0) == [delta]
        assert gate_failures([delta], 250.0) == []

    def test_improvement_never_gates(self):
        old = {"exp1": {"total_seconds": 3.0, "speedup": 2.0}}
        new = {"exp1": {"total_seconds": 1.0, "speedup": 8.0}}
        deltas = diff_suites(old, new)
        assert all(d.regression_pct is None for d in deltas)

    def test_higher_is_better_regresses_downward(self):
        old = {"capture": {"speedup": 10.0}}
        new = {"capture": {"speedup": 2.0}}
        (delta,) = diff_suites(old, new)
        assert delta.regression_pct == pytest.approx(80.0)

    def test_info_keys_never_gate(self):
        old = {"meta": {"cpu_count": 8.0}}
        new = {"meta": {"cpu_count": 1.0}}
        (delta,) = diff_suites(old, new)
        assert delta.direction == "info"
        assert delta.regression_pct is None

    def test_added_and_removed_keys_visible_but_not_gating(self):
        old = {"a_seconds": 1.0}
        new = {"b_seconds": 1.0}
        deltas = {d.key: d for d in diff_suites(old, new)}
        assert deltas["a_seconds"].new is None
        assert deltas["b_seconds"].old is None
        assert gate_failures(list(deltas.values()), 0.0) == []

    def test_zero_baseline_is_undefined_not_infinite(self):
        (delta,) = diff_suites({"x_seconds": 0.0}, {"x_seconds": 5.0})
        assert delta.change_pct is None
        assert delta.regression_pct is None

    def test_negative_gate_rejected(self):
        with pytest.raises(ConfigurationError):
            gate_failures([], -1.0)


class TestLoad:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"exp1": {"total_seconds": 1.0}}))
        assert load_suite(path) == {"exp1": {"total_seconds": 1.0}}

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_suite(tmp_path / "absent.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_suite(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_suite(path)


class TestRender:
    def test_table_marks_regressions_and_sorts_worst_first(self):
        old = {"slow_seconds": 1.0, "fine_seconds": 1.0, "cpu_count": 4.0}
        new = {"slow_seconds": 5.0, "fine_seconds": 1.1, "cpu_count": 4.0}
        deltas = diff_suites(old, new)
        text = render_deltas(deltas, gate_pct=80.0)
        lines = text.splitlines()
        assert "REGRESSION (> 80% gate)" in text
        assert "worse" in text and "info" in text
        # Worst regression is listed first after the header rule.
        assert lines[2].startswith("slow_seconds")

    def test_table_notes_added_and_removed(self):
        deltas = diff_suites({"gone": 1.0}, {"fresh": 2.0})
        text = render_deltas(deltas)
        assert "added" in text and "removed" in text


class TestDeltasToDict:
    def test_gated_document(self):
        from repro.observability.benchdiff import deltas_to_dict

        old = {"slow_seconds": 1.0, "fine_seconds": 1.0, "speedup": 4.0}
        new = {"slow_seconds": 5.0, "fine_seconds": 1.1, "speedup": 4.2}
        document = deltas_to_dict(diff_suites(old, new), gate_pct=80.0)
        assert document["verdict"] == "fail"
        assert document["failures"] == ["slow_seconds"]
        by_key = {d["key"]: d for d in document["deltas"]}
        assert by_key["slow_seconds"]["gate"] == "fail"
        assert by_key["fine_seconds"]["gate"] == "pass"
        assert by_key["slow_seconds"]["regression_pct"] == pytest.approx(
            400.0
        )
        json.dumps(document)  # JSON-ready

    def test_ungated_document(self):
        from repro.observability.benchdiff import deltas_to_dict

        document = deltas_to_dict(
            diff_suites({"x_seconds": 1.0}, {"x_seconds": 2.0})
        )
        assert document["gate_pct"] is None
        assert document["verdict"] == "pass"
        assert document["deltas"][0]["gate"] is None
