"""Cross-run analytics: verdict taxonomy, run comparison and trends."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.observability.analytics import (
    CounterDelta,
    compare_runs,
    compare_samples,
    render_comparison,
    render_trend,
    trend_series,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.runstore import RunRecord, RunStore


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.db")


def record_sweep(store, values, started_unix, metrics_state=None,
                 config=None, experiment="exp1", **overrides):
    rows = [{"seed": i + 1, "value": float(v)}
            for i, v in enumerate(values)]
    return store.record_run(RunRecord(
        kind="sweep",
        experiment=experiment,
        started_unix=started_unix,
        outcome="ok",
        accuracy=sum(values) / len(values),
        config=config or {"experiment": experiment, "quick": True},
        metrics_state=metrics_state,
        seed_rows=rows,
        **overrides,
    ))


class TestCompareSamples:
    def test_confirmed_regression(self):
        a = [1.0, 0.99, 1.0, 0.98, 1.0, 0.99]
        b = [0.70, 0.68, 0.71, 0.69, 0.70, 0.72]
        comparison = compare_samples("recovery_accuracy", a, b)
        assert comparison.direction == "higher"
        assert comparison.verdict == "CONFIRMED"
        assert comparison.change_pct == pytest.approx(-29.7, abs=0.5)
        assert comparison.ci_high < 0.0
        assert comparison.p_value <= 0.05

    def test_improvement(self):
        a = [0.010, 0.011, 0.012, 0.010]
        b = [0.005, 0.006, 0.005, 0.006]
        comparison = compare_samples("capture_latency_seconds", a, b)
        assert comparison.direction == "lower"
        assert comparison.verdict == "IMPROVED"

    def test_small_drift_is_ok(self):
        a = [1.00, 1.00, 1.00, 1.00]
        b = [0.99, 0.98, 0.99, 0.99]
        comparison = compare_samples("recovery_accuracy", a, b)
        assert comparison.verdict == "OK"  # under the 5% effect floor

    def test_noisy_regression_is_suspect(self):
        # Past the floor on the means, but two overlapping noisy
        # samples: the CI straddles zero and the rank test is weak.
        a = [1.0, 0.4, 0.9, 0.5]
        b = [0.8, 0.3, 0.9, 0.4]
        comparison = compare_samples("recovery_accuracy", a, b,
                                     min_effect_pct=1.0)
        assert comparison.verdict == "SUSPECT"

    def test_single_point_per_side_confirms_on_point_delta(self):
        comparison = compare_samples("recovery_accuracy", [1.0], [0.7])
        assert comparison.ci_low is None and comparison.p_value is None
        assert comparison.verdict == "CONFIRMED"

    def test_info_keys_never_gate(self):
        comparison = compare_samples("readout_skew_ps", [1.0], [99.0])
        assert comparison.verdict == "INFO"

    def test_empty_side_raises(self):
        with pytest.raises(AnalysisError):
            compare_samples("recovery_accuracy", [], [1.0])


class TestCompareRuns:
    def test_seeded_regression_is_confirmed(self, store):
        record_sweep(store, [1.0, 0.99, 1.0, 0.98], started_unix=1000.0)
        record_sweep(store, [0.70, 0.69, 0.71, 0.68], started_unix=2000.0)
        comparison = compare_runs(store, "latest~1", "latest")
        assert comparison.accuracy.verdict == "CONFIRMED"
        assert comparison.verdict == "CONFIRMED"
        assert [c.key for c in comparison.regressions] == [
            "recovery_accuracy",
        ]

    def test_equal_runs_are_ok(self, store):
        record_sweep(store, [1.0, 0.99, 1.0], started_unix=1000.0)
        record_sweep(store, [1.0, 0.99, 1.0], started_unix=2000.0)
        comparison = compare_runs(store, "latest~1", "latest")
        assert comparison.verdict == "OK"
        assert comparison.regressions == ()

    def test_scalar_accuracy_fallback(self, store):
        # Single experiment runs have no seed rows; the stored scalar
        # accuracy still yields a point comparison.
        for started, accuracy in ((1000.0, 0.95), (2000.0, 0.60)):
            store.record_run(RunRecord(
                kind="experiment", experiment="exp1",
                started_unix=started, outcome="ok", accuracy=accuracy,
            ))
        comparison = compare_runs(store, "latest~1", "latest")
        assert comparison.accuracy.n_a == 1
        assert comparison.accuracy.verdict == "CONFIRMED"

    def test_histogram_reservoirs_compared(self, store):
        def metrics_with_latency(scale):
            registry = MetricsRegistry()
            hist = registry.histogram("capture_latency_seconds", "lat")
            for i in range(32):
                hist.observe(scale * (1.0 + (i % 7) / 10.0))
            return registry.dump_state()

        record_sweep(store, [1.0], started_unix=1000.0,
                     metrics_state=metrics_with_latency(0.001))
        record_sweep(store, [1.0], started_unix=2000.0,
                     metrics_state=metrics_with_latency(0.002))
        comparison = compare_runs(store, "latest~1", "latest")
        latency = {c.key: c for c in comparison.histograms}[
            "capture_latency_seconds"
        ]
        assert latency.verdict == "CONFIRMED"  # 2x slower
        keys = [row["key"] for row in comparison.percentiles]
        assert "capture_latency_seconds" in keys

    def test_counter_deltas(self, store):
        def metrics_with_counter(value):
            registry = MetricsRegistry()
            registry.counter("captures_total", "captures").inc(value)
            return registry.dump_state()

        record_sweep(store, [1.0], started_unix=1000.0,
                     metrics_state=metrics_with_counter(100))
        record_sweep(store, [1.0], started_unix=2000.0,
                     metrics_state=metrics_with_counter(150))
        comparison = compare_runs(store, "latest~1", "latest")
        delta = {c.key: c for c in comparison.counters}["captures_total"]
        assert delta.delta == 50.0

    def test_to_dict_is_json_ready(self, store):
        import json

        record_sweep(store, [1.0, 0.9], started_unix=1000.0)
        record_sweep(store, [0.6, 0.5], started_unix=2000.0)
        document = compare_runs(store, "latest~1", "latest").to_dict()
        parsed = json.loads(json.dumps(document))
        assert parsed["verdict"] in ("CONFIRMED", "SUSPECT", "OK")
        assert parsed["accuracy"]["key"] == "recovery_accuracy"


class TestTrend:
    def test_series_is_oldest_first(self, store):
        for i in range(3):
            record_sweep(store, [0.9 + i * 0.01],
                         started_unix=1000.0 + i)
        points = trend_series(store, "exp1")
        assert [p["started_unix"] for p in points] == [
            1000.0, 1001.0, 1002.0,
        ]
        assert points[0]["accuracy"] == pytest.approx(0.90)

    def test_series_filters_config_hash(self, store):
        from repro.observability.runstore import config_hash

        record_sweep(store, [0.9], started_unix=1.0,
                     config={"experiment": "exp1", "quick": True})
        record_sweep(store, [0.8], started_unix=2.0,
                     config={"experiment": "exp1", "quick": False})
        series_hash = config_hash({"experiment": "exp1", "quick": True})
        points = trend_series(store, "exp1", config_hash=series_hash)
        assert len(points) == 1

    def test_needs_an_experiment(self, store):
        with pytest.raises(ConfigurationError):
            trend_series(store, "")


class TestRendering:
    def test_render_comparison_mentions_verdict(self, store):
        record_sweep(store, [1.0, 0.99], started_unix=1000.0)
        record_sweep(store, [0.6, 0.59], started_unix=2000.0)
        text = render_comparison(compare_runs(store, "latest~1", "latest"))
        assert "recovery_accuracy" in text
        assert "verdict: CONFIRMED" in text

    def test_render_comparison_warns_on_config_mismatch(self, store):
        record_sweep(store, [1.0], started_unix=1000.0,
                     config={"experiment": "exp1", "quick": True})
        record_sweep(store, [1.0], started_unix=2000.0,
                     config={"experiment": "exp1", "quick": False})
        text = render_comparison(compare_runs(store, "latest~1", "latest"))
        assert "different config hashes" in text

    def test_render_trend(self, store):
        record_sweep(store, [0.8], started_unix=1.0)
        record_sweep(store, [1.0], started_unix=2.0)
        text = render_trend(trend_series(store, "exp1"))
        assert "0.8000" in text and "1.0000" in text
        assert "#" in text
        assert render_trend([]) == "(no runs)"

    def test_counter_delta_properties(self):
        assert CounterDelta("x", 1.0, 3.0).delta == 2.0
        assert CounterDelta("x", None, 3.0).delta is None
