"""Tests for structured logging modes."""

import io
import json

import pytest

from repro.observability import log as obslog


@pytest.fixture(autouse=True)
def restore_log_config():
    yield
    obslog.configure(mode=None)


def capture(mode):
    stream = io.StringIO()
    obslog.configure(mode=mode, stream=stream)
    return stream


class TestModes:
    def test_disabled_emits_nothing(self):
        stream = io.StringIO()
        obslog.configure(mode=None, stream=stream)
        obslog.get_logger("t").info("event", k=1)
        assert stream.getvalue() == ""

    def test_kv_mode(self):
        stream = capture("kv")
        obslog.get_logger("cloud").info("image_loaded", design="measure")
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=cloud" in line
        assert "event=image_loaded" in line
        assert "design=measure" in line

    def test_kv_quotes_awkward_values(self):
        stream = capture("kv")
        obslog.get_logger("t").info("e", msg="two words")
        assert 'msg="two words"' in stream.getvalue()

    def test_json_mode_lines_parse(self):
        stream = capture("json")
        log = obslog.get_logger("sensor")
        log.warning("drift", route="rut[0]", delta=1.5)
        record = json.loads(stream.getvalue())
        assert record["level"] == "warning"
        assert record["logger"] == "sensor"
        assert record["event"] == "drift"
        assert record["delta"] == 1.5
        assert "ts" in record

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            obslog.configure(mode="xml")

    def test_levels(self):
        stream = capture("kv")
        log = obslog.get_logger("t")
        log.debug("a")
        log.error("b")
        lines = stream.getvalue().strip().splitlines()
        assert "level=debug" in lines[0]
        assert "level=error" in lines[1]

    def test_get_logger_cached(self):
        assert obslog.get_logger("same") is obslog.get_logger("same")
