"""The self-contained HTML history report."""

from __future__ import annotations

import pytest

from repro.observability.history import render_history_html, write_history_html
from repro.observability.metrics import MetricsRegistry
from repro.observability.runstore import RunRecord, RunStore


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.db")


def record(store, accuracy, started_unix, experiment="exp1",
           with_metrics=False):
    metrics_state = None
    if with_metrics:
        registry = MetricsRegistry()
        hist = registry.histogram("capture_latency_seconds", "lat")
        for i in range(16):
            hist.observe(0.001 * (1 + i % 5))
        # vary per run so the previous-vs-latest delta table has rows
        registry.counter("captures_total", "captures").inc(
            16 + int(started_unix)
        )
        metrics_state = registry.dump_state()
    return store.record_run(RunRecord(
        kind="sweep", experiment=experiment, started_unix=started_unix,
        outcome="ok", accuracy=accuracy,
        config={"experiment": experiment, "quick": True},
        metrics_state=metrics_state,
        manifest={"git_revision": "abc123", "git_dirty": False},
        seed_rows=[{"seed": 1, "value": accuracy}],
    ))


class TestRenderHistory:
    def test_empty_store_renders_placeholder(self, store):
        html_text = render_history_html(store)
        assert "<!DOCTYPE html>" in html_text
        assert "the run store is empty" in html_text

    def test_trend_chart_and_tables(self, store):
        record(store, 0.90, 1000.0, with_metrics=True)
        record(store, 0.95, 2000.0, with_metrics=True)
        record(store, 1.00, 3000.0, with_metrics=True)
        html_text = render_history_html(store)
        # one section per experiment, with the SVG trend
        assert "<h2>exp1</h2>" in html_text
        assert "<svg" in html_text and 'class="line"' in html_text
        # every point carries a native tooltip
        assert html_text.count("<title>") >= 6  # hit + dot per point
        # latency percentiles of the latest run, counter deltas
        assert "capture_latency_seconds" in html_text
        assert "captures_total" in html_text
        # provenance table rows
        assert "abc123" in html_text

    def test_self_contained(self, store):
        record(store, 1.0, 1000.0)
        html_text = render_history_html(store)
        assert "http://" not in html_text
        assert "https://" not in html_text  # zero external assets

    def test_dark_mode_palette_is_selected(self, store):
        record(store, 1.0, 1000.0)
        html_text = render_history_html(store)
        assert "prefers-color-scheme: dark" in html_text
        assert "#2a78d6" in html_text  # series-1 light
        assert "#3987e5" in html_text  # series-1 dark

    def test_experiment_filter(self, store):
        record(store, 1.0, 1000.0, experiment="exp1")
        record(store, 0.9, 2000.0, experiment="exp2")
        html_text = render_history_html(store, experiment="exp2")
        assert "<h2>exp2</h2>" in html_text
        assert "<h2>exp1</h2>" not in html_text

    def test_single_run_has_point_but_no_line(self, store):
        record(store, 1.0, 1000.0)
        html_text = render_history_html(store)
        assert 'class="dot"' in html_text
        assert 'class="line"' not in html_text

    def test_write_history_html(self, store, tmp_path):
        record(store, 1.0, 1000.0)
        target = write_history_html(tmp_path / "history.html", store)
        assert target.exists()
        assert "<!DOCTYPE html>" in target.read_text()


class TestSeriesSparklines:
    def _record_fleet(self, store, started_unix, with_series=True):
        from repro.observability.timeseries import FlightRecorder

        series = None
        if with_series:
            recorder = FlightRecorder(cadence_hours=1.0, max_points=64)
            recorder.record_origin(40)
            for hour in range(1, 30):
                recorder.churn_sample(float(hour), 40.0 - hour % 7,
                                      float(hour % 7), float(2 * hour),
                                      0.0)
            recorder.sample("fleet.recovery_yield", 29.0, 0.5,
                            help="recovered fraction")
            series = recorder.to_dict()
        return store.record_run(RunRecord(
            kind="fleet", experiment="fleet", started_unix=started_unix,
            outcome="ok", accuracy=0.5,
            config={"campaign": "flash", "quick": True},
            series=series,
        ))

    def test_fleet_run_renders_sparkline_cards(self, store):
        self._record_fleet(store, 1000.0)
        html_text = render_history_html(store)
        assert "simulation-time series" in html_text
        assert 'class="spark-line"' in html_text
        assert "fleet.pool_free" in html_text
        assert "fleet.recovery_yield" in html_text
        # sampling caption states cadence and reservoir bound
        assert "reservoir cap 64" in html_text

    def test_only_latest_run_gets_sparklines(self, store):
        self._record_fleet(store, 1000.0)
        self._record_fleet(store, 2000.0, with_series=False)
        html_text = render_history_html(store)
        # The newest run carries no series blob: no sparkline section.
        assert 'class="spark-line"' not in html_text

    def test_runs_without_series_render_fine(self, store):
        record(store, 1.0, 1000.0)
        html_text = render_history_html(store)
        assert "simulation-time series" not in html_text
        assert "<!DOCTYPE html>" in html_text
