"""Tests for wall-time attribution (repro.observability.profile)."""

import pytest

from repro.observability import trace
from repro.observability.profile import (
    AttributionRow,
    attribute_spans,
    build_report,
    render_report,
)


def _span(name, start, duration, children=(), **attrs):
    """Hand-built finished span with explicit wall-clock timing."""
    return trace.Span(
        name=name,
        attrs=dict(attrs),
        started_s=start,
        duration_s=duration,
        children=list(children),
        started_unix=start,
    )


def _forest():
    """experiment(10s) -> phase(6s) -> capture(2s, 2s); phase self=2s."""
    captures = [
        _span("capture", 1.0, 2.0),
        _span("capture", 3.0, 2.0),
    ]
    phase = _span("phase", 1.0, 6.0, children=captures)
    return [_span("experiment", 0.0, 10.0, children=[phase])]


class TestAttribution:
    def test_self_time_excludes_children(self):
        rows = {row.name: row for row in attribute_spans(_forest())}
        assert rows["experiment"].total_s == 10.0
        assert rows["experiment"].self_s == pytest.approx(4.0)
        assert rows["phase"].total_s == 6.0
        assert rows["phase"].self_s == pytest.approx(2.0)
        assert rows["capture"].count == 2
        assert rows["capture"].total_s == 4.0
        assert rows["capture"].self_s == 4.0  # leaves own their time

    def test_rows_sorted_by_self_time_descending(self):
        rows = attribute_spans(_forest())
        self_times = [row.self_s for row in rows]
        assert self_times == sorted(self_times, reverse=True)

    def test_self_time_clamped_against_clock_jitter(self):
        # A child that (spuriously) outlasts its parent must not
        # produce negative self time.
        child = _span("child", 0.0, 2.0)
        parent = _span("parent", 0.0, 1.0, children=[child])
        rows = {row.name: row for row in attribute_spans([parent])}
        assert rows["parent"].self_s == 0.0

    def test_unfinished_span_counts_as_zero(self):
        open_span = trace.Span(name="open", started_unix=0.0)
        rows = attribute_spans([open_span])
        assert rows == [
            AttributionRow(name="open", count=1, total_s=0.0, self_s=0.0)
        ]

    def test_mean_and_dict_shape(self):
        row = AttributionRow(name="capture", count=4, total_s=2.0, self_s=1.0)
        assert row.mean_s == 0.5
        payload = row.to_dict()
        assert payload == {
            "name": "capture", "count": 4,
            "total_s": 2.0, "self_s": 1.0, "mean_s": 0.5,
        }

    def test_defaults_to_collected_forest(self):
        trace.enable()
        with trace.span("root"):
            pass
        assert [row.name for row in attribute_spans()] == ["root"]


class TestReport:
    def test_report_shape_and_coverage(self):
        report = build_report(_forest(), wall_s=10.5)
        assert report["spans_total_s"] == 10.0
        assert report["wall_s"] == 10.5
        assert report["coverage"] == pytest.approx(10.0 / 10.5, abs=1e-4)
        assert {row["name"] for row in report["rows"]} == {
            "experiment", "phase", "capture",
        }
        assert set(report["kernels"]) == {"capture", "aging"}

    def test_report_without_wall_omits_coverage(self):
        report = build_report(_forest())
        assert "coverage" not in report and "wall_s" not in report

    def test_self_times_partition_the_total(self):
        report = build_report(_forest())
        assert sum(r["self_s"] for r in report["rows"]) == pytest.approx(
            report["spans_total_s"]
        )

    def test_render_contains_rows_kernels_and_coverage(self):
        text = render_report(build_report(_forest(), wall_s=10.5))
        assert "span" in text and "self%" in text
        assert "experiment" in text and "capture" in text
        assert "kernels: " in text
        assert "measured wall time" in text and "95.2%" in text

    def test_render_without_coverage_line(self):
        text = render_report(build_report(_forest()))
        assert "measured wall time" not in text
