"""Live progress telemetry: emitters, hooks and the CLI wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.progress import (
    CollectingEmitter,
    JsonlProgress,
    TtyProgress,
    compose,
    get_emitter,
    make_progress,
    note_event,
    note_phase,
    note_seed_done,
    note_sim_hours,
    set_emitter,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestTtyProgress:
    def test_status_line_counts_and_phase(self):
        stream = io.StringIO()
        clock = FakeClock()
        view = TtyProgress(stream=stream, clock=clock)
        view.phase("sweep", total=4)
        for seed in range(3):
            clock.tick(2.0)
            view.seed_done(seed, 0.9)
        line = view.render_line()
        assert "[sweep]" in line
        assert "3/4" in line
        assert "last 0.900" in line
        assert "\r" in stream.getvalue()

    def test_rate_and_eta_from_moving_window(self):
        clock = FakeClock()
        view = TtyProgress(stream=io.StringIO(), total=10, clock=clock)
        for seed in range(5):
            view.seed_done(seed, 1.0)
            clock.tick(2.0)
        # 5 completions over 8 ticking seconds -> 0.5/s, 5 remain.
        assert view.rate_per_s() == pytest.approx(0.5)
        assert view.eta_s() == pytest.approx(10.0)

    def test_event_tallies(self):
        view = TtyProgress(stream=io.StringIO())
        view.event("fault", site="capture")
        view.event("fault", site="rent")
        view.event("retry", label="cloud.rent")
        assert "fault=2" in view.render_line()
        assert "retry=1" in view.render_line()

    def test_close_finishes_the_line(self):
        stream = io.StringIO()
        view = TtyProgress(stream=stream)
        view.seed_done(1, 1.0)
        view.close()
        assert stream.getvalue().endswith("\n")
        view.close()  # idempotent


class TestSimTimeProgress:
    """The simulated-hours work axis for fleet runs."""

    def test_sim_rate_and_eta_from_moving_window(self):
        clock = FakeClock()
        view = TtyProgress(stream=io.StringIO(), clock=clock)
        view.phase("fleet", sim_total_hours=200.0)
        for hour in (10.0, 20.0, 30.0, 40.0):
            clock.tick(1.0)
            view.sim_tick(hour)
        # 30 sim-hours over 3 wall seconds between first and last tick.
        assert view.sim_rate_per_s() == pytest.approx(10.0)
        assert view.sim_eta_s() == pytest.approx(16.0)

    def test_render_line_shows_sim_axis(self):
        clock = FakeClock()
        view = TtyProgress(stream=io.StringIO(), clock=clock)
        view.phase("fleet", sim_total_hours=200.0)
        clock.tick(1.0)
        view.sim_tick(25.0)
        clock.tick(1.0)
        view.sim_tick(50.0)
        line = view.render_line()
        assert "simh 50.0/200" in line
        assert "simh/s" in line
        assert "sim-eta" in line

    def test_render_line_without_horizon(self):
        clock = FakeClock()
        view = TtyProgress(stream=io.StringIO(), clock=clock)
        view.sim_tick(3.5)
        assert "simh 3.5" in view.render_line()
        assert "sim-eta" not in view.render_line()

    def test_renders_are_wall_clock_throttled(self):
        stream = io.StringIO()
        clock = FakeClock()
        view = TtyProgress(stream=stream, clock=clock)
        view.phase("fleet", sim_total_hours=1000.0)
        baseline = stream.getvalue().count("\r")
        for hour in range(1, 100):
            view.sim_tick(float(hour))  # no wall time passes
        assert stream.getvalue().count("\r") == baseline + 1

    def test_final_tick_renders_despite_throttle(self):
        stream = io.StringIO()
        clock = FakeClock()
        view = TtyProgress(stream=stream, clock=clock)
        view.phase("fleet", sim_total_hours=10.0)
        view.sim_tick(5.0)
        before = stream.getvalue().count("\r")
        view.sim_tick(10.0)  # horizon reached -> always rendered
        assert stream.getvalue().count("\r") == before + 1

    def test_jsonl_sim_tick_lines(self):
        stream = io.StringIO()
        clock = FakeClock(50.0)
        emitter = JsonlProgress(stream=stream, clock=clock)
        emitter.phase("fleet", sim_total_hours=100.0)
        clock.tick(2.0)
        emitter.sim_tick(20.0)
        clock.tick(2.0)
        emitter.sim_tick(40.0)
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        ticks = [entry for entry in lines if entry["event"] == "sim_tick"]
        assert ticks[-1]["sim_hours"] == 40.0
        assert ticks[-1]["sim_total_hours"] == 100.0
        assert ticks[-1]["sim_rate_per_s"] == pytest.approx(10.0)
        assert ticks[-1]["sim_eta_s"] == pytest.approx(6.0)

    def test_collector_counts_ticks(self):
        collector = CollectingEmitter()
        collector.sim_tick(4.0)
        collector.sim_tick(9.0)
        assert collector.sim_hours == 9.0
        assert collector.sim_ticks == 2

    def test_note_sim_hours_hook_fans_out(self):
        a, b = CollectingEmitter(), CollectingEmitter()
        previous = set_emitter(compose(a, b))
        try:
            note_sim_hours(12.5)
        finally:
            set_emitter(previous)
        assert a.sim_hours == b.sim_hours == 12.5
        note_sim_hours(99.0)  # no emitter installed: a no-op

    def test_fleet_campaign_drives_the_sim_axis(self):
        from repro.cloud.campaigns import (
            ChurnModel,
            FleetScenario,
            FlashAttackPlan,
            run_flash_campaign,
        )

        collector = CollectingEmitter()
        previous = set_emitter(collector)
        try:
            run_flash_campaign(
                FleetScenario(
                    devices=40, horizon_hours=60.0,
                    churn=ChurnModel(arrival_rate_per_hour=1.0,
                                     mean_rental_hours=6.0),
                    routes=4, seed=3,
                ),
                FlashAttackPlan(victims=1),
            )
        finally:
            set_emitter(previous)
        assert collector.phases[0]["sim_total_hours"] == 60.0
        assert collector.sim_ticks > 0
        assert collector.sim_hours == pytest.approx(60.0)


class TestJsonlProgress:
    def test_events_are_one_json_per_line(self):
        stream = io.StringIO()
        clock = FakeClock(100.0)
        emitter = JsonlProgress(stream=stream, clock=clock)
        emitter.phase("sweep", total=2, jobs=1)
        clock.tick(1.0)
        emitter.seed_done(1, 0.875, elapsed_s=1.0, shard=0)
        emitter.event("fault", site="capture")
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        assert [entry["event"] for entry in lines] == [
            "phase", "seed_done", "fault",
        ]
        assert lines[0]["total"] == 2
        assert lines[1]["seed"] == 1
        assert lines[1]["value"] == 0.875
        assert lines[1]["completed"] == 1
        assert lines[2]["site"] == "capture"

    def test_seed_done_carries_rate_and_eta(self):
        stream = io.StringIO()
        clock = FakeClock()
        emitter = JsonlProgress(stream=stream, total=4, clock=clock)
        emitter.seed_done(1, 1.0)
        clock.tick(2.0)
        emitter.seed_done(2, 1.0)
        last = json.loads(stream.getvalue().splitlines()[-1])
        assert last["rate_per_s"] == pytest.approx(0.5)
        assert last["eta_s"] == pytest.approx(4.0)


class TestCollectingEmitter:
    def test_one_row_per_seed_even_when_replayed(self):
        collector = CollectingEmitter()
        collector.seed_done(3, 0.9, resumed=True)
        collector.seed_done(1, 1.0, elapsed_s=2.0, shard=0, worker_pid=42)
        collector.seed_done(3, 0.9, resumed=False)  # re-run overwrites
        rows = collector.seed_rows
        assert [row["seed"] for row in rows] == [1, 3]
        assert rows[0]["worker_pid"] == 42
        assert rows[1]["resumed"] is False

    def test_phases_and_event_counts(self):
        collector = CollectingEmitter()
        collector.phase("sweep", total=8)
        collector.event("fault", site="capture")
        collector.event("fault", site="rent")
        assert collector.phases == [{"name": "sweep", "total": 8}]
        assert collector.event_counts == {"fault": 2}


class TestHooksAndCompose:
    def test_hooks_are_noops_without_emitter(self):
        assert get_emitter() is None
        note_phase("sweep", total=4)
        note_seed_done(1, 1.0)
        note_event("fault")

    def test_hooks_fan_out_through_compose(self):
        a, b = CollectingEmitter(), CollectingEmitter()
        previous = set_emitter(compose(a, b))
        try:
            note_phase("sweep", total=2)
            note_seed_done(1, 0.5, elapsed_s=0.1)
            note_event("retry", label="cloud.rent")
        finally:
            set_emitter(previous)
        for collector in (a, b):
            assert collector.phases[0]["name"] == "sweep"
            assert collector.seed_rows[0]["value"] == 0.5
            assert collector.event_counts == {"retry": 1}

    def test_compose_drops_nones(self):
        collector = CollectingEmitter()
        assert compose(None, None) is None
        assert compose(None, collector) is collector

    def test_set_emitter_returns_previous(self):
        collector = CollectingEmitter()
        assert set_emitter(collector) is None
        assert set_emitter(None) is collector


class TestMakeProgress:
    def test_modes(self):
        assert make_progress("off") is None
        assert make_progress(None) is None
        assert isinstance(make_progress("tty", stream=io.StringIO()),
                          TtyProgress)
        assert isinstance(make_progress("jsonl", stream=io.StringIO()),
                          JsonlProgress)

    def test_auto_is_off_when_not_a_tty(self):
        assert make_progress("auto", stream=io.StringIO()) is None

    def test_auto_is_tty_on_a_terminal(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        assert isinstance(make_progress("auto", stream=Tty()), TtyProgress)

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigurationError):
            make_progress("loud")


class TestProducersEmit:
    def test_sweep_emits_phase_and_seed_done(self):
        from repro.montecarlo import experiment_sweep

        collector = CollectingEmitter()
        previous = set_emitter(collector)
        try:
            experiment_sweep("exp1", [1, 2], quick=True)
        finally:
            set_emitter(previous)
        assert collector.phases[0]["name"] == "sweep"
        assert collector.phases[0]["total"] == 2
        assert [row["seed"] for row in collector.seed_rows] == [1, 2]
        for row in collector.seed_rows:
            assert 0.0 <= row["value"] <= 1.0
            assert row["elapsed_s"] > 0.0

    def test_resumed_seeds_are_flagged(self, tmp_path):
        from repro.montecarlo import experiment_sweep
        from repro.reliability.checkpoint import SweepJournal

        # A killed run: the journal holds seeds 1 and 2 of a 3-seed
        # sweep.  The resumed run replays them and only runs seed 3.
        journal_path = tmp_path / "sweep.journal"
        probe = experiment_sweep("exp1", [1, 2], quick=True)
        context = {
            "experiment": "exp1", "quick": True, "overrides": [],
            "seeds": [1, 2, 3], "metric": "recovery_accuracy",
        }
        journal = SweepJournal.load(journal_path, context=context)
        for seed, value in zip((1, 2), probe.values):
            journal.record(seed, float(value))
        collector = CollectingEmitter()
        previous = set_emitter(collector)
        try:
            experiment_sweep("exp1", [1, 2, 3], quick=True,
                             journal_path=str(journal_path))
        finally:
            set_emitter(previous)
        rows = {row["seed"]: row for row in collector.seed_rows}
        assert rows[1]["resumed"] and rows[2]["resumed"]
        assert not rows[3]["resumed"]
