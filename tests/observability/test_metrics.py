"""Tests for the metrics registry and its exporters."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.export import (
    metrics_to_dict,
    to_prometheus_text,
    write_metrics_json,
)
from repro.observability.metrics import (
    HISTOGRAM_RESERVOIR_SIZE,
    MetricsRegistry,
    registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = registry.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert registry.counter("events_total").value == 3.5

    def test_get_or_create_returns_same_instrument(self):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.counter("y_total").inc(-1.0)


class TestGauge:
    def test_set_and_adjust(self):
        g = registry.gauge("level")
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_summary_percentiles(self):
        h = registry.histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == 50.0
        assert s["p95"] == 95.0
        assert s["p99"] == 99.0

    def test_empty_summary_is_zeroes(self):
        s = registry.histogram("empty").summary()
        assert s["count"] == 0 and s["p50"] == 0.0

    def test_reservoir_bounded_but_count_exact(self):
        h = registry.histogram("bounded")
        n = HISTOGRAM_RESERVOIR_SIZE + 100
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert len(h._reservoir) == HISTOGRAM_RESERVOIR_SIZE
        assert h.minimum == 0.0 and h.maximum == float(n - 1)

    def test_bad_percentile_rejected(self):
        h = registry.histogram("p")
        with pytest.raises(ConfigurationError):
            h.percentile(101.0)


class TestRegistry:
    def test_kind_conflict_rejected(self):
        registry.counter("thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing")

    def test_reset_clears_everything(self):
        registry.counter("a_total").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1.0)
        registry.reset()
        assert registry.names() == ()

    def test_autouse_fixture_gives_clean_registry(self):
        # The clean_observability fixture in tests/conftest.py must have
        # wiped whatever other tests recorded.
        assert registry.names() == ()

    def test_snapshot_shape(self):
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a_total": 2.0}
        assert snap["gauges"] == {"b": 7.0}
        assert snap["histograms"]["c"]["count"] == 1


class TestExport:
    def test_json_export_round_trips(self, tmp_path):
        registry.counter("captures_total").inc(4)
        registry.histogram("capture_latency_seconds").observe(0.01)
        path = write_metrics_json(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["metrics"]["counters"]["captures_total"] == 4.0
        hist = payload["metrics"]["histograms"]["capture_latency_seconds"]
        assert "p50" in hist and "p95" in hist

    def test_json_export_embeds_manifest(self, tmp_path):
        path = write_metrics_json(
            tmp_path / "m.json", manifest={"run_id": "abc"}
        )
        payload = json.loads(path.read_text())
        assert payload["manifest"]["run_id"] == "abc"

    def test_prometheus_text_format(self):
        own = MetricsRegistry()
        own.counter("captures_total", "captures").inc(3)
        own.gauge("recovery_accuracy").set(0.5)
        own.histogram("latency_seconds").observe(2.0)
        text = to_prometheus_text(own)
        assert "# TYPE captures_total counter" in text
        assert "captures_total 3.0" in text
        assert "# TYPE recovery_accuracy gauge" in text
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 2.0' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_sanitises_names(self):
        own = MetricsRegistry()
        own.counter("bad-name.total").inc()
        assert "bad_name_total" in to_prometheus_text(own)

    def test_prometheus_exposition_conformance(self):
        """Every line conforms to the text exposition format.

        Checked against the format spec: metric names match
        ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every family has exactly one
        ``# HELP`` then one ``# TYPE`` line, in that order, before its
        samples; sample values parse as floats; HELP text never
        contains a raw newline or stray backslash.
        """
        import re

        own = MetricsRegistry()
        own.counter("captures_total", "captures with \\ and \n inside").inc(2)
        own.counter("9starts_with_digit").inc()
        own.counter("no_help_total").inc()
        own.gauge("recovery_accuracy", "accuracy").set(0.875)
        hist = own.histogram("capture_latency_seconds", "latency")
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        from repro.observability.timeseries import FlightRecorder

        recorder = FlightRecorder()
        recorder.record_origin(40)
        recorder.churn_sample(3.0, 38.0, 2.0, 4.0, 1.0)
        text = to_prometheus_text(own, series=recorder)

        name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
        sample_re = re.compile(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
            r'(\{quantile="[0-9.]+"\})? '
            r"([0-9.eE+-]+|NaN)$"
        )
        seen_help: dict[str, bool] = {}
        seen_type: dict[str, bool] = {}
        for line in text.splitlines():
            assert line == line.rstrip(), f"trailing space: {line!r}"
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                metric, _, help_text = rest.partition(" ")
                assert name_re.fullmatch(metric), metric
                assert metric not in seen_help, f"duplicate HELP {metric}"
                assert "\n" not in help_text
                # only \\ and \n escapes are legal in HELP
                i = 0
                while i < len(help_text):
                    if help_text[i] == "\\":
                        assert i + 1 < len(help_text), "dangling backslash"
                        assert help_text[i + 1] in ("\\", "n"), (
                            f"illegal escape in HELP: {help_text!r}"
                        )
                        i += 2
                    else:
                        i += 1
                seen_help[metric] = True
            elif line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                metric, _, kind = rest.partition(" ")
                assert kind in ("counter", "gauge", "summary", "histogram")
                assert metric in seen_help, (
                    f"TYPE before HELP for {metric}"
                )
                assert metric not in seen_type
                seen_type[metric] = True
            else:
                match = sample_re.match(line)
                assert match, f"malformed sample line: {line!r}"
                base = re.sub(r"_(sum|count)$", "", match.group(1))
                assert base in seen_type, (
                    f"sample {line!r} precedes its TYPE"
                )
                float(match.group(3))  # value parses
        # every family emitted both comment lines
        assert set(seen_help) == set(seen_type)
        # families without a help string fall back to the metric name
        assert "# HELP no_help_total no_help_total" in text
        # escaping applied to the registered help text
        assert "# HELP captures_total captures with \\\\ and \\n inside" \
            in text
        # leading-digit names are prefixed, not dropped
        assert "_9starts_with_digit" in text
        # sim-time series surface as sanitised last-value gauges, each
        # paired with the sim-hour it was taken at
        assert "# TYPE fleet_pool_free gauge" in text
        assert "fleet_pool_free 38.0" in text
        assert "fleet_pool_free_simhours 3.0" in text

    def test_prometheus_series_gauges(self):
        from repro.observability.timeseries import FlightRecorder

        recorder = FlightRecorder()
        recorder.sample("fleet.recovery_yield", 120.0, 0.75,
                        help="recovered fraction of victims")
        recorder.gauge("never.sampled")  # no last value: omitted
        text = to_prometheus_text(MetricsRegistry(), series=recorder)
        assert ("# HELP fleet_recovery_yield recovered fraction of "
                "victims") in text
        assert "fleet_recovery_yield 0.75" in text
        assert "fleet_recovery_yield_simhours 120.0" in text
        assert "never_sampled" not in text
        # A plain to_dict() payload works the same as the recorder.
        assert to_prometheus_text(
            MetricsRegistry(), series=recorder.to_dict()
        ) == text

    def test_metrics_to_dict_includes_spans(self):
        from repro.observability import trace

        trace.enable()
        with trace.span("root"):
            pass
        payload = metrics_to_dict()
        assert payload["spans"][0]["name"] == "root"


class TestDumpAndMerge:
    def test_round_trip_counters_gauges(self):
        worker = MetricsRegistry()
        worker.counter("captures_total", "captures").inc(7)
        worker.gauge("level", "fill level").set(0.25)
        parent = MetricsRegistry()
        parent.counter("captures_total").inc(3)
        parent.merge_state(worker.dump_state())
        assert parent.counter("captures_total").value == 10
        assert parent.gauge("level").value == 0.25
        assert parent.gauge("level").help == "fill level"

    def test_histograms_merge_exactly(self):
        worker = MetricsRegistry()
        for value in (1.0, 3.0, 5.0):
            worker.histogram("latency_seconds").observe(value)
        parent = MetricsRegistry()
        parent.histogram("latency_seconds").observe(2.0)
        parent.merge_state(worker.dump_state())
        merged = parent.histogram("latency_seconds")
        assert merged.count == 4
        assert merged.total == 11.0
        assert merged.minimum == 1.0 and merged.maximum == 5.0
        assert merged.percentile(100.0) == 5.0

    def test_merged_reservoir_stays_bounded(self):
        worker = MetricsRegistry()
        for i in range(HISTOGRAM_RESERVOIR_SIZE):
            worker.histogram("latency_seconds").observe(float(i))
        parent = MetricsRegistry()
        parent.histogram("latency_seconds").observe(-1.0)
        parent.merge_state(worker.dump_state())
        merged = parent.histogram("latency_seconds")
        assert len(merged._reservoir) == HISTOGRAM_RESERVOIR_SIZE
        assert merged.count == HISTOGRAM_RESERVOIR_SIZE + 1
        assert merged.minimum == -1.0

    def test_merge_into_empty_registry_recreates_instruments(self):
        worker = MetricsRegistry()
        worker.counter("a_total", "as").inc()
        worker.histogram("b_seconds", "bs").observe(1.0)
        parent = MetricsRegistry()
        parent.merge_state(worker.dump_state())
        assert parent.names() == ("a_total", "b_seconds")
        assert parent.counter("a_total").help == "as"

    def test_counter_increments_tracked_separately_from_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("capture_words_total")
        counter.inc(160)
        counter.inc(160)
        assert counter.value == 320
        assert counter.increments == 2

    def test_counter_increments_survive_merge(self):
        worker = MetricsRegistry()
        worker.counter("capture_words_total").inc(160)
        worker.counter("capture_words_total").inc(160)
        parent = MetricsRegistry()
        parent.counter("capture_words_total").inc(160)
        parent.merge_state(worker.dump_state())
        merged = parent.counter("capture_words_total")
        assert merged.value == 480
        assert merged.increments == 3


class TestNestedMergeAndIdempotence:
    """Satellite: dump/merge round-trips under parent<-worker<-re-merge."""

    def test_nested_merge_round_trip(self):
        """A grandchild's dump merged into a worker, then the worker's
        dump merged into the parent, must add up exactly once."""
        grandchild = MetricsRegistry()
        grandchild.counter("captures_total").inc(5)
        grandchild.histogram("latency_seconds").observe(1.0)

        worker = MetricsRegistry()
        worker.counter("captures_total").inc(2)
        worker.histogram("latency_seconds").observe(3.0)
        assert worker.merge_state(grandchild.dump_state())

        parent = MetricsRegistry()
        parent.counter("captures_total").inc(1)
        assert parent.merge_state(worker.dump_state())

        assert parent.counter("captures_total").value == 8
        merged = parent.histogram("latency_seconds")
        assert merged.count == 2
        assert merged.total == 4.0
        assert merged.minimum == 1.0 and merged.maximum == 3.0

    def test_same_dump_merged_twice_is_noop(self):
        """The idempotence guard: re-merging one dump cannot double
        count."""
        worker = MetricsRegistry()
        worker.counter("captures_total").inc(7)
        worker.histogram("latency_seconds").observe(2.0)
        state = worker.dump_state()

        parent = MetricsRegistry()
        assert parent.merge_state(state) is True
        assert parent.merge_state(state) is False
        assert parent.counter("captures_total").value == 7
        assert parent.histogram("latency_seconds").count == 1

    def test_fresh_dumps_of_same_registry_both_merge(self):
        """Two *separate* dumps are distinct deltas, not replays."""
        worker = MetricsRegistry()
        worker.counter("captures_total").inc(1)
        parent = MetricsRegistry()
        assert parent.merge_state(worker.dump_state())
        assert parent.merge_state(worker.dump_state())
        assert parent.counter("captures_total").value == 2

    def test_legacy_dump_without_id_always_merges(self):
        worker = MetricsRegistry()
        worker.counter("captures_total").inc(1)
        state = worker.dump_state()
        del state["dump_id"]
        parent = MetricsRegistry()
        assert parent.merge_state(state) is True
        assert parent.merge_state(state) is True
        assert parent.counter("captures_total").value == 2

    def test_reset_forgets_merged_dump_ids(self):
        worker = MetricsRegistry()
        worker.counter("captures_total").inc(3)
        state = worker.dump_state()
        parent = MetricsRegistry()
        parent.merge_state(state)
        parent.reset()
        assert parent.merge_state(state) is True
        assert parent.counter("captures_total").value == 3

    def test_negative_merged_counter_rejected(self):
        parent = MetricsRegistry()
        state = {"counters": {"captures_total": {"help": "", "value": -1.0}}}
        with pytest.raises(ConfigurationError):
            parent.merge_state(state)

    def test_percentiles_stable_under_merge_order(self):
        """Merging A into B or B into A yields the same percentile
        summaries while the reservoirs have not churned."""
        observations_a = [float(i) for i in range(100)]
        observations_b = [float(i) for i in range(100, 200)]

        def merged(first, second):
            a = MetricsRegistry()
            for value in first:
                a.histogram("h").observe(value)
            b = MetricsRegistry()
            for value in second:
                b.histogram("h").observe(value)
            a.merge_state(b.dump_state())
            return a.histogram("h")

        ab = merged(observations_a, observations_b)
        ba = merged(observations_b, observations_a)
        for p in (50.0, 95.0, 99.0):
            assert ab.percentile(p) == ba.percentile(p)
        combined = sorted(observations_a + observations_b)
        # Nearest-rank definition: p50 of 200 samples is index 99.
        assert ab.percentile(50.0) == combined[99]
        assert ab.minimum == 0.0 and ab.maximum == 199.0
