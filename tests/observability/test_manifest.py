"""Tests for run manifests and their persistence integration."""

import json

from repro.experiments import Experiment1Config
from repro.observability import trace
from repro.observability.manifest import (
    RunManifest,
    build_manifest,
    diff_manifests,
    git_state,
    resolved_kernels,
)
from repro.observability.metrics import registry


class TestBuild:
    def test_captures_identity(self):
        from repro import __version__

        m = build_manifest(seed=7)
        assert m.repro_version == __version__
        assert m.seed == 7
        assert m.run_id and len(m.run_id) == 12
        assert m.python_version.count(".") == 2

    def test_config_dataclass_expanded(self):
        config = Experiment1Config.quick(seed=9)
        m = build_manifest(config=config)
        assert m.config["burn_hours"] == config.burn_hours
        assert m.seed == 9  # taken from the config when not given

    def test_span_and_metric_snapshots(self):
        trace.enable()
        registry.counter("captures_total").inc(3)
        with trace.span("experiment"):
            pass
        m = build_manifest()
        assert m.spans[0]["name"] == "experiment"
        assert m.metrics["counters"]["captures_total"] == 3.0

    def test_round_trip(self):
        m = build_manifest(config={"k": 1}, seed=2, extra={"note": "x"})
        payload = json.loads(json.dumps(m.to_dict()))
        twin = RunManifest.from_dict(payload)
        assert twin.seed == 2
        assert twin.config == {"k": 1}
        assert twin.extra == {"note": "x"}
        assert twin.run_id == m.run_id

    def test_git_state_memoised_and_shaped(self):
        first = git_state()
        assert first is git_state()  # one subprocess probe per process
        revision, dirty = first
        # Inside the repo checkout both are populated; the shape also
        # holds outside one (both None).
        if revision is not None:
            assert len(revision) == 12
            assert isinstance(dirty, bool)
        else:
            assert dirty is None

    def test_kernels_reflect_active_knobs(self):
        from repro.physics.pool_array import set_aging_kernel
        from repro.sensor.tdc import set_capture_kernel

        prev_capture = set_capture_kernel("scalar")
        prev_aging = set_aging_kernel("scalar")
        try:
            assert resolved_kernels() == {
                "capture": "scalar", "aging": "scalar",
            }
        finally:
            set_capture_kernel(prev_capture)
            set_aging_kernel(prev_aging)

    def test_manifest_embeds_git_and_kernels(self):
        m = build_manifest()
        assert m.kernels["capture"] in ("batched", "scalar")
        assert m.kernels["aging"] in ("array", "scalar")
        revision, dirty = git_state()
        assert m.git_revision == revision
        assert m.git_dirty == dirty
        payload = json.loads(json.dumps(m.to_dict()))
        twin = RunManifest.from_dict(payload)
        assert twin.git_revision == m.git_revision
        assert twin.git_dirty == m.git_dirty
        assert twin.kernels == m.kernels


class TestDiff:
    def test_identical_manifests_no_diff(self):
        payload = build_manifest(config={"a": 1}).to_dict()
        assert diff_manifests(payload, payload) == {}

    def test_seed_and_config_diffs_reported(self):
        a = build_manifest(config={"burn_hours": 40}, seed=1).to_dict()
        b = build_manifest(config={"burn_hours": 200}, seed=2).to_dict()
        diffs = diff_manifests(a, b)
        assert diffs["seed"] == (1, 2)
        assert diffs["config.burn_hours"] == (40, 200)

    def test_git_and_kernel_diffs_reported(self):
        a = build_manifest().to_dict()
        b = build_manifest().to_dict()
        b["git_revision"] = "deadbeef0000"
        b["git_dirty"] = not a["git_dirty"]
        b["kernels"] = dict(b["kernels"], capture="reference")
        diffs = diff_manifests(a, b)
        assert diffs["git_revision"] == (a["git_revision"], "deadbeef0000")
        assert "git_dirty" in diffs
        assert diffs["kernels.capture"] == (
            a["kernels"]["capture"], "reference"
        )
