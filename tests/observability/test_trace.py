"""Tests for span tracing: nesting, timing, the disabled fast path."""

import time

from repro.observability import trace


class TestDisabled:
    def test_disabled_returns_shared_null(self):
        assert trace.span("a") is trace.span("b")

    def test_disabled_records_nothing(self):
        with trace.span("root"):
            with trace.span("child"):
                pass
        assert trace.roots() == ()

    def test_null_span_accepts_set(self):
        with trace.span("root") as sp:
            sp.set(key="value")  # must not raise

    def test_env_switch_default_off(self):
        assert not trace.is_enabled()


class TestNesting:
    def test_parent_child_structure(self):
        trace.enable()
        with trace.span("experiment"):
            with trace.span("phase"):
                with trace.span("capture"):
                    pass
            with trace.span("phase"):
                pass
        roots = trace.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "experiment"
        assert [c.name for c in root.children] == ["phase", "phase"]
        assert root.children[0].children[0].name == "capture"
        assert root.depth() == 3

    def test_sequential_roots(self):
        trace.enable()
        with trace.span("one"):
            pass
        with trace.span("two"):
            pass
        assert [r.name for r in trace.roots()] == ["one", "two"]

    def test_current_span_tracks_stack(self):
        trace.enable()
        assert trace.current_span() is None
        with trace.span("outer") as outer:
            assert trace.current_span() is outer
            with trace.span("inner") as inner:
                assert trace.current_span() is inner
            assert trace.current_span() is outer
        assert trace.current_span() is None

    def test_attrs_and_set(self):
        trace.enable()
        with trace.span("s", fixed=1) as sp:
            sp.set(late=2)
        root = trace.roots()[0]
        assert root.attrs == {"fixed": 1, "late": 2}

    def test_walk_covers_all(self):
        trace.enable()
        with trace.span("a"):
            with trace.span("b"):
                pass
            with trace.span("c"):
                with trace.span("d"):
                    pass
        names = sorted(s.name for s in trace.roots()[0].walk())
        assert names == ["a", "b", "c", "d"]


class TestTiming:
    def test_duration_positive_and_ordered(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                time.sleep(0.01)
        outer = trace.roots()[0]
        inner = outer.children[0]
        assert inner.duration_s >= 0.01
        assert outer.duration_s >= inner.duration_s

    def test_exception_still_closes_span(self):
        trace.enable()
        try:
            with trace.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        roots = trace.roots()
        assert len(roots) == 1 and roots[0].finished


class TestSerialisation:
    def test_tree_as_dicts_round_shape(self):
        trace.enable()
        with trace.span("root", k="v"):
            with trace.span("leaf"):
                pass
        payload = trace.tree_as_dicts()
        assert payload[0]["name"] == "root"
        assert payload[0]["attrs"] == {"k": "v"}
        assert payload[0]["children"][0]["name"] == "leaf"
        assert "children" not in payload[0]["children"][0]

    def test_render_tree_elides_siblings(self):
        trace.enable()
        with trace.span("root"):
            for _ in range(10):
                with trace.span("child"):
                    pass
        text = trace.render_tree(max_children=3)
        assert text.count("child") == 3
        assert "(+7 more" in text

    def test_render_tree_shows_attrs_and_duration(self):
        trace.enable()
        with trace.span("root", route="rut[0]"):
            pass
        text = trace.render_tree()
        assert "root [" in text and "route=rut[0]" in text

    def test_clear_drops_everything(self):
        trace.enable()
        with trace.span("root"):
            pass
        trace.clear()
        assert trace.roots() == ()

    def test_to_dict_carries_unix_start(self):
        trace.enable()
        before = time.time()
        with trace.span("root"):
            pass
        after = time.time()
        payload = trace.tree_as_dicts()[0]
        assert before - 1.0 <= payload["started_unix"] <= after + 1.0

    def test_from_dict_round_trip(self):
        trace.enable()
        with trace.span("root", k="v"):
            with trace.span("leaf"):
                pass
        payload = trace.tree_as_dicts()[0]
        rebuilt = trace.Span.from_dict(payload)
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"k": "v"}
        assert rebuilt.duration_s == payload["duration_s"]
        assert rebuilt.start_unix() == payload["started_unix"]
        assert [c.name for c in rebuilt.children] == ["leaf"]


class TestCrossProcessMerge:
    def test_dump_state_names_own_pid(self):
        import os

        trace.enable()
        with trace.span("root"):
            pass
        state = trace.dump_state()
        assert state["pid"] == os.getpid()
        assert state["spans"][0]["name"] == "root"

    def test_merge_attributes_worker_pid_and_extras(self):
        worker_state = {
            "pid": 4242,
            "spans": [
                {"name": "montecarlo.seed", "attrs": {"seed": 7},
                 "duration_s": 0.5, "started_unix": 100.0,
                 "children": [{"name": "sensor.capture",
                               "duration_s": 0.1,
                               "started_unix": 100.1}]},
            ],
        }
        trace.enable()
        merged = trace.merge_state(worker_state, shard=3)
        assert merged == 1
        root = trace.roots()[0]
        assert root.attrs["worker_pid"] == 4242
        assert root.attrs["shard"] == 3
        assert root.attrs["seed"] == 7
        # Children keep their identity but not the worker attribution
        # (the subtree root is enough to place the whole tree).
        assert root.children[0].name == "sensor.capture"

    def test_merge_attaches_under_open_span(self):
        trace.enable()
        with trace.span("sweep"):
            trace.merge_state(
                {"pid": 1, "spans": [{"name": "montecarlo.seed",
                                      "duration_s": 0.1,
                                      "started_unix": 5.0}]}
            )
        sweep = trace.roots()[0]
        assert [c.name for c in sweep.children] == ["montecarlo.seed"]

    def test_merge_empty_state_is_noop(self):
        trace.enable()
        assert trace.merge_state({}) == 0
        assert trace.roots() == ()
