"""Sim-clock time series: downsampling determinism and recorder state.

The whole point of :mod:`repro.observability.timeseries` is that the
retained points are a pure function of the offered sample stream --
never of batching, wall time or randomness.  These tests pin the
scalar and vectorised intake paths identical (including mid-batch
stride doublings), and the dump/merge contract against the metrics
registry's semantics (idempotence, adoption, union-trim).
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observability.timeseries import (
    DEFAULT_CADENCE_HOURS,
    DEFAULT_MAX_POINTS,
    FlightRecorder,
    GaugeSeries,
    RateSeries,
    SERIES_DROPPED,
    SERIES_IN_FLIGHT,
    SERIES_LIFECYCLE,
    SERIES_POOL_FREE,
)


def _offer_scalar(series, samples):
    for t, v in samples:
        series.observe(t, v)


class TestGaugeSeries:
    def test_retains_everything_below_cap(self):
        g = GaugeSeries("g", max_points=16)
        samples = [(float(i), float(i * i)) for i in range(10)]
        _offer_scalar(g, samples)
        assert g.points == [[t, v] for t, v in samples]
        assert g.stride == 1
        assert g.offered == 10

    def test_overflow_halves_and_doubles_stride(self):
        g = GaugeSeries("g", max_points=8)
        _offer_scalar(g, [(float(i), 0.0) for i in range(9)])
        # The ninth append overflowed: every other point dropped,
        # stride doubled, so only even offered indices survive.
        assert g.stride == 2
        assert [p[0] for p in g.points] == [0.0, 2.0, 4.0, 6.0, 8.0]
        _offer_scalar(g, [(float(i), 0.0) for i in range(9, 12)])
        assert [p[0] for p in g.points] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_last_survives_downsampling(self):
        g = GaugeSeries("g", max_points=4)
        _offer_scalar(g, [(float(i), float(-i)) for i in range(100)])
        assert g.last_t == 99.0
        assert g.last_value == -99.0
        assert len(g.points) <= 4

    def test_bounded_over_long_streams(self):
        g = GaugeSeries("g", max_points=64)
        _offer_scalar(g, [(float(i), 1.0) for i in range(100_000)])
        assert len(g.points) <= 64
        assert g.offered == 100_000

    def test_max_points_validation(self):
        with pytest.raises(ConfigurationError):
            GaugeSeries("g", max_points=1)

    def test_observe_many_misaligned_rejected(self):
        g = GaugeSeries("g")
        with pytest.raises(ConfigurationError):
            g.observe_many([0.0, 1.0], [5.0])

    def test_rate_series_kind(self):
        assert RateSeries("r").kind == "rate"
        assert GaugeSeries("g").kind == "gauge"


class TestVectorisedParity:
    """observe_many must replay observe's transitions exactly."""

    def _parity(self, n, max_points, chunks):
        ts = np.linspace(0.0, 500.0, n)
        values = np.sin(ts / 7.0) * 100.0
        scalar = GaugeSeries("s", max_points=max_points)
        for t, v in zip(ts, values):
            scalar.observe(t, v)
        vector = GaugeSeries("v", max_points=max_points)
        for lo, hi in chunks:
            vector.observe_many(ts[lo:hi], values[lo:hi])
        a, b = scalar.to_dict(), vector.to_dict()
        a.pop("help"), b.pop("help")
        assert a == b

    def test_single_batch(self):
        self._parity(500, 64, [(0, 500)])

    def test_batch_boundaries_do_not_matter(self):
        cuts = [0, 1, 7, 63, 64, 65, 200, 499, 500]
        chunks = list(zip(cuts, cuts[1:]))
        self._parity(500, 64, chunks)

    def test_mid_batch_halving(self):
        # max_points=8 forces several halvings inside one batch.
        self._parity(1000, 8, [(0, 1000)])

    def test_scalar_then_vector_then_scalar(self):
        ts = np.arange(300, dtype=np.float64)
        values = ts * 3.0
        scalar = GaugeSeries("s", max_points=32)
        mixed = GaugeSeries("m", max_points=32)
        for t, v in zip(ts, values):
            scalar.observe(t, v)
        for t, v in zip(ts[:50], values[:50]):
            mixed.observe(t, v)
        mixed.observe_many(ts[50:250], values[50:250])
        for t, v in zip(ts[250:], values[250:]):
            mixed.observe(t, v)
        assert scalar.points == mixed.points
        assert scalar.stride == mixed.stride
        assert scalar.offered == mixed.offered

    def test_empty_batch_is_a_no_op(self):
        g = GaugeSeries("g")
        g.observe(1.0, 2.0)
        g.observe_many([], [])
        assert g.points == [[1.0, 2.0]]
        assert g.offered == 1


class TestFlightRecorder:
    def test_get_or_create_and_type_conflict(self):
        rec = FlightRecorder()
        g = rec.gauge("a", help="first")
        assert rec.gauge("a") is g
        with pytest.raises(ConfigurationError):
            rec.rate("a")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(cadence_hours=0.0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(max_points=1)

    def test_churn_sample_populates_core_series(self):
        rec = FlightRecorder()
        rec.record_origin(40)
        rec.churn_sample(1.0, 38.0, 2.0, 4.0, 0.0)
        assert set(rec.names()) == {
            SERIES_POOL_FREE, SERIES_IN_FLIGHT,
            SERIES_LIFECYCLE, SERIES_DROPPED,
        }
        assert rec.series[SERIES_POOL_FREE].points == [[0.0, 40.0],
                                                       [1.0, 38.0]]
        assert rec.series[SERIES_LIFECYCLE].kind == "rate"

    def test_probe_evaluated_at_grid_times(self):
        rec = FlightRecorder()
        rec.add_probe("debt", lambda t: t * 2.0, help="synthetic")
        rec.churn_sample(3.0, 1.0, 0.0, 0.0, 0.0)
        rec.churn_window([4.0, 5.0], [1.0, 1.0], [0.0, 0.0],
                         [0.0, 0.0], [0.0, 0.0])
        assert rec.series["debt"].points == [[3.0, 6.0], [4.0, 8.0],
                                             [5.0, 10.0]]

    def test_churn_window_matches_scalar_loop(self):
        ts = np.linspace(0.5, 90.0, 400)
        free = np.abs(np.cos(ts)) * 50.0
        events = np.arange(400, dtype=np.float64)
        drops = np.floor(ts / 10.0)
        scalar = FlightRecorder(max_points=64)
        for i in range(400):
            scalar.churn_sample(ts[i], free[i], 50.0 - free[i],
                                events[i], drops[i])
        vector = FlightRecorder(max_points=64)
        vector.churn_window(ts, free, 50.0 - free, events, drops)
        assert scalar.to_json() == vector.to_json()

    def test_json_round_trip(self, tmp_path):
        rec = FlightRecorder(cadence_hours=2.0, max_points=16)
        rec.record_origin(8)
        rec.sample("yield", 5.0, 0.5, help="recovered fraction")
        path = rec.save(tmp_path / "series.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["cadence_hours"] == 2.0
        assert payload["series"]["yield"]["last"] == [5.0, 0.5]
        # Canonical form: re-serialising the parse is a fixed point.
        assert json.dumps(payload, sort_keys=True, indent=1) == rec.to_json()

    def test_defaults(self):
        rec = FlightRecorder()
        assert rec.cadence_hours == DEFAULT_CADENCE_HOURS
        assert rec.max_points == DEFAULT_MAX_POINTS


class TestDumpMerge:
    def test_dump_ids_are_unique_and_idempotent(self):
        src = FlightRecorder()
        src.sample("g", 1.0, 2.0)
        dump = src.dump_state()
        assert dump["dump_id"] != src.dump_state()["dump_id"]
        dst = FlightRecorder()
        assert dst.merge_state(dump) is True
        assert dst.merge_state(dump) is False
        assert dst.series["g"].offered == 1

    def test_absent_series_adopted_wholesale(self):
        src = FlightRecorder(max_points=8)
        for i in range(20):
            src.sample_rate("events", float(i), float(i))
        dst = FlightRecorder(max_points=8)
        dst.merge_state(src.dump_state())
        assert dst.series["events"].to_dict() == \
            src.series["events"].to_dict()
        assert dst.series["events"].kind == "rate"

    def test_present_series_union_trimmed(self):
        a = FlightRecorder(max_points=8)
        b = FlightRecorder(max_points=8)
        for i in range(0, 6):
            a.sample("g", float(i), 1.0)
        for i in range(6, 12):
            b.sample("g", float(i), 2.0)
        a.merge_state(b.dump_state())
        merged = a.series["g"]
        assert len(merged.points) <= 8
        times = [p[0] for p in merged.points]
        assert times == sorted(times)
        assert merged.last_t == 11.0
        assert merged.last_value == 2.0
        assert merged.offered == 12

    def test_unknown_kind_rejected(self):
        dst = FlightRecorder()
        with pytest.raises(ConfigurationError):
            dst.merge_state({"series": {"x": {"kind": "psychic"}}})
