"""The run store: recording, querying, resolving and pruning runs."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.observability.metrics import MetricsRegistry
from repro.observability.runstore import (
    RUNSTORE_SCHEMA,
    RunRecord,
    RunStore,
    config_hash,
    fault_plan_hash,
    resolve_runstore_path,
    summarise_route_status,
)


def make_record(**overrides) -> RunRecord:
    base = dict(
        kind="experiment",
        experiment="exp1",
        started_unix=1_000.0,
        outcome="ok",
        wall_seconds=1.5,
        exit_code=0,
        accuracy=0.95,
        seed=7,
        config={"seed": 7, "burn_hours": 40},
        argv=["exp1", "--quick"],
    )
    base.update(overrides)
    return RunRecord(**base)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.db")


class TestRecordAndRead:
    def test_record_returns_id_and_lists(self, store):
        run_id = store.record_run(make_record())
        runs = store.list_runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == run_id
        assert runs[0]["accuracy"] == pytest.approx(0.95)
        assert runs[0]["config_hash"] == config_hash(
            {"seed": 7, "burn_hours": 40}
        )

    def test_get_run_parses_json_blobs(self, store):
        run_id = store.record_run(make_record(
            route_status={"r1": "ok", "r2": "ok", "r3": "degraded"},
            extra={"note": "hello"},
        ))
        run = store.get_run(run_id)
        assert run["config"] == {"seed": 7, "burn_hours": 40}
        assert run["route_status"] == {"ok": 2, "degraded": 1}
        assert run["extra"] == {"note": "hello"}
        assert run["argv"] == ["exp1", "--quick"]

    def test_seed_rows_round_trip(self, store):
        rows = [
            {"seed": 2, "value": 0.9, "elapsed_s": 1.0, "shard": 0,
             "worker_pid": 11, "resumed": False},
            {"seed": 1, "value": 1.0, "elapsed_s": 2.0, "shard": 1,
             "worker_pid": 12, "resumed": True},
        ]
        run_id = store.record_run(make_record(kind="sweep", seed_rows=rows))
        run = store.get_run(run_id)
        assert [r["seed"] for r in run["seed_results"]] == [1, 2]
        assert store.seed_values(run_id) == [1.0, 0.9]
        assert run["seed_results"][0]["resumed"] == 1

    def test_duplicate_seed_keeps_one_row(self, store):
        # (run_id, seed) is the primary key: a seed that is journalled
        # and then (wrongly) re-emitted records exactly one row.
        rows = [
            {"seed": 1, "value": 0.5, "resumed": True},
            {"seed": 1, "value": 0.7, "resumed": False},
        ]
        run_id = store.record_run(make_record(kind="sweep", seed_rows=rows))
        assert store.seed_values(run_id) == [0.7]

    def test_metrics_state_is_lossless(self, store):
        registry = MetricsRegistry()
        registry.counter("captures_total", "captures").inc(5)
        hist = registry.histogram("capture_latency_seconds", "latency")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        run_id = store.record_run(
            make_record(metrics_state=registry.dump_state())
        )
        replayed = MetricsRegistry()
        replayed.merge_state(store.get_run(run_id)["metrics"])
        snap = replayed.snapshot()
        assert snap["counters"]["captures_total"] == 5
        assert snap["histograms"]["capture_latency_seconds"]["count"] == 3

    def test_git_fields_come_from_manifest(self, store):
        run_id = store.record_run(make_record(
            manifest={"git_revision": "abc123def456", "git_dirty": True,
                      "kernels": {"capture": "batched", "aging": "array"}},
        ))
        run = store.get_run(run_id)
        assert run["git_revision"] == "abc123def456"
        assert run["git_dirty"] == 1
        assert run["kernels"] == {"capture": "batched", "aging": "array"}


class TestSeriesBlob:
    def test_series_round_trips_losslessly(self, store):
        from repro.observability.timeseries import FlightRecorder

        recorder = FlightRecorder(cadence_hours=2.0, max_points=16)
        recorder.record_origin(32)
        recorder.churn_sample(2.0, 30.0, 2.0, 4.0, 0.0)
        recorder.sample("fleet.recovery_yield", 5.0, 0.75)
        run_id = store.record_run(make_record(
            kind="fleet", series=recorder.to_dict()
        ))
        run = store.get_run(run_id)
        assert run["series"] == recorder.to_dict()
        # The stored blob replays into a fresh recorder (shard merge).
        replayed = FlightRecorder(cadence_hours=2.0, max_points=16)
        replayed.merge_state(run["series"])
        assert replayed.to_json() == recorder.to_json()

    def test_series_defaults_to_none(self, store):
        run_id = store.record_run(make_record())
        assert store.get_run(run_id)["series"] is None

    def test_v1_store_migrates_in_place(self, tmp_path):
        # Build a genuine v1 database: current schema minus the
        # series_json column, stamped with user_version=1.
        path = tmp_path / "runs.db"
        store = RunStore(path)
        store.record_run(make_record())
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE runs DROP COLUMN series_json")
        conn.execute("PRAGMA user_version=1")
        conn.close()

        migrated = RunStore(path)
        runs = migrated.list_runs()
        assert len(runs) == 1  # old rows stay readable
        assert migrated.get_run(runs[0]["run_id"])["series"] is None
        new_id = migrated.record_run(make_record(
            kind="fleet", series={"version": 1, "series": {}}
        ))
        assert migrated.get_run(new_id)["series"] == {
            "version": 1, "series": {},
        }
        migrated.close()
        conn = sqlite3.connect(path)
        assert conn.execute(
            "PRAGMA user_version"
        ).fetchone()[0] == RUNSTORE_SCHEMA
        conn.close()


class TestResolve:
    def test_latest_and_latest_n(self, store):
        ids = [
            store.record_run(make_record(started_unix=1000.0 + i))
            for i in range(3)
        ]
        assert store.resolve("latest") == ids[2]
        assert store.resolve("latest~1") == ids[1]
        assert store.resolve("latest~2") == ids[0]

    def test_latest_filters_by_experiment(self, store):
        a = store.record_run(make_record(started_unix=1000.0))
        store.record_run(make_record(experiment="exp2",
                                     started_unix=2000.0))
        assert store.resolve("latest", experiment="exp1") == a

    def test_prefix_resolution(self, store):
        run_id = store.record_run(make_record())
        assert store.resolve(run_id[:6]) == run_id

    def test_unknown_and_overreach_raise(self, store):
        store.record_run(make_record())
        with pytest.raises(ConfigurationError):
            store.resolve("zzzzzz")
        with pytest.raises(ConfigurationError):
            store.resolve("latest~5")
        with pytest.raises(ConfigurationError):
            store.resolve("latest~x")


class TestListFilters:
    def test_kind_experiment_and_limit(self, store):
        store.record_run(make_record(kind="sweep", started_unix=1.0))
        store.record_run(make_record(experiment="exp2", started_unix=2.0))
        store.record_run(make_record(started_unix=3.0))
        assert len(store.list_runs(kind="sweep")) == 1
        assert len(store.list_runs(experiment="exp1")) == 2
        assert len(store.list_runs(limit=1)) == 1
        # newest first
        assert store.list_runs()[0]["started_unix"] == 3.0

    def test_config_hash_groups_series(self, store):
        store.record_run(make_record(config={"seed": 1, "burn_hours": 40}))
        store.record_run(make_record(config={"seed": 2, "burn_hours": 40}))
        store.record_run(make_record(config={"seed": 1, "burn_hours": 80}))
        series_hash = config_hash({"burn_hours": 40})
        assert len(store.list_runs(config_hash=series_hash)) == 2


class TestGcAndExport:
    def test_gc_keep(self, store):
        for i in range(5):
            store.record_run(make_record(
                started_unix=1000.0 + i,
                seed_rows=[{"seed": 1, "value": 1.0}],
            ))
        removed = store.gc(keep=2)
        assert removed == 3
        assert store.count_runs() == 2
        # seed rows of pruned runs go with them
        conn = sqlite3.connect(store.path)
        orphans = conn.execute(
            "SELECT COUNT(*) FROM seed_results WHERE run_id NOT IN "
            "(SELECT run_id FROM runs)"
        ).fetchone()[0]
        conn.close()
        assert orphans == 0

    def test_gc_before_unix(self, store):
        store.record_run(make_record(started_unix=100.0))
        store.record_run(make_record(started_unix=2000.0))
        assert store.gc(before_unix=1000.0) == 1
        assert store.count_runs() == 1

    def test_export_runs_is_json_ready(self, store):
        store.record_run(make_record())
        document = store.export_runs()
        text = json.dumps(document)
        assert json.loads(text)["runs"][0]["config"] == {
            "seed": 7, "burn_hours": 40,
        }


class TestSchemaAndPath:
    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "runs.db"
        store = RunStore(path)
        store.record_run(make_record())
        store.close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version={RUNSTORE_SCHEMA + 1}")
        conn.close()
        with pytest.raises(PersistenceError):
            RunStore(path).list_runs()

    def test_wal_mode(self, store):
        store.record_run(make_record())
        mode = store._connect().execute(
            "PRAGMA journal_mode"
        ).fetchone()[0]
        assert mode == "wal"

    def test_resolve_runstore_path_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNSTORE", raising=False)
        assert str(resolve_runstore_path()) == ".repro/runs.db"
        monkeypatch.setenv("REPRO_RUNSTORE", "/tmp/envstore.db")
        assert str(resolve_runstore_path()) == "/tmp/envstore.db"
        assert str(resolve_runstore_path("/tmp/cli.db")) == "/tmp/cli.db"
        assert resolve_runstore_path("off") is None
        monkeypatch.setenv("REPRO_RUNSTORE", "off")
        assert resolve_runstore_path() is None
        monkeypatch.setenv("REPRO_RUNSTORE", "0")
        assert resolve_runstore_path() is None

    def test_concurrent_writers(self, tmp_path):
        path = tmp_path / "runs.db"
        a, b = RunStore(path), RunStore(path)
        a.record_run(make_record(started_unix=1.0))
        b.record_run(make_record(started_unix=2.0))
        a.record_run(make_record(started_unix=3.0))
        assert a.count_runs() == 3
        assert b.count_runs() == 3


class TestHashes:
    def test_config_hash_excludes_seed(self):
        assert config_hash({"seed": 1, "x": 2}) == config_hash(
            {"seed": 9, "x": 2}
        )
        assert config_hash({"x": 2}) != config_hash({"x": 3})
        assert config_hash(None) is None

    def test_fault_plan_hash(self):
        assert fault_plan_hash({"a": 1}) == fault_plan_hash({"a": 1})
        assert fault_plan_hash({"a": 1}) != fault_plan_hash({"a": 2})
        assert fault_plan_hash(None) is None

    def test_summarise_route_status(self):
        assert summarise_route_status(
            {"r1": "ok", "r2": "ok", "r3": "degraded"}
        ) == {"ok": 2, "degraded": 1}
        assert summarise_route_status(None) is None
        assert summarise_route_status({}) is None
