"""Tests for the Chrome Trace Event Format exporter."""

import json
import os

from repro.observability import trace
from repro.observability.metrics import MetricsRegistry, registry
from repro.observability.timeline import (
    SIM_CLOCK_PID,
    SIM_HOUR_US,
    THROUGHPUT_COUNTERS,
    to_trace_events,
    write_trace_events,
)
from repro.observability.timeseries import FlightRecorder


def _span(name, start, duration, children=(), **attrs):
    return trace.Span(
        name=name,
        attrs=dict(attrs),
        duration_s=duration,
        children=list(children),
        started_unix=start,
    )


def _events(document, phase):
    return [e for e in document["traceEvents"] if e["ph"] == phase]


class TestTraceEventFormat:
    def test_complete_events_have_required_fields(self):
        forest = [_span("experiment", 100.0, 2.0,
                        children=[_span("sensor.capture", 100.5, 0.25,
                                        route="rut[0]")])]
        document = to_trace_events(forest, registry=MetricsRegistry())
        xs = _events(document, "X")
        assert len(xs) == 2
        for event in xs:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_timestamps_are_microseconds_from_first_span(self):
        forest = [_span("experiment", 100.0, 2.0,
                        children=[_span("sensor.capture", 100.5, 0.25)])]
        document = to_trace_events(forest, registry=MetricsRegistry())
        root, child = _events(document, "X")
        assert root["ts"] == 0.0
        assert root["dur"] == 2_000_000.0
        assert child["ts"] == 500_000.0
        assert child["dur"] == 250_000.0
        assert document["otherData"]["origin_unix"] == 100.0

    def test_category_is_name_prefix(self):
        document = to_trace_events(
            [_span("sensor.capture", 0.0, 1.0)], registry=MetricsRegistry()
        )
        assert _events(document, "X")[0]["cat"] == "sensor"

    def test_worker_spans_land_on_worker_track(self):
        worker_seed = _span("montecarlo.seed", 1.0, 0.5,
                            worker_pid=4242, seed=7, shard=3)
        sweep = _span("sweep", 0.0, 2.0, children=[worker_seed])
        document = to_trace_events([sweep], registry=MetricsRegistry())
        by_name = {e["name"]: e for e in _events(document, "X")}
        own_pid = os.getpid()
        assert by_name["sweep"]["pid"] == own_pid
        assert by_name["montecarlo.seed"]["pid"] == 4242
        # The worker subtree gets its own thread lane in its process.
        assert by_name["montecarlo.seed"]["tid"] >= 1

    def test_process_metadata_labels_workers(self):
        sweep = _span("sweep", 0.0, 2.0, children=[
            _span("montecarlo.seed", 1.0, 0.5, worker_pid=4242),
        ])
        document = to_trace_events([sweep], registry=MetricsRegistry())
        labels = {e["pid"]: e["args"]["name"]
                  for e in _events(document, "M")}
        assert labels[os.getpid()] == "repro"
        assert labels[4242] == "repro worker 4242"

    def test_sibling_roots_get_distinct_tids(self):
        forest = [_span("one", 0.0, 1.0), _span("two", 1.0, 1.0)]
        document = to_trace_events(forest, registry=MetricsRegistry())
        tids = [e["tid"] for e in _events(document, "X")]
        assert len(set(tids)) == 2

    def test_attrs_exported_as_jsonable_args(self):
        document = to_trace_events(
            [_span("capture", 0.0, 1.0, route="r0", obj=object())],
            registry=MetricsRegistry(),
        )
        args = _events(document, "X")[0]["args"]
        assert args["route"] == "r0"
        assert isinstance(args["obj"], str)  # repr()ed, not a raw object

    def test_counter_events_for_throughput_counters(self):
        own = MetricsRegistry()
        own.counter("capture_words_total").inc(640)
        own.counter("unrelated_total").inc(3)
        document = to_trace_events([_span("root", 0.0, 1.0)], registry=own)
        counters = _events(document, "C")
        assert {e["name"] for e in counters} == {"capture_words_total"}
        assert counters[0]["args"]["value"] == 0.0
        assert counters[-1]["args"]["value"] == 640.0

    def test_zero_valued_counters_omitted(self):
        own = MetricsRegistry()
        for name in THROUGHPUT_COUNTERS:
            own.counter(name)
        document = to_trace_events([_span("root", 0.0, 1.0)], registry=own)
        assert _events(document, "C") == []

    def test_empty_forest_yields_no_events(self):
        document = to_trace_events([], registry=MetricsRegistry())
        assert _events(document, "X") == []
        assert _events(document, "C") == []

    def test_defaults_to_collected_forest_and_global_registry(self):
        trace.enable()
        registry.counter("capture_words_total").inc(64)
        with trace.span("root"):
            pass
        document = to_trace_events()
        assert [e["name"] for e in _events(document, "X")] == ["root"]
        assert _events(document, "C")


class TestWrite:
    def test_written_file_is_valid_json(self, tmp_path):
        trace.enable()
        with trace.span("root"):
            pass
        path = write_trace_events(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in document["traceEvents"])


def _recorded_campaign():
    """A small fleet campaign with a live flight recorder attached."""
    from repro.cloud.campaigns import (
        ChurnModel,
        FleetScenario,
        FlashAttackPlan,
        run_flash_campaign,
    )

    recorder = FlightRecorder()
    scenario = FleetScenario(
        devices=40,
        horizon_hours=80.0,
        churn=ChurnModel(arrival_rate_per_hour=1.5,
                         mean_rental_hours=8.0),
        routes=4,
        seed=5,
    )
    run_flash_campaign(scenario, FlashAttackPlan(victims=1),
                       recorder=recorder)
    return recorder


class TestSimClockTracks:
    """The sim-time counter track group for a recorded fleet campaign."""

    def test_recorded_campaign_exports_sim_counter_tracks(self, tmp_path):
        recorder = _recorded_campaign()
        path = write_trace_events(tmp_path / "fleet.json",
                                  spans=[_span("fleet", 0.0, 1.0)],
                                  registry=MetricsRegistry(),
                                  sim_series=recorder)
        document = json.loads(path.read_text())  # valid TEF JSON
        sim = [e for e in document["traceEvents"]
               if e.get("pid") == SIM_CLOCK_PID and e["ph"] == "C"]
        assert {e["name"] for e in sim} == set(recorder.names())
        # Each series' counter samples land in sim-time order, scaled
        # by the sim-clock domain (1 sim-hour = SIM_HOUR_US us).
        for name in recorder.names():
            ts = [e["ts"] for e in sim if e["name"] == name]
            assert ts == sorted(ts)
            expected = [p[0] * SIM_HOUR_US
                        for p in recorder.series[name].points]
            assert ts == expected
        assert document["otherData"]["sim_hour_us"] == SIM_HOUR_US

    def test_sim_clock_process_metadata(self):
        recorder = FlightRecorder()
        recorder.record_origin(8)
        document = to_trace_events([_span("root", 0.0, 1.0)],
                                   registry=MetricsRegistry(),
                                   sim_series=recorder)
        labels = {e["pid"]: e["args"]["name"]
                  for e in _events(document, "M")}
        assert labels[SIM_CLOCK_PID] == \
            "repro sim-clock (1 sim-hour = 1 ms)"

    def test_dict_payload_accepted(self):
        recorder = FlightRecorder()
        recorder.sample("fleet.pool_free", 2.0, 30.0)
        document = to_trace_events([], registry=MetricsRegistry(),
                                   sim_series=recorder.to_dict())
        sim = [e for e in document["traceEvents"]
               if e.get("pid") == SIM_CLOCK_PID and e["ph"] == "C"]
        assert sim == [{
            "name": "fleet.pool_free", "ph": "C",
            "ts": 2.0 * SIM_HOUR_US, "pid": SIM_CLOCK_PID, "tid": 0,
            "args": {"value": 30.0},
        }]

    def test_no_series_no_sim_tracks(self):
        document = to_trace_events([_span("root", 0.0, 1.0)],
                                   registry=MetricsRegistry())
        assert all(e.get("pid") != SIM_CLOCK_PID
                   for e in document["traceEvents"])
        assert "sim_hour_us" not in document["otherData"]

    def test_empty_recorder_adds_no_process(self):
        document = to_trace_events([_span("root", 0.0, 1.0)],
                                   registry=MetricsRegistry(),
                                   sim_series=FlightRecorder())
        labels = {e["pid"] for e in _events(document, "M")}
        assert SIM_CLOCK_PID not in labels
