"""Edge-path tests across smaller surfaces."""

import pytest

from repro.errors import ConfigurationError, PlacementError, SensorError


class TestArithmeticHeater:
    def test_insufficient_dsp_sites_rejected(self):
        from repro.designs.arithmetic import build_fma_array
        from repro.fabric.netlist import Netlist
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
        from repro.fabric.placement import FixedPlacer

        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        netlist = Netlist(name="x")
        placer = FixedPlacer(grid)
        with pytest.raises(PlacementError):
            build_fma_array(netlist, placer, dsp_count=10**6)

    def test_avoid_columns_respected(self):
        from repro.designs.arithmetic import build_fma_array
        from repro.fabric.netlist import Netlist
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
        from repro.fabric.placement import FixedPlacer

        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        netlist = Netlist(name="x")
        placer = FixedPlacer(grid)
        avoid = frozenset(range(0, 24))
        build_fma_array(netlist, placer, dsp_count=32, avoid_columns=avoid)
        for name, site in placer.placement.sites.items():
            if name.endswith("_dsp"):
                assert site.coord.x not in avoid

    def test_negative_count_rejected(self):
        from repro.designs.arithmetic import build_fma_array
        from repro.fabric.netlist import Netlist
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
        from repro.fabric.placement import FixedPlacer

        with pytest.raises(PlacementError):
            build_fma_array(
                Netlist(name="x"),
                FixedPlacer(ZYNQ_ULTRASCALE_PLUS.make_grid()),
                dsp_count=-1,
            )


class TestPowerEdges:
    def test_invalid_activity_factor_rejected(self):
        from repro.fabric.netlist import Netlist
        from repro.fabric.power import estimate_power

        with pytest.raises(ConfigurationError):
            estimate_power(Netlist(name="x"), activity_factor=1.5)


class TestTransitionCache:
    def test_cache_refreshes_after_time_advances(self):
        from repro.designs import build_route_bank, build_target_design
        from repro.fabric.device import FpgaDevice
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
        from repro.sensor.trace import Polarity
        from repro.sensor.transition import TransitionGenerator

        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=93)
        route = build_route_bank(device.grid, [5000.0])[0]
        generator = TransitionGenerator(device=device, route=route)
        before = generator.arrival_at_chain_ps(Polarity.FALLING)
        # Repeated queries at the same sim time hit the cache.
        assert generator.arrival_at_chain_ps(Polarity.FALLING) == before
        design = build_target_design(device.part, [route], [1], heater_dsps=0)
        device.load(design.bitstream)
        device.advance_hours(50.0, 340.15)
        after = generator.arrival_at_chain_ps(Polarity.FALLING)
        assert after > before  # BTI slowed the falling transition

    def test_negative_insertion_delay_rejected(self):
        from repro.designs import build_route_bank
        from repro.fabric.device import FpgaDevice
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
        from repro.sensor.transition import TransitionGenerator

        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=94)
        route = build_route_bank(device.grid, [1000.0])[0]
        with pytest.raises(SensorError):
            TransitionGenerator(device=device, route=route,
                                insertion_delay_ps=-1.0)


class TestRoutingValidation:
    def test_validate_disjoint_catches_overlap(self):
        from repro.errors import RoutingError
        from repro.fabric.geometry import Coordinate
        from repro.fabric.routing import Route, SegmentId, validate_disjoint
        from repro.fabric.segments import SegmentKind

        shared = SegmentId(SegmentKind.LONG, Coordinate(0, 0), 0)
        a = Route(name="a", segments=(shared,))
        b = Route(name="b", segments=(shared,))
        with pytest.raises(RoutingError):
            validate_disjoint([a, b])

    def test_empty_route_rejected(self):
        from repro.errors import RoutingError
        from repro.fabric.routing import Route

        with pytest.raises(RoutingError):
            Route(name="empty", segments=())

    def test_route_helpers(self):
        from repro.fabric.geometry import Coordinate
        from repro.fabric.routing import Route, SegmentId
        from repro.fabric.segments import SegmentKind

        segs = (
            SegmentId(SegmentKind.LONG, Coordinate(0, 0), 0),
            SegmentId(SegmentKind.SINGLE, Coordinate(0, 12), 0),
        )
        route = Route(name="r", segments=segs)
        assert len(route) == 2
        assert route.endpoints == (Coordinate(0, 0), Coordinate(0, 12))
        assert route.switch_count == 4
        assert route.nominal_delay_ps == pytest.approx(570.0)


class TestSealedMarketplaceDeploy:
    def test_sealed_image_loads_but_stays_sealed(self):
        """End to end: a customer can run what they cannot read."""
        from repro.cloud.fleet import build_fleet
        from repro.cloud.marketplace import Marketplace
        from repro.cloud.provider import CloudProvider
        from repro.designs import build_route_bank, build_target_design
        from repro.errors import AccessError
        from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

        provider = CloudProvider(seed=1)
        provider.create_region(
            "r", build_fleet(VIRTEX_ULTRASCALE_PLUS, 1, seed=2)
        )
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0])
        design = build_target_design(VIRTEX_ULTRASCALE_PLUS, routes, [1],
                                     heater_dsps=0)
        marketplace = Marketplace()
        listing = marketplace.publish(design.bitstream, publisher="v")
        instance = provider.rent("r", "customer")
        marketplace.deploy(listing.afi_id, instance)
        assert instance.device.loaded_design is not None
        with pytest.raises(AccessError):
            listing.image.static_values()
