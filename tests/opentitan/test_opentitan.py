"""Tests for the OpenTitan Earl Grey study (Table 1)."""

import numpy as np
import pytest

from repro.opentitan import (
    TABLE1_ASSETS,
    AssetClass,
    build_table1,
    implement_earl_grey,
    render_table1,
)
from repro.opentitan.earlgrey import MODULE_FLOORPLAN, solve_distance_tiles
from repro.opentitan.study import vulnerability_ranking


class TestAssetInventory:
    def test_twenty_assets(self):
        assert len(TABLE1_ASSETS) == 20

    def test_paper_bus_widths(self):
        widths = {a.index: a.bus_width for a in TABLE1_ASSETS}
        assert widths[1] == 320
        assert widths[18] == 777
        assert widths[20] == 32

    def test_asset_classes_cover_all_three(self):
        classes = {a.asset_class for a in TABLE1_ASSETS}
        assert classes == {
            AssetClass.CRYPTOGRAPHIC_KEY,
            AssetClass.STATE_VALUE_TOKEN,
            AssetClass.SIGNAL,
        }

    def test_all_modules_in_floorplan(self):
        for asset in TABLE1_ASSETS:
            assert asset.source_module in MODULE_FLOORPLAN
            assert asset.dest_module in MODULE_FLOORPLAN


class TestSolveDistance:
    def test_inverts_delay_composition(self):
        from repro.fabric.router import displacement_delay_ps

        for target in (200.0, 600.0, 1500.0, 3000.0):
            tiles = solve_distance_tiles(target)
            achieved = displacement_delay_ps(tiles, 0)
            assert abs(achieved - target) < 200.0

    def test_zero_ish_targets(self):
        assert solve_distance_tiles(45.0) == 0


class TestImplementation:
    @pytest.fixture(scope="class")
    def implementation(self):
        return implement_earl_grey(seed=1)

    def test_every_asset_gets_full_bus(self, implementation):
        for asset in TABLE1_ASSETS:
            delays = implementation.delays_for(asset)
            assert delays.shape == (asset.bus_width,)
            assert (delays > 0.0).all()

    def test_deterministic_per_seed(self):
        a = implement_earl_grey(seed=9)
        b = implement_earl_grey(seed=9)
        for asset in TABLE1_ASSETS[:3]:
            assert np.array_equal(a.delays_for(asset), b.delays_for(asset))

    def test_medians_track_published(self, implementation):
        """The calibration loop anchors medians to the published rows
        (within quantisation of the wire classes)."""
        close = 0
        for asset in TABLE1_ASSETS:
            median = float(np.median(implementation.delays_for(asset)))
            published = asset.published.p50
            if abs(median - published) <= max(0.35 * published, 160.0):
                close += 1
        assert close >= 15  # most rows land near the published medians

    def test_long_tail_assets_have_stragglers(self, implementation):
        kmac = next(a for a in TABLE1_ASSETS if a.index == 18)
        delays = implementation.delays_for(kmac)
        assert np.median(delays) < 400.0
        assert delays.max() > 2000.0

    def test_routes_for_builds_physical_routes(self, implementation):
        asset = next(a for a in TABLE1_ASSETS if a.index == 5)
        routes = implementation.routes_for(asset, limit=4)
        assert len(routes) == 4
        assert all(len(r.segments) >= 2 for r in routes)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table1(seed=1)

    def test_sorted_by_maximum(self, rows):
        maxima = [row.stats.maximum for row in rows]
        assert maxima == sorted(maxima)

    def test_shape_matches_paper_claims(self, rows):
        """'Most routes are short -- only a few hundred picoseconds.
        However, there are longer route lengths that approach 4 ns.'"""
        medians = [row.stats.p50 for row in rows]
        assert sum(1 for m in medians if m < 600.0) >= 8
        assert max(row.stats.maximum for row in rows) > 3000.0

    def test_render_contains_all_assets(self, rows):
        text = render_table1(rows)
        for asset in TABLE1_ASSETS:
            assert asset.path in text

    def test_render_compare_doubles_rows(self, rows):
        plain = render_table1(rows).count("\n")
        compare = render_table1(rows, compare=True).count("\n")
        assert compare > plain * 1.5

    def test_vulnerability_ranking_prefers_long_assets(self, rows):
        ranking = vulnerability_ranking(rows)
        top_paths = [path for path, _ in ranking[:3]]
        # flash_ctrl OTP keys / aes TL-UL request: the long-route assets.
        assert any("flash_ctrl" in p or "aes_tl" in p for p in top_paths)
