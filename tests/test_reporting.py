"""Tests for the one-shot reproduction report and its CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting import generate_reproduction_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_reproduction_report(scale="quick", seed=5,
                                            routes_per_length=2)

    def test_contains_all_four_artefacts(self, report):
        assert "## Table 1" in report
        assert "## Figure 6" in report
        assert "## Figure 7" in report
        assert "## Figure 8" in report

    def test_compares_against_paper(self, report):
        assert "(paper)" in report
        assert "paper band" in report

    def test_records_recovery_scores(self, report):
        assert report.count("recovered") >= 3

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_reproduction_report(scale="gigantic")


class TestReportCli:
    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.md"
        assert main(["report", "--scale", "quick", "--seed", "5",
                     "--output", str(target)]) == 0
        assert "report written" in capsys.readouterr().out
        text = target.read_text()
        assert "# Pentimento reproduction report" in text
        assert "## Figure 8" in text

    def test_experiment_archive_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.persistence import load_experiment_bundle

        target = tmp_path / "exp1.json"
        assert main(["exp1", "--quick", "--no-figure", "--seed", "5",
                     "--burn-hours", "16", "--recovery-hours", "8",
                     "--output", str(target)]) == 0
        metadata, bundle = load_experiment_bundle(target)
        assert metadata["result_type"] == "Experiment1Result"
        assert len(bundle) > 0
