"""Tests for JSON result persistence."""

import json

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle
from repro.persistence import (
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    load_experiment_bundle,
    save_bundle,
    save_experiment,
)


def make_bundle():
    bundle = SeriesBundle("archive-test")
    for i, burn in enumerate((1, 0)):
        series = DeltaPsSeries(
            route_name=f"rut[{i}]", nominal_delay_ps=5000.0, burn_value=burn
        )
        for hour in range(5):
            series.append(float(hour), 0.1 * hour * (1 if burn else -1))
        bundle.add(series)
    return bundle


class TestBundleRoundTrip:
    def test_full_fidelity(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        assert restored.label == bundle.label
        for name, series in bundle.series.items():
            twin = restored.series[name]
            assert twin.hours == series.hours
            assert twin.raw_delta_ps == series.raw_delta_ps
            assert twin.burn_value == series.burn_value
            assert twin.nominal_delay_ps == series.nominal_delay_ps

    def test_centered_analysis_survives(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        for name in bundle.series:
            assert np.allclose(
                restored.series[name].centered, bundle.series[name].centered
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_bundle(tmp_path / "ghost.json")

    def test_wrong_schema_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 99
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_misaligned_series_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["series"][0]["hours"].append(99.0)
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_non_bundle_payload_rejected(self):
        with pytest.raises(AnalysisError):
            bundle_from_dict({"totally": "unrelated"})


class TestExperimentArchive:
    def test_round_trip_with_provenance(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        metadata, bundle = load_experiment_bundle(path)
        assert metadata["result_type"] == "Experiment1Result"
        assert metadata["recovery"]["accuracy"] == result.recovery_score.accuracy
        assert metadata["config"]["burn_hours"] == result.config.burn_hours
        assert len(bundle) == len(result.bundle)

    def test_archive_is_plain_json(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        payload = json.loads(path.read_text())
        assert payload["repro_version"]

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(AnalysisError):
            load_experiment_bundle(path)
