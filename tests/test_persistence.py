"""Tests for JSON result persistence."""

import json

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle
from repro.persistence import (
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    load_experiment_bundle,
    save_bundle,
    save_experiment,
)


def make_bundle():
    bundle = SeriesBundle("archive-test")
    for i, burn in enumerate((1, 0)):
        series = DeltaPsSeries(
            route_name=f"rut[{i}]", nominal_delay_ps=5000.0, burn_value=burn
        )
        for hour in range(5):
            series.append(float(hour), 0.1 * hour * (1 if burn else -1))
        bundle.add(series)
    return bundle


class TestBundleRoundTrip:
    def test_full_fidelity(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        assert restored.label == bundle.label
        for name, series in bundle.series.items():
            twin = restored.series[name]
            assert twin.hours == series.hours
            assert twin.raw_delta_ps == series.raw_delta_ps
            assert twin.burn_value == series.burn_value
            assert twin.nominal_delay_ps == series.nominal_delay_ps

    def test_centered_analysis_survives(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        for name in bundle.series:
            assert np.allclose(
                restored.series[name].centered, bundle.series[name].centered
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_bundle(tmp_path / "ghost.json")

    def test_wrong_schema_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 99
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_misaligned_series_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["series"][0]["hours"].append(99.0)
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_non_bundle_payload_rejected(self):
        with pytest.raises(AnalysisError):
            bundle_from_dict({"totally": "unrelated"})


class TestSchemaCompat:
    def test_v1_bundle_still_loads(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 1  # as written by pre-manifest builds
        restored = bundle_from_dict(payload)
        assert len(restored) == 2

    def test_current_schema_is_v2(self):
        assert bundle_to_dict(make_bundle())["schema"] == 2

    def test_mismatch_error_names_both_versions(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 99
        with pytest.raises(AnalysisError) as excinfo:
            bundle_from_dict(payload)
        message = str(excinfo.value)
        assert "99" in message and "2" in message

    def test_v1_experiment_archive_loads_without_manifest(self, tmp_path):
        bundle_payload = bundle_to_dict(make_bundle())
        bundle_payload["schema"] = 1
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema": 1,
            "repro_version": "0.9.0",
            "result_type": "Experiment1Result",
            "bundle": bundle_payload,
        }))
        metadata, bundle = load_experiment_bundle(path)
        assert "manifest" not in metadata
        assert len(bundle) == 2


class TestExperimentArchive:
    def test_round_trip_with_provenance(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        metadata, bundle = load_experiment_bundle(path)
        assert metadata["result_type"] == "Experiment1Result"
        assert metadata["recovery"]["accuracy"] == result.recovery_score.accuracy
        assert metadata["config"]["burn_hours"] == result.config.burn_hours
        assert len(bundle) == len(result.bundle)

    def test_manifest_embedded_and_round_trips(self, tmp_path):
        from repro import __version__
        from repro.experiments import Experiment1Config, run_experiment1
        from repro.persistence import load_manifest

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        manifest = load_manifest(path)
        assert manifest["repro_version"] == __version__
        assert manifest["seed"] == 5
        assert manifest["config"]["burn_hours"] == result.config.burn_hours
        # The metrics snapshot recorded the run that produced the archive.
        assert manifest["metrics"]["counters"]["captures_total"] > 0

    def test_caller_built_manifest_wins(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1
        from repro.persistence import load_manifest

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(
            result, tmp_path / "exp1.json", manifest={"run_id": "custom"}
        )
        assert load_manifest(path) == {"run_id": "custom"}

    def test_archive_is_plain_json(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        payload = json.loads(path.read_text())
        assert payload["repro_version"]

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(AnalysisError):
            load_experiment_bundle(path)
