"""Tests for JSON result persistence."""

import json

import numpy as np
import pytest

from repro.errors import AnalysisError, PersistenceError, ReproError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle
from repro.persistence import (
    atomic_write_text,
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    load_experiment_bundle,
    save_bundle,
    save_experiment,
)


def make_bundle():
    bundle = SeriesBundle("archive-test")
    for i, burn in enumerate((1, 0)):
        series = DeltaPsSeries(
            route_name=f"rut[{i}]", nominal_delay_ps=5000.0, burn_value=burn
        )
        for hour in range(5):
            series.append(float(hour), 0.1 * hour * (1 if burn else -1))
        bundle.add(series)
    return bundle


class TestBundleRoundTrip:
    def test_full_fidelity(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        assert restored.label == bundle.label
        for name, series in bundle.series.items():
            twin = restored.series[name]
            assert twin.hours == series.hours
            assert twin.raw_delta_ps == series.raw_delta_ps
            assert twin.burn_value == series.burn_value
            assert twin.nominal_delay_ps == series.nominal_delay_ps

    def test_centered_analysis_survives(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        restored = load_bundle(path)
        for name in bundle.series:
            assert np.allclose(
                restored.series[name].centered, bundle.series[name].centered
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_bundle(tmp_path / "ghost.json")

    def test_wrong_schema_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 99
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_misaligned_series_rejected(self):
        payload = bundle_to_dict(make_bundle())
        payload["series"][0]["hours"].append(99.0)
        with pytest.raises(AnalysisError):
            bundle_from_dict(payload)

    def test_non_bundle_payload_rejected(self):
        with pytest.raises(AnalysisError):
            bundle_from_dict({"totally": "unrelated"})


class TestSchemaCompat:
    def test_v1_bundle_still_loads(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 1  # as written by pre-manifest builds
        restored = bundle_from_dict(payload)
        assert len(restored) == 2

    def test_current_schema_is_v2(self):
        assert bundle_to_dict(make_bundle())["schema"] == 2

    def test_mismatch_error_names_both_versions(self):
        payload = bundle_to_dict(make_bundle())
        payload["schema"] = 99
        with pytest.raises(AnalysisError) as excinfo:
            bundle_from_dict(payload)
        message = str(excinfo.value)
        assert "99" in message and "2" in message

    def test_v1_experiment_archive_loads_without_manifest(self, tmp_path):
        bundle_payload = bundle_to_dict(make_bundle())
        bundle_payload["schema"] = 1
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema": 1,
            "repro_version": "0.9.0",
            "result_type": "Experiment1Result",
            "bundle": bundle_payload,
        }))
        metadata, bundle = load_experiment_bundle(path)
        assert "manifest" not in metadata
        assert len(bundle) == 2


class TestExperimentArchive:
    def test_round_trip_with_provenance(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        metadata, bundle = load_experiment_bundle(path)
        assert metadata["result_type"] == "Experiment1Result"
        assert metadata["recovery"]["accuracy"] == result.recovery_score.accuracy
        assert metadata["config"]["burn_hours"] == result.config.burn_hours
        assert len(bundle) == len(result.bundle)

    def test_manifest_embedded_and_round_trips(self, tmp_path):
        from repro import __version__
        from repro.experiments import Experiment1Config, run_experiment1
        from repro.persistence import load_manifest

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        manifest = load_manifest(path)
        assert manifest["repro_version"] == __version__
        assert manifest["seed"] == 5
        assert manifest["config"]["burn_hours"] == result.config.burn_hours
        # The metrics snapshot recorded the run that produced the archive.
        assert manifest["metrics"]["counters"]["captures_total"] > 0

    def test_caller_built_manifest_wins(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1
        from repro.persistence import load_manifest

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(
            result, tmp_path / "exp1.json", manifest={"run_id": "custom"}
        )
        assert load_manifest(path) == {"run_id": "custom"}

    def test_archive_is_plain_json(self, tmp_path):
        from repro.experiments import Experiment1Config, run_experiment1

        result = run_experiment1(Experiment1Config.quick(seed=5))
        path = save_experiment(result, tmp_path / "exp1.json")
        payload = json.loads(path.read_text())
        assert payload["repro_version"]

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(AnalysisError):
            load_experiment_bundle(path)


class TestPersistenceHardening:
    """Corrupt files are named; writes are atomic."""

    def test_persistence_error_is_a_repro_error(self):
        assert issubclass(PersistenceError, ReproError)

    def test_corrupt_bundle_names_file(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text('{"schema": 2, "series": [')  # truncated
        with pytest.raises(PersistenceError) as excinfo:
            load_bundle(path)
        assert "mangled.json" in str(excinfo.value)

    def test_corrupt_archive_names_file(self, tmp_path):
        path = tmp_path / "halfway.json"
        path.write_text("not json at all")
        with pytest.raises(PersistenceError) as excinfo:
            load_experiment_bundle(path)
        assert "halfway.json" in str(excinfo.value)

    def test_bundle_missing_keys_named(self, tmp_path):
        payload = bundle_to_dict(make_bundle())
        del payload["series"][0]["hours"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="partial.json"):
            load_bundle(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"ok": true}')
        atomic_write_text(target, '{"ok": false}')
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
        assert json.loads(target.read_text()) == {"ok": False}

    def test_failed_atomic_write_preserves_previous(self, tmp_path,
                                                    monkeypatch):
        import os as _os

        target = tmp_path / "out.json"
        atomic_write_text(target, "first")

        real_replace = _os.replace

        def broken_replace(src, dst):
            raise OSError("disk fell off")

        monkeypatch.setattr(_os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "second")
        monkeypatch.setattr(_os, "replace", real_replace)
        # The old content survives and the temp file was cleaned up.
        assert target.read_text() == "first"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_save_bundle_is_atomic_over_existing(self, tmp_path):
        bundle = make_bundle()
        path = save_bundle(bundle, tmp_path / "run.json")
        save_bundle(bundle, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["run.json"]
        assert load_bundle(path).label == bundle.label
