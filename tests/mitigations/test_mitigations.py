"""Tests for mitigation schedules and the effectiveness harness."""

import pytest

from repro.errors import ConfigurationError
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.mitigations import (
    KeyRotationSchedule,
    PeriodicInversionSchedule,
    RelocationSchedule,
    ShufflingSchedule,
    StaticSchedule,
    evaluate_schedule,
)
from repro.mitigations.evaluation import default_evaluation_routes
from repro.mitigations.relocation import build_relocation_banks

PART = ZYNQ_ULTRASCALE_PLUS


@pytest.fixture(scope="module")
def routes():
    return default_evaluation_routes(PART, lengths=(10000.0,) * 6)


@pytest.fixture(scope="module")
def values():
    return [1, 0, 1, 1, 0, 0]


class TestSchedules:
    def test_static_schedule_never_changes(self, routes, values):
        design = build_target_design(PART, routes, values, heater_dsps=0)
        schedule = StaticSchedule(design)
        assert schedule.bitstream_for_epoch(0) is schedule.bitstream_for_epoch(99)

    def test_inversion_alternates(self, routes, values):
        schedule = PeriodicInversionSchedule(PART, routes, values,
                                             period_epochs=1)
        plain = schedule.bitstream_for_epoch(0)
        flipped = schedule.bitstream_for_epoch(1)
        assert plain is not flipped
        assert schedule.bitstream_for_epoch(2) is plain
        plain_values = plain.static_values()
        flipped_values = flipped.static_values()
        for name in plain_values:
            assert plain_values[name] == 1 - flipped_values[name]

    def test_inversion_period_respected(self, routes, values):
        schedule = PeriodicInversionSchedule(PART, routes, values,
                                             period_epochs=3)
        images = [schedule.bitstream_for_epoch(e).name for e in range(7)]
        assert images[:3] == [images[0]] * 3
        assert images[3] != images[0]

    def test_shuffling_preserves_hamming_weight(self, routes, values):
        schedule = ShufflingSchedule(PART, routes, values, seed=4)
        for epoch in (0, 1, 5):
            shuffled = schedule.bitstream_for_epoch(epoch).static_values()
            assert sum(shuffled.values()) == sum(values)

    def test_shuffling_deterministic(self, routes, values):
        a = ShufflingSchedule(PART, routes, values, seed=4)
        b = ShufflingSchedule(PART, routes, values, seed=4)
        assert (a.bitstream_for_epoch(3).static_values()
                == b.bitstream_for_epoch(3).static_values())

    def test_rotation_changes_key_each_period(self, routes, values):
        schedule = KeyRotationSchedule(PART, routes, values,
                                       period_epochs=2, seed=9)
        assert schedule.key_for_period(0) == list(values)
        assert schedule.key_for_period(1) != list(values)
        assert (schedule.bitstream_for_epoch(0).static_values()
                != schedule.bitstream_for_epoch(2).static_values())

    def test_invalid_period_rejected(self, routes, values):
        with pytest.raises(ConfigurationError):
            PeriodicInversionSchedule(PART, routes, values, period_epochs=0)
        with pytest.raises(ConfigurationError):
            KeyRotationSchedule(PART, routes, values, period_epochs=-1)


class TestRelocation:
    def test_banks_are_disjoint(self):
        grid = PART.make_grid()
        banks = build_relocation_banks(grid, [5000.0, 5000.0], bank_count=3)
        from repro.fabric.routing import validate_disjoint

        validate_disjoint([route for bank in banks for route in bank])

    def test_schedule_rotates_banks(self):
        grid = PART.make_grid()
        banks = build_relocation_banks(grid, [5000.0], bank_count=2)
        schedule = RelocationSchedule(PART, banks, [1], period_epochs=2)
        assert schedule.bank_for_epoch(0) == 0
        assert schedule.bank_for_epoch(2) == 1
        assert schedule.bank_for_epoch(4) == 0

    def test_width_mismatch_rejected(self):
        grid = PART.make_grid()
        banks = build_relocation_banks(grid, [5000.0], bank_count=2)
        with pytest.raises(ConfigurationError):
            RelocationSchedule(PART, banks, [1, 0])


class TestEffectiveness:
    """The headline property: mitigations raise the attacker's BER."""

    @pytest.fixture(scope="class")
    def baseline(self):
        routes = default_evaluation_routes(PART, lengths=(10000.0,) * 6)
        values = [1, 0, 1, 1, 0, 0]
        design = build_target_design(PART, routes, values, heater_dsps=0)
        report = evaluate_schedule(
            StaticSchedule(design), routes, values,
            burn_hours=32, measure_every_hours=2.0, seed=17,
        )
        return report

    def test_unmitigated_victim_fully_recovered(self, baseline):
        assert baseline.attacker_ber == 0.0

    def test_hourly_inversion_defeats_extraction(self, baseline):
        routes = default_evaluation_routes(PART, lengths=(10000.0,) * 6)
        values = [1, 0, 1, 1, 0, 0]
        schedule = PeriodicInversionSchedule(PART, routes, values,
                                             period_epochs=1)
        report = evaluate_schedule(
            schedule, routes, values,
            burn_hours=32, measure_every_hours=2.0, seed=17,
        )
        assert report.attacker_ber >= 0.3  # near coin-flipping
