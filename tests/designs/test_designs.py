"""Tests for the Target/Measure designs and route banks."""

import pytest

from repro.errors import ConfigurationError, RoutingError, SensorError
from repro.analysis.timeseries import length_class
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.designs.routes import PAPER_ROUTE_LENGTHS_PS
from repro.designs.target import keep_out_columns
from repro.fabric.device import FpgaDevice
from repro.fabric.netlist import NetActivity
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.fabric.routing import validate_disjoint
from repro.sensor.noise import LAB_NOISE


class TestRouteBank:
    def test_paper_bank_has_64_routes(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid)
        assert len(routes) == 64
        lengths = sorted(
            {length_class(r.nominal_delay_ps) for r in routes}
        )
        assert lengths == [1000.0, 2000.0, 5000.0, 10000.0]

    def test_bank_preserves_caller_order(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 10000.0, 2000.0])
        classes = [length_class(r.nominal_delay_ps) for r in routes]
        assert classes == [1000.0, 10000.0, 2000.0]

    def test_bank_is_disjoint_on_both_parts(self):
        for part in (ZYNQ_ULTRASCALE_PLUS, VIRTEX_ULTRASCALE_PLUS):
            routes = build_route_bank(part.make_grid())
            validate_disjoint(routes)

    def test_custom_names(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 2000.0], names=["a", "b"])
        assert [r.name for r in routes] == ["a", "b"]

    def test_mismatched_names_rejected(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        with pytest.raises(RoutingError):
            build_route_bank(grid, [1000.0], names=["a", "b"])

    def test_empty_bank_rejected(self):
        with pytest.raises(RoutingError):
            build_route_bank(ZYNQ_ULTRASCALE_PLUS.make_grid(), [])


class TestTargetDesign:
    def _build(self, values=(1, 0)):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 2000.0])
        return build_target_design(
            ZYNQ_ULTRASCALE_PLUS, routes, list(values), heater_dsps=8
        ), routes

    def test_routes_carry_static_values(self):
        design, routes = self._build((1, 0))
        netlist = design.bitstream.netlist
        for route, value in zip(routes, (1, 0)):
            net = netlist.nets[route.name]
            assert net.activity is NetActivity.STATIC
            assert net.static_value == value
            assert net.route is route

    def test_value_oracle(self):
        design, routes = self._build((1, 0))
        assert design.value_of(routes[0].name) == 1
        with pytest.raises(ConfigurationError):
            design.value_of("ghost")

    def test_heaters_avoid_route_columns(self):
        design, routes = self._build()
        avoid = keep_out_columns(routes)
        for name, site in design.bitstream.placement.sites.items():
            if name.startswith("fma") and name.endswith("_dsp"):
                assert site.coord.x not in avoid

    def test_mismatched_values_rejected(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0])
        with pytest.raises(ConfigurationError):
            build_target_design(ZYNQ_ULTRASCALE_PLUS, routes, [1, 0])

    def test_non_bit_values_rejected(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0])
        with pytest.raises(ConfigurationError):
            build_target_design(ZYNQ_ULTRASCALE_PLUS, routes, [2])

    def test_paper_heater_fits_vu9p(self):
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid)
        design = build_target_design(
            VIRTEX_ULTRASCALE_PLUS, routes, [0] * 64, heater_dsps=3896
        )
        assert 55.0 < design.bitstream.power.total_watts < 70.0


class TestMeasureDesign:
    def test_shares_physical_routes_with_target(self):
        """'Identical routing constraints': same segments, same silicon."""
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 5000.0])
        target = build_target_design(
            ZYNQ_ULTRASCALE_PLUS, routes, [1, 0], heater_dsps=0
        )
        measure = build_measure_design(ZYNQ_ULTRASCALE_PLUS, routes)
        for route in routes:
            target_net = target.bitstream.netlist.nets[route.name]
            measure_net = measure.bitstream.netlist.nets[route.name]
            assert target_net.route.segments == measure_net.route.segments

    def test_measure_nets_do_not_stress(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0])
        measure = build_measure_design(ZYNQ_ULTRASCALE_PLUS, routes)
        net = measure.bitstream.netlist.nets[routes[0].name]
        assert net.activity is NetActivity.FLOATING

    def test_attach_requires_loaded_design(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=51)
        routes = build_route_bank(device.grid, [1000.0])
        measure = build_measure_design(device.part, routes)
        with pytest.raises(SensorError):
            measure.attach(device)

    def test_attach_after_load_builds_sessions(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=52)
        routes = build_route_bank(device.grid, [1000.0, 2000.0])
        measure = build_measure_design(device.part, routes)
        device.load(measure.bitstream)
        session = measure.attach(device, noise=LAB_NOISE, seed=1)
        assert session.route_names == (routes[0].name, routes[1].name)

    def test_measure_before_calibration_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=53)
        routes = build_route_bank(device.grid, [1000.0])
        measure = build_measure_design(device.part, routes)
        device.load(measure.bitstream)
        session = measure.attach(device, noise=LAB_NOISE, seed=1)
        with pytest.raises(SensorError):
            session.measure_route(routes[0].name)

    def test_use_theta_init_requires_all_routes(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=54)
        routes = build_route_bank(device.grid, [1000.0, 2000.0])
        measure = build_measure_design(device.part, routes)
        device.load(measure.bitstream)
        session = measure.attach(device, noise=LAB_NOISE, seed=1)
        with pytest.raises(ConfigurationError):
            session.use_theta_init({routes[0].name: 1000.0})

    def test_measurement_duration_under_a_minute(self):
        """Section 5.2: 'Measurement is fast, taking less than a minute'."""
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid)
        measure = build_measure_design(VIRTEX_ULTRASCALE_PLUS, routes)
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, seed=55)
        device.load(measure.bitstream)
        session = measure.attach(device, seed=1)
        assert session.measurement_duration_hours() * 3600.0 < 60.0
