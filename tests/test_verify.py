"""Tests for the Section 8.1 vulnerability verification tool."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.verify import (
    ExposureGrade,
    ThreatScenario,
    analyze_bitstream,
    analyze_routes,
    render_vulnerability_report,
)

PART = VIRTEX_ULTRASCALE_PLUS


@pytest.fixture(scope="module")
def routes():
    grid = PART.make_grid()
    return build_route_bank(grid, [1000.0, 2000.0, 5000.0, 10000.0])


class TestScenario:
    def test_defaults_match_paper_cloud(self):
        scenario = ThreatScenario.aws_f1_default()
        assert scenario.residency_hours == 200.0
        assert scenario.device_age_hours == 4000.0

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreatScenario(residency_hours=0.0)
        with pytest.raises(ConfigurationError):
            ThreatScenario(device_age_hours=-1.0)
        with pytest.raises(ConfigurationError):
            ThreatScenario(measurement_passes=0)


class TestAnalyzeRoutes:
    def test_snr_grows_with_route_length(self, routes):
        report = analyze_routes(routes)
        snrs = [e.attacker_snr for e in report.exposures]
        assert snrs == sorted(snrs)

    def test_fresh_device_is_worse(self, routes):
        aged = analyze_routes(routes, ThreatScenario.aws_f1_default())
        fresh = analyze_routes(routes, ThreatScenario.fresh_device())
        for a, f in zip(aged.exposures, fresh.exposures):
            assert f.attacker_snr > a.attacker_snr

    def test_longer_residency_is_worse(self, routes):
        short = analyze_routes(routes, ThreatScenario(residency_hours=24.0))
        long_ = analyze_routes(routes, ThreatScenario(residency_hours=400.0))
        assert long_.worst().attacker_snr > short.worst().attacker_snr

    def test_extraction_time_decreases_with_length(self, routes):
        report = analyze_routes(routes, ThreatScenario.fresh_device())
        hours = [e.hours_to_extraction for e in report.exposures]
        assert all(h is not None for h in hours)
        assert hours == sorted(hours, reverse=True)

    def test_grades_cover_spectrum(self, routes):
        fresh = analyze_routes(routes, ThreatScenario.fresh_device())
        grades = {e.grade for e in fresh.exposures}
        assert ExposureGrade.CRITICAL in grades

    def test_unmeasurable_routes_grade_low(self, routes):
        hopeless = ThreatScenario(
            residency_hours=1.0, device_age_hours=50000.0
        )
        report = analyze_routes(routes[:1], hopeless)
        assert report.exposures[0].grade is ExposureGrade.LOW
        assert report.exposures[0].hours_to_extraction is None

    def test_empty_routes_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_routes([])


class TestAnalyzeBitstream:
    def test_defaults_to_static_nets(self, routes):
        design = build_target_design(PART, routes, [1, 0, 1, 0],
                                     heater_dsps=16)
        report = analyze_bitstream(design.bitstream)
        analysed = {e.net_name for e in report.exposures}
        assert analysed == {r.name for r in routes}  # heater nets excluded

    def test_explicit_net_selection(self, routes):
        design = build_target_design(PART, routes, [1, 0, 1, 0],
                                     heater_dsps=0)
        report = analyze_bitstream(
            design.bitstream, sensitive_nets=[routes[3].name]
        )
        assert len(report.exposures) == 1

    def test_design_without_routes_rejected(self):
        from repro.fabric.bitstream import Bitstream
        from repro.fabric.netlist import Netlist
        from repro.fabric.placement import Placement

        empty = Bitstream.compile(Netlist(name="empty"), Placement())
        with pytest.raises(AnalysisError):
            analyze_bitstream(empty)


class TestReportOutput:
    def test_render_contains_all_nets_and_verdicts(self, routes):
        report = analyze_routes(routes, ThreatScenario.fresh_device())
        text = render_vulnerability_report(report)
        for route in routes:
            assert route.name in text
        assert "recommendations:" in text
        assert "CRITICAL" in text

    def test_recommendations_track_findings(self, routes):
        risky = analyze_routes(routes, ThreatScenario.fresh_device())
        assert any("invert or shuffle" in r for r in risky.recommendations())
        safe = analyze_routes(
            routes[:1],
            ThreatScenario(residency_hours=1.0, device_age_hours=50000.0),
        )
        assert any("noise floor" in r for r in safe.recommendations())

    def test_mitigated_scenario_downgrades(self, routes):
        """The report quantifies what a mitigation buys: shorter
        residency (rotation) lowers every grade."""
        static = analyze_routes(routes, ThreatScenario(residency_hours=200.0))
        rotated = analyze_routes(routes, ThreatScenario(residency_hours=8.0))
        assert rotated.worst().attacker_snr < static.worst().attacker_snr
