"""Tests for the related-work baselines (thermal channel, SRAM imprint)."""

import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.baselines import (
    SramImprintCell,
    ThermalChannel,
    TransientThermalState,
    sram_imprint_detectable,
)
from repro.baselines.sram_imprint import (
    CLOUD_TDC_RESOLUTION_PS,
    ZICK_BURN_HOURS,
    ZICK_RESOLUTION_PS,
    detectability_summary,
)


class TestTransientThermal:
    def test_heating_approaches_steady_state(self):
        state = TransientThermalState()
        state.advance(60.0, 60.0)  # an hour at 60 W
        assert state.excess_c == pytest.approx(0.35 * 60.0, rel=0.01)

    def test_cooling_returns_to_ambient_within_minutes(self):
        """The paper's point: temperature dies in minutes."""
        state = TransientThermalState()
        state.advance(30.0, 60.0)
        state.advance(10.0, 0.0)  # ten idle minutes
        assert state.excess_c < 0.2

    def test_exponential_relaxation(self):
        state = TransientThermalState()
        state.advance(30.0, 60.0)
        peak = state.excess_c
        state.advance(TransientThermalState().tau_minutes, 0.0)
        assert state.excess_c == pytest.approx(peak / 2.718, rel=0.02)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientThermalState().advance(-1.0, 0.0)


class TestThermalChannel:
    def test_decodes_with_immediate_handoff(self):
        channel = ThermalChannel(seed=1)
        assert channel.accuracy_at_gap(0.0) > 0.95

    def test_channel_dies_within_minutes(self):
        channel = ThermalChannel(seed=1)
        assert channel.accuracy_at_gap(12.0) < 0.7

    def test_accuracy_monotone_in_gap(self):
        channel = ThermalChannel(seed=2)
        accuracies = [channel.accuracy_at_gap(g, bits=128)
                      for g in (0.0, 4.0, 12.0)]
        assert accuracies[0] > accuracies[-1]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalChannel(heater_watts=0.0)
        channel = ThermalChannel(seed=1)
        with pytest.raises(ConfigurationError):
            channel.transmit_and_receive([2], 0.0)
        with pytest.raises(ConfigurationError):
            channel.transmit_and_receive([1], -1.0)


class TestSramImprint:
    def test_signature_magnitude_far_below_routing(self):
        cell = SramImprintCell(held_value=1, burn_hours=200.0)
        # A 1000 ps route imprints ~1.5 ps; the cell is ~2-3 orders below.
        assert cell.delay_signature_ps < 0.01

    def test_signature_signed_by_value(self):
        one = SramImprintCell(held_value=1, burn_hours=200.0)
        zero = SramImprintCell(held_value=0, burn_hours=200.0)
        assert one.delay_signature_ps == -zero.delay_signature_ps > 0.0

    def test_zick_lab_setup_detects(self):
        assert sram_imprint_detectable(ZICK_BURN_HOURS, ZICK_RESOLUTION_PS)

    def test_cloud_tdc_cannot_detect(self):
        """The paper's reason for targeting routing instead of SRAM."""
        assert not sram_imprint_detectable(
            ZICK_BURN_HOURS, CLOUD_TDC_RESOLUTION_PS
        )

    def test_summary_matches_section7(self):
        summary = detectability_summary()
        assert summary["zick_lab_sensor"] is True
        assert summary["cloud_tdc"] is False
        assert summary["cloud_tdc_200h"] is False

    def test_invalid_cell_rejected(self):
        with pytest.raises(PhysicsError):
            SramImprintCell(held_value=2, burn_hours=1.0)
        with pytest.raises(ConfigurationError):
            sram_imprint_detectable(100.0, 0.0)
