"""Whole-board bank kernels vs. the per-route reference paths.

PR 2 pinned the batched *trace* kernel against the scalar per-word
loop.  This suite pins the *routes* axis added on top of it:

* the lockstep calibration scan (``find_theta_init_bank``) against the
  sequential per-route scan, bit for bit, **with jitter on** -- every
  route owns an independent generator stream, so batching across routes
  never reorders any route's own draws;
* one stacked ``measure_bank`` call against a ``measure_route`` loop,
  also bit for bit with jitter on;
* the stacked geometry primitives (``bank_wavefront_positions``,
  ``bank_trace_mean_distances``) against their per-chain/per-route
  forms, including boundary-exact times;
* failure parity: an uncalibratable route raises the same
  :class:`CalibrationError` either way and leaves the same partial
  theta_init behind, and the ``sensor.calibrate`` / ``sensor.capture``
  fault sites degrade both orchestrations identically.
"""

import numpy as np
import pytest

from repro.core.phases import measure_with_recovery
from repro.designs import build_measure_design, build_route_bank
from repro.errors import CalibrationError, SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.observability.metrics import registry
from repro.reliability.faults import FaultPlan, FaultSpec, fault_plan
from repro.sensor.calibration import (
    calibration_kernel,
    find_theta_init,
    find_theta_init_bank,
    get_calibration_kernel,
    set_calibration_kernel,
)
from repro.sensor.carry_chain import CarryChain, bank_wavefront_positions
from repro.sensor.clocking import PhaseGenerator
from repro.sensor.noise import CLOUD_NOISE, LAB_NOISE, NoiseModel
from repro.sensor.postprocess import (
    bank_trace_mean_distances,
    batch_trace_mean_distances,
)
from repro.sensor.tdc import TunableDualPolarityTdc
from repro.sensor.trace import Polarity

QUIET = NoiseModel(jitter_ps=0.0, polarity_offset_sigma_ps=0.0,
                   offset_correlation=0.0)

LENGTHS = [1000.0, 2000.0, 5000.0, 1000.0]


def make_session(seed, noise=CLOUD_NOISE, lengths=LENGTHS):
    """A fresh device + loaded Measure design + attached session.

    Called twice with the same seed it produces identical silicon and
    identical per-route generator streams, so two sessions can be
    driven down different code paths and compared bit for bit.
    """
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    routes = build_route_bank(device.grid, list(lengths))
    design = build_measure_design(device.part, routes)
    device.load(design.bitstream)
    return design.attach(device, noise=noise, seed=seed)


class TestCalibrationBitIdentity:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_lockstep_matches_scalar_scan_with_jitter(self, seed):
        """Same seeds => identical theta_init dicts, jitter and all."""
        scalar = make_session(seed, noise=CLOUD_NOISE)
        batched = make_session(seed, noise=CLOUD_NOISE)
        theta_scalar = scalar.calibrate(calibration="scalar")
        theta_batched = batched.calibrate(calibration="batched")
        assert theta_scalar == theta_batched
        assert list(theta_scalar) == list(theta_batched)

    def test_counters_match_scalar_scan(self):
        scalar = make_session(3, noise=LAB_NOISE)
        scalar.calibrate(calibration="scalar")
        snapshot = {
            name: counter.value
            for name, counter in registry.counters.items()
            if name.startswith("calibration")
        }
        registry.reset()
        batched = make_session(3, noise=LAB_NOISE)
        batched.calibrate(calibration="batched")
        for name, value in snapshot.items():
            assert registry.counters[name].value == value, name

    def test_function_level_parity_per_route(self):
        """find_theta_init_bank == a find_theta_init loop, route by route."""
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
        routes = build_route_bank(device.grid, [1000.0, 5000.0, 2000.0])
        scalar_results = {}
        bank_tdcs = {}
        for i, route in enumerate(routes):
            scalar_results[route.name] = find_theta_init(
                TunableDualPolarityTdc(device, route, noise=LAB_NOISE,
                                       seed=100 + i)
            )
            bank_tdcs[route.name] = TunableDualPolarityTdc(
                device, route, noise=LAB_NOISE, seed=100 + i
            )
        assert find_theta_init_bank(bank_tdcs) == scalar_results


class TestMeasureBankBitIdentity:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_bank_matches_per_route_loop_with_jitter(self, seed):
        scalar = make_session(seed, noise=CLOUD_NOISE)
        batched = make_session(seed, noise=CLOUD_NOISE)
        scalar.calibrate(calibration="scalar")
        batched.calibrate(calibration="batched")
        per_route = {
            name: scalar.measure_route(name, kernel="batched")
            for name in scalar.route_names
        }
        bank, dropped = batched.measure_bank()
        assert dropped == []
        assert list(bank) == list(per_route)
        for name in per_route:
            assert bank[name] == per_route[name]

    def test_measure_all_routes_through_bank(self):
        session = make_session(5, noise=QUIET)
        session.calibrate()
        twin = make_session(5, noise=QUIET)
        twin.calibrate()
        assert session.measure_all() == twin.measure_bank()[0]

    def test_scalar_kernel_rejected(self):
        session = make_session(2)
        with pytest.raises(SensorError):
            session.measure_bank(kernel="scalar")

    def test_uncalibrated_route_raises_without_recover(self):
        session = make_session(2, noise=QUIET)
        session.calibrate()
        del session.theta_init[session.route_names[1]]
        with pytest.raises(SensorError):
            session.measure_bank()

    def test_uncalibrated_route_drops_with_recover(self):
        session = make_session(2, noise=QUIET)
        session.calibrate()
        missing = session.route_names[1]
        del session.theta_init[missing]
        measurements, dropped = session.measure_bank(recover=True)
        assert dropped == [missing]
        assert set(measurements) == set(session.route_names) - {missing}


class TestBankPrimitives:
    def test_bank_wavefront_matches_per_chain(self):
        """Boundary-exact parity across chains with distinct mismatch."""
        chains = [CarryChain(length=64, nominal_bin_ps=2.8, seed=s)
                  for s in (7, 8, 9)]
        rows = []
        for chain in chains:
            rows.append(np.concatenate([
                np.linspace(-10.0, chain.total_delay_ps + 10.0, 200),
                chain._boundaries,  # exactly on every bin boundary
                [0.0, chain.total_delay_ps],
            ]))
        times = np.stack(rows)
        stacked = bank_wavefront_positions(chains, times)
        assert stacked.shape == times.shape
        for i, chain in enumerate(chains):
            np.testing.assert_array_equal(
                stacked[i], chain.wavefront_positions(times[i])
            )

    def test_bank_wavefront_shape_mismatch_rejected(self):
        chains = [CarryChain(length=64, nominal_bin_ps=2.8, seed=7)]
        with pytest.raises(SensorError):
            bank_wavefront_positions(chains, np.zeros((2, 5)))

    def test_bank_trace_means_match_per_route(self):
        rng = np.random.default_rng(11)
        words = rng.random((3, 10, 16, 64)) < 0.5
        for polarity in Polarity:
            stacked = bank_trace_mean_distances(words, polarity)
            per_route = np.stack([
                batch_trace_mean_distances(route_words, polarity)
                for route_words in words
            ])
            np.testing.assert_array_equal(stacked, per_route)


class TestFailureParity:
    def _uncalibratable_tdcs(self, seed_base):
        """Two healthy routes and a route whose transitions can never
        reach the chain inside the programmable phase range."""
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=22)
        good0, good1, bad = build_route_bank(
            device.grid, [1000.0, 2000.0, 10000.0],
            names=["good0", "good1", "bad"],
        )
        tight_phase = PhaseGenerator(step_ps=2.8, max_ps=504.0)
        tdcs = {}
        for i, route in enumerate((good0, good1)):
            tdcs[route.name] = TunableDualPolarityTdc(
                device, route, noise=LAB_NOISE, seed=seed_base + i
            )
        tdcs[bad.name] = TunableDualPolarityTdc(
            device, bad, noise=LAB_NOISE, seed=seed_base + 9,
            phase=tight_phase,
        )
        return tdcs

    def test_uncalibratable_route_parity(self):
        scalar_tdcs = self._uncalibratable_tdcs(40)
        scalar_results = {}
        scalar_error = None
        try:
            for name, tdc in scalar_tdcs.items():
                scalar_results[name] = find_theta_init(tdc)
        except (CalibrationError, SensorError) as exc:
            scalar_error = exc
        assert scalar_error is not None

        bank_tdcs = self._uncalibratable_tdcs(40)
        bank_results = {}
        with pytest.raises(type(scalar_error)) as excinfo:
            find_theta_init_bank(bank_tdcs, results=bank_results)
        assert str(excinfo.value) == str(scalar_error)
        # Same partial progress: the healthy routes preceding the
        # failure hold identical thetas either way.
        assert bank_results == scalar_results

    @pytest.mark.parametrize("seed", [7, 19])
    def test_calibration_glitch_degradation_parity(self, seed):
        """Under the sensor.calibrate fault site both orchestrations
        recover/degrade the identical set of routes and store the
        identical thetas: the site stream is consumed per route in bank
        order, retries included, on both paths."""
        spec = {"sensor.calibrate": FaultSpec(probability=0.7)}

        scalar_plan = FaultPlan(seed=seed, specs=spec)
        scalar = make_session(seed, noise=LAB_NOISE)
        with fault_plan(scalar_plan):
            theta_scalar = scalar.calibrate(calibration="scalar")
        scalar_unrecovered = registry.counters.get(
            "calibrations_unrecovered_total"
        )
        scalar_unrecovered = (
            scalar_unrecovered.value if scalar_unrecovered else 0.0
        )

        registry.reset()
        batched_plan = FaultPlan(seed=seed, specs=spec)
        batched = make_session(seed, noise=LAB_NOISE)
        with fault_plan(batched_plan):
            theta_batched = batched.calibrate(calibration="batched")
        batched_unrecovered = registry.counters.get(
            "calibrations_unrecovered_total"
        )
        batched_unrecovered = (
            batched_unrecovered.value if batched_unrecovered else 0.0
        )

        assert theta_scalar == theta_batched
        assert scalar_plan.fires == batched_plan.fires
        assert scalar_unrecovered == batched_unrecovered

    def test_capture_drop_degradation_parity(self):
        """Under the sensor.capture fault site the stacked bank pass
        drops exactly the routes the per-route retry loop would."""
        drift_only = NoiseModel(jitter_ps=0.0,
                                polarity_offset_sigma_ps=0.05,
                                offset_correlation=0.6)
        spec = {"sensor.capture": FaultSpec(probability=0.7)}

        scalar = make_session(13, noise=drift_only)
        scalar.calibrate(calibration="scalar")
        with fault_plan(FaultPlan(seed=99, specs=spec)):
            scalar_m, scalar_dropped = measure_with_recovery(
                scalar, kernel="scalar"
            )

        batched = make_session(13, noise=drift_only)
        batched.calibrate(calibration="batched")
        with fault_plan(FaultPlan(seed=99, specs=spec)):
            batched_m, batched_dropped = measure_with_recovery(
                batched, kernel="batched"
            )

        assert scalar_dropped == batched_dropped
        assert scalar_m == batched_m


class TestCalibrationKernelSelection:
    def test_default_is_batched(self):
        assert get_calibration_kernel() == "batched"

    def test_context_manager_restores(self):
        with calibration_kernel("scalar"):
            assert get_calibration_kernel() == "scalar"
        assert get_calibration_kernel() == "batched"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SensorError):
            set_calibration_kernel("bisect2")
        with pytest.raises(SensorError):
            make_session(1).calibrate(calibration="newton")
