"""Tests for the assembled TDC, its calibration, clocking and noise."""

import numpy as np
import pytest

from repro.errors import CalibrationError, SensorError
from repro.designs import build_route_bank
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.calibration import find_theta_init
from repro.sensor.clocking import PhaseGenerator
from repro.sensor.noise import CLOUD_NOISE, LAB_NOISE, NoiseModel, NoiseState
from repro.sensor.tdc import TunableDualPolarityTdc
from repro.sensor.trace import Polarity

QUIET = NoiseModel(jitter_ps=0.0, polarity_offset_sigma_ps=0.0,
                   offset_correlation=0.0)


@pytest.fixture
def tdc_setup():
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    route = build_route_bank(device.grid, [1000.0])[0]
    tdc = TunableDualPolarityTdc(device, route, noise=LAB_NOISE, seed=5)
    return device, route, tdc


class TestPhaseGenerator:
    def test_quantise_snaps_to_grid(self):
        phase = PhaseGenerator(step_ps=2.8, max_ps=1000.0)
        assert phase.quantise(10.0) == pytest.approx(11.2)

    def test_out_of_range_rejected(self):
        phase = PhaseGenerator(step_ps=2.8, max_ps=1000.0)
        with pytest.raises(SensorError):
            phase.quantise(-1.0)
        with pytest.raises(SensorError):
            phase.quantise(1001.0)

    def test_steps_down_sequence(self):
        phase = PhaseGenerator(step_ps=2.8, max_ps=1000.0)
        steps = phase.steps_down(100.8, 3)
        assert steps == pytest.approx([100.8, 98.0, 95.2])

    def test_steps_below_zero_rejected(self):
        phase = PhaseGenerator(step_ps=2.8, max_ps=1000.0)
        with pytest.raises(SensorError):
            phase.steps_down(2.8, 5)


class TestCalibration:
    def test_finds_centred_window(self, tdc_setup):
        _, _, tdc = tdc_setup
        theta = find_theta_init(tdc)
        trace_r = tdc.capture_trace(theta, Polarity.RISING)
        trace_f = tdc.capture_trace(theta, Polarity.FALLING)
        from repro.sensor.postprocess import trace_mean_distance

        centre = (trace_mean_distance(trace_r) + trace_mean_distance(trace_f)) / 2
        assert 12.0 <= centre <= 52.0

    def test_unreachable_route_raises(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=22)
        route = build_route_bank(device.grid, [10000.0])[0]
        tdc = TunableDualPolarityTdc(
            device, route, noise=QUIET, seed=1,
            phase=PhaseGenerator(step_ps=2.8, max_ps=500.0),
        )
        with pytest.raises((CalibrationError, SensorError)):
            find_theta_init(tdc, theta_start_ps=500.0)

    def test_theta_init_portable_across_same_part_devices(self):
        """Experiment 3's premise: calibrate once, reuse on any board."""
        theta_values = []
        for seed in (31, 32, 33):
            device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=seed)
            route = build_route_bank(device.grid, [5000.0])[0]
            tdc = TunableDualPolarityTdc(device, route, noise=QUIET, seed=seed)
            theta_values.append(find_theta_init(tdc))
        spread = max(theta_values) - min(theta_values)
        # Within a fraction of the 179 ps capture window.
        assert spread < 90.0


class TestMeasurement:
    def test_measurement_tracks_true_delta(self, tdc_setup):
        device, route, _ = tdc_setup
        tdc = TunableDualPolarityTdc(device, route, noise=QUIET, seed=9)
        theta = find_theta_init(tdc)
        measured = tdc.measure(theta).delta_ps
        truth = device.transition_delays(route).delta_ps
        assert measured == pytest.approx(truth, abs=1.5)

    def test_repeatability_under_lab_noise(self, tdc_setup):
        _, _, tdc = tdc_setup
        theta = find_theta_init(tdc)
        deltas = [tdc.measure(theta).delta_ps for _ in range(20)]
        assert np.std(deltas) < 0.8

    def test_jitter_increases_measurement_spread(self, tdc_setup):
        device, route, _ = tdc_setup
        quiet = TunableDualPolarityTdc(device, route, noise=QUIET, seed=3)
        loud = TunableDualPolarityTdc(
            device,
            route,
            noise=NoiseModel(jitter_ps=8.0, polarity_offset_sigma_ps=0.0,
                             offset_correlation=0.0),
            seed=3,
        )
        theta = find_theta_init(quiet)
        quiet_std = np.std([quiet.measure(theta).delta_ps for _ in range(25)])
        loud_std = np.std([loud.measure(theta).delta_ps for _ in range(25)])
        assert loud_std > quiet_std * 1.5

    def test_measurement_sees_bti_drift(self, tdc_setup):
        device, route, _ = tdc_setup
        tdc = TunableDualPolarityTdc(device, route, noise=QUIET, seed=9)
        theta = find_theta_init(tdc)
        before = tdc.measure(theta).delta_ps
        from repro.designs import build_target_design

        design = build_target_design(device.part, [route], [1], heater_dsps=0)
        device.load(design.bitstream)
        device.advance_hours(100.0, 333.15)
        device.wipe()
        after = tdc.measure(theta).delta_ps
        assert after - before > 0.5

    def test_invalid_trace_params_rejected(self, tdc_setup):
        _, _, tdc = tdc_setup
        with pytest.raises(SensorError):
            tdc.capture_trace(100.0, Polarity.RISING, samples=0)


class TestNoiseState:
    def test_quiet_model_is_exactly_zero(self):
        state = NoiseState(QUIET, seed=1)
        state.advance_epoch()
        assert state.polarity_offset_ps == 0.0
        assert state.sample_jitter_ps() == 0.0

    def test_offset_is_stationary(self):
        state = NoiseState(CLOUD_NOISE, seed=2)
        values = []
        for _ in range(500):
            state.advance_epoch()
            values.append(state.polarity_offset_ps)
        observed = np.std(values)
        assert observed == pytest.approx(
            CLOUD_NOISE.polarity_offset_sigma_ps, rel=0.4
        )
