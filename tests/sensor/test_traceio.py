"""Tests for raw-trace archives and their replay pipeline."""

import numpy as np
import pytest

from repro.errors import AnalysisError, SensorError
from repro.designs import build_route_bank
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor import LAB_NOISE, TunableDualPolarityTdc, find_theta_init
from repro.sensor.traceio import (
    MeasurementRecord,
    load_trace_archive,
    record_to_measurement,
    records_to_series,
    save_trace_archive,
)


@pytest.fixture(scope="module")
def recorded_run():
    """A short live run captured as raw records."""
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=61)
    route = build_route_bank(device.grid, [5000.0])[0]
    tdc = TunableDualPolarityTdc(device, route, noise=LAB_NOISE, seed=6)
    theta = find_theta_init(tdc)
    records, live_deltas = [], []
    for hour in range(4):
        measurement, rising, falling = tdc.measure_raw(theta)
        live_deltas.append(measurement.delta_ps)
        records.append(
            MeasurementRecord(
                route_name=route.name,
                nominal_delay_ps=route.nominal_delay_ps,
                hour=float(hour),
                theta_init_ps=theta,
                bin_ps=tdc.chain.nominal_bin_ps,
                rising=tuple(rising),
                falling=tuple(falling),
            )
        )
    return records, live_deltas


class TestReplayEquivalence:
    def test_replayed_delta_matches_live_pipeline(self, recorded_run):
        """The archived words reproduce the live measurement exactly --
        the property that makes real-hardware archives drop-in."""
        records, live_deltas = recorded_run
        for record, live in zip(records, live_deltas):
            assert record_to_measurement(record).delta_ps == pytest.approx(live)

    def test_records_to_series_orders_by_hour(self, recorded_run):
        records, live_deltas = recorded_run
        series = records_to_series(list(reversed(records)))
        assert series.hours == [0.0, 1.0, 2.0, 3.0]
        assert series.raw_delta_ps == pytest.approx(live_deltas)

    def test_mixed_routes_rejected(self, recorded_run):
        records, _ = recorded_run
        import dataclasses

        alien = dataclasses.replace(records[0], route_name="other")
        with pytest.raises(AnalysisError):
            records_to_series([records[0], alien])

    def test_empty_replay_rejected(self):
        with pytest.raises(AnalysisError):
            records_to_series([])


class TestArchiveRoundTrip:
    def test_full_fidelity(self, recorded_run, tmp_path):
        records, _ = recorded_run
        path = save_trace_archive(records, tmp_path / "run.npz")
        restored = load_trace_archive(path)
        assert len(restored) == len(records)
        for a, b in zip(records, restored):
            assert a.route_name == b.route_name
            assert a.hour == b.hour
            assert a.theta_init_ps == b.theta_init_ps
            for ta, tb in zip(a.rising, b.rising):
                assert np.array_equal(ta.words, tb.words)
                assert ta.theta_ps == tb.theta_ps

    def test_replay_after_round_trip_matches(self, recorded_run, tmp_path):
        records, live_deltas = recorded_run
        path = save_trace_archive(records, tmp_path / "run.npz")
        series = records_to_series(load_trace_archive(path))
        assert series.raw_delta_ps == pytest.approx(live_deltas)

    def test_missing_archive_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_trace_archive(tmp_path / "nope.npz")

    def test_empty_archive_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            save_trace_archive([], tmp_path / "x.npz")

    def test_record_requires_both_polarities(self, recorded_run):
        records, _ = recorded_run
        with pytest.raises(SensorError):
            MeasurementRecord(
                route_name="r", nominal_delay_ps=1000.0, hour=0.0,
                theta_init_ps=100.0, bin_ps=2.8,
                rising=records[0].rising, falling=(),
            )
