"""Tests for the ring-oscillator baseline sensor (Section 7)."""

import pytest

from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.ro import RingOscillatorSensor, build_ro_netlist
from repro.units import celsius_to_kelvin

AMBIENT = celsius_to_kelvin(60.0)


@pytest.fixture
def ro_setup():
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=41)
    # Pin the ambient so before/after comparisons isolate BTI from the
    # delay temperature coefficient.
    device.set_ambient(AMBIENT)
    route = build_route_bank(device.grid, [5000.0])[0]
    return device, route


class TestRoSensor:
    def test_frequency_reflects_period(self, ro_setup):
        device, route = ro_setup
        sensor = RingOscillatorSensor(device, route, seed=1)
        period_ns = sensor.period_ps() / 1000.0
        frequency = sensor.frequency_mhz(repeats=64)
        assert frequency == pytest.approx(1000.0 / period_ns, rel=0.05)

    def test_polarity_blindness(self, ro_setup):
        """The paper's criticism: the RO integrates rising and falling
        delays, so opposite-sign BTI shifts largely cancel -- while the
        TDC's dual-polarity output sees them clearly."""
        device, route = ro_setup
        sensor = RingOscillatorSensor(device, route, seed=2)
        period_before = sensor.period_ps()
        design = build_target_design(device.part, [route], [1], heater_dsps=0)
        device.load(design.bitstream)
        device.advance_hours(100.0, AMBIENT)
        device.wipe()
        period_after = sensor.period_ps()
        delta_period = period_after - period_before
        delta_polarity = abs(device.route_delta_ps(route))
        # The single-polarity shift dwarfs the period change it causes
        # relative to what a dual-polarity sensor separates out.
        assert delta_period == pytest.approx(delta_polarity, rel=0.2)
        # (The RO sees degradation but cannot attribute it to a value:
        # burn-0 produces the same period increase.)
        device2 = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=42)
        device2.set_ambient(AMBIENT)
        route2 = build_route_bank(device2.grid, [5000.0])[0]
        sensor2 = RingOscillatorSensor(device2, route2, seed=2)
        before2 = sensor2.period_ps()
        design2 = build_target_design(device2.part, [route2], [0], heater_dsps=0)
        device2.load(design2.bitstream)
        device2.advance_hours(100.0, AMBIENT)
        device2.wipe()
        burn0_shift = sensor2.period_ps() - before2
        assert burn0_shift > 0.0  # same sign as burn-1: indistinguishable

    def test_netlist_contains_combinational_loop(self, ro_setup):
        import networkx as nx

        _, route = ro_setup
        netlist = build_ro_netlist("probe", route)
        cycles = list(nx.simple_cycles(netlist.combinational_graph()))
        assert cycles

    def test_invalid_gate_time_rejected(self, ro_setup):
        device, route = ro_setup
        from repro.errors import SensorError

        with pytest.raises(SensorError):
            RingOscillatorSensor(device, route, counter_gate_ns=0.0)
        with pytest.raises(SensorError):
            RingOscillatorSensor(device, route).frequency_mhz(repeats=0)
