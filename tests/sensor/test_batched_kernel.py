"""Scalar-vs-batched capture kernel equivalence.

The batched kernel is the production measurement path; the scalar
per-word loop stays as the reference implementation.  Two pins hold the
kernels together:

* **Bit-exact** for jitter-free noise models: the batched kernel draws
  its metastability uniforms in one C-order ``random`` call, which
  consumes the generator stream in exactly the per-word order of the
  scalar path, so every capture word and every ``Measurement`` field is
  identical from identical seeds.
* **Distributional** once per-sample jitter is on: the batched kernel
  draws the jitter as one matrix *before* the uniforms, while the
  scalar path interleaves one ziggurat ``normal`` per word between
  ``random`` calls on the same shared stream.  The draws cannot be
  reordered without changing their values (the ziggurat consumes a
  variable number of raw words per normal), so the kernels realise
  different -- but identically distributed -- noise; over many seeds the
  delta estimates must agree in mean and spread.
"""

import numpy as np
import pytest

from repro.designs import build_route_bank
from repro.errors import SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.capture import CaptureBank
from repro.sensor.carry_chain import CarryChain
from repro.sensor.noise import LAB_NOISE, NoiseModel
from repro.sensor.postprocess import (
    batch_delta_ps,
    batch_hamming_distances,
    batch_trace_mean_distances,
    delta_ps_from_traces,
    trace_mean_distance,
)
from repro.sensor.tdc import (
    TunableDualPolarityTdc,
    capture_kernel,
    get_capture_kernel,
    set_capture_kernel,
)
from repro.sensor.trace import Polarity

#: Slow polarity offset on, per-sample jitter off: every RNG draw of a
#: measurement happens in the same stream order under both kernels.
DRIFT_ONLY = NoiseModel(
    jitter_ps=0.0, polarity_offset_sigma_ps=0.05, offset_correlation=0.6
)

THETA = 1200.0


def make_tdc(seed, noise=DRIFT_ONLY):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    route = build_route_bank(device.grid, [1000.0])[0]
    return TunableDualPolarityTdc(device, route, noise=noise, seed=seed)


class TestWavefrontPositions:
    def test_matches_scalar_everywhere(self):
        chain = CarryChain(length=64, nominal_bin_ps=2.8, seed=7)
        times = np.concatenate([
            np.linspace(-10.0, chain.total_delay_ps + 10.0, 500),
            chain._boundaries,  # exactly on every bin boundary
            [0.0, chain.total_delay_ps],
        ])
        batched = chain.wavefront_positions(times)
        scalar = np.array(
            [chain.wavefront_position(float(t)) for t in times]
        )
        assert batched.shape == times.shape
        np.testing.assert_array_equal(batched, scalar)

    def test_preserves_input_shape(self):
        chain = CarryChain(length=64, nominal_bin_ps=2.8, seed=7)
        times = np.full((3, 5), 90.0)
        assert chain.wavefront_positions(times).shape == (3, 5)


class TestCaptureBatch:
    def test_matches_sequential_scalar_draws(self):
        positions = np.linspace(0.0, 64.0, 12).reshape(3, 4)
        for polarity in Polarity:
            scalar_bank = CaptureBank(length=64, seed=11)
            batched_bank = CaptureBank(length=64, seed=11)
            scalar_words = np.array([
                [scalar_bank.capture(float(p), polarity) for p in row]
                for row in positions
            ])
            batched_words = batched_bank.capture_batch(positions, polarity)
            np.testing.assert_array_equal(batched_words, scalar_words)

    def test_out_of_range_rejected(self):
        bank = CaptureBank(length=64, seed=1)
        with pytest.raises(SensorError):
            bank.capture_batch(np.array([[1.0, 65.0]]), Polarity.RISING)
        with pytest.raises(SensorError):
            bank.capture_batch(np.array([-0.5]), Polarity.FALLING)


class TestBatchPostprocess:
    def test_batch_matches_per_trace_pipeline(self):
        rng = np.random.default_rng(3)
        rising_words = rng.random((10, 16, 64)) < 0.4
        falling_words = rng.random((10, 16, 64)) < 0.6
        from repro.sensor.trace import Trace

        rising = [Trace(Polarity.RISING, 100.0, w) for w in rising_words]
        falling = [Trace(Polarity.FALLING, 100.0, w) for w in falling_words]
        np.testing.assert_array_equal(
            batch_trace_mean_distances(rising_words, Polarity.RISING),
            [trace_mean_distance(t) for t in rising],
        )
        assert batch_delta_ps(rising_words, falling_words, 2.8) == (
            delta_ps_from_traces(rising, falling, 2.8)
        )

    def test_batch_hamming_polarity(self):
        words = np.zeros((2, 3, 8), dtype=bool)
        words[..., :5] = True
        assert (batch_hamming_distances(words, Polarity.RISING) == 5).all()
        assert (batch_hamming_distances(words, Polarity.FALLING) == 3).all()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SensorError):
            batch_hamming_distances(np.zeros((2, 8)), Polarity.RISING)
        with pytest.raises(SensorError):
            batch_trace_mean_distances(
                np.zeros((2, 8), dtype=bool), Polarity.RISING
            )
        with pytest.raises(SensorError):
            batch_delta_ps(
                np.zeros((1, 2, 8), dtype=bool),
                np.zeros((1, 2, 8), dtype=bool),
                0.0,
            )


class TestKernelEquivalence:
    def test_bit_identical_without_jitter(self):
        """Same seed => identical Measurement and identical raw words."""
        for seed in (5, 17, 123):
            scalar_m, scalar_r, scalar_f = make_tdc(seed).measure_raw(
                THETA, kernel="scalar"
            )
            batched_m, batched_r, batched_f = make_tdc(seed).measure_raw(
                THETA, kernel="batched"
            )
            assert batched_m == scalar_m
            for a, b in zip(scalar_r + scalar_f, batched_r + batched_f):
                assert a.theta_ps == b.theta_ps
                assert np.array_equal(a.words, b.words)

    def test_capture_trace_bit_identical_without_jitter(self):
        scalar = make_tdc(9).capture_trace(THETA, Polarity.RISING,
                                           kernel="scalar")
        batched = make_tdc(9).capture_trace(THETA, Polarity.RISING,
                                            kernel="batched")
        np.testing.assert_array_equal(scalar.words, batched.words)

    def test_distributional_equivalence_with_jitter(self):
        """With jitter the draw order differs by design (matrix-first);
        over >= 200 seeds the delta distributions must coincide."""
        n_seeds = 200
        scalar_deltas = np.array([
            make_tdc(seed, LAB_NOISE).measure(THETA, kernel="scalar").delta_ps
            for seed in range(n_seeds)
        ])
        batched_deltas = np.array([
            make_tdc(seed, LAB_NOISE).measure(THETA, kernel="batched").delta_ps
            for seed in range(n_seeds)
        ])
        # Means agree within 4 standard errors; spreads within 25%.
        stderr = scalar_deltas.std() / np.sqrt(n_seeds)
        assert abs(scalar_deltas.mean() - batched_deltas.mean()) < 4 * stderr
        assert batched_deltas.std() == pytest.approx(
            scalar_deltas.std(), rel=0.25
        )

    def test_trace_metadata_matches(self):
        measurement, rising, falling = make_tdc(4).measure_raw(THETA)
        assert len(rising) == len(falling) == 10
        thetas = [t.theta_ps for t in rising]
        assert thetas == sorted(thetas, reverse=True)
        for trace in rising + falling:
            assert trace.words.shape == (16, 64)
        assert measurement.delta_ps == pytest.approx(
            (measurement.rising_distance - measurement.falling_distance)
            * 2.8
        )


class TestKernelSelection:
    def test_default_is_batched(self):
        assert get_capture_kernel() == "batched"

    def test_context_manager_restores(self):
        with capture_kernel("scalar"):
            assert get_capture_kernel() == "scalar"
        assert get_capture_kernel() == "batched"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SensorError):
            set_capture_kernel("simd")
        with pytest.raises(SensorError):
            make_tdc(1).measure_raw(THETA, kernel="nope")

    def test_invalid_batch_params_rejected(self):
        tdc = make_tdc(1)
        with pytest.raises(SensorError):
            tdc.capture_words([THETA], Polarity.RISING, samples=0)
        with pytest.raises(SensorError):
            tdc.capture_words([], Polarity.RISING)
