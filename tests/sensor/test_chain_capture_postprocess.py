"""Tests for the carry chain, capture registers and post-processing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SensorError
from repro.sensor.capture import CaptureBank
from repro.sensor.carry_chain import CarryChain
from repro.sensor.postprocess import (
    binary_hamming_distance,
    delta_ps_from_traces,
    trace_mean_distance,
    traces_mean_distance,
)
from repro.sensor.trace import Polarity, Trace


class TestCarryChain:
    def test_ideal_chain_is_linear(self):
        chain = CarryChain(length=64, nominal_bin_ps=2.8, mismatch_sigma=0.0,
                           seed=1)
        assert chain.wavefront_position(28.0) == pytest.approx(10.0)
        assert chain.total_delay_ps == pytest.approx(64 * 2.8)

    def test_position_clamps_at_ends(self):
        chain = CarryChain(length=64, nominal_bin_ps=2.8, seed=1)
        assert chain.wavefront_position(-5.0) == 0.0
        assert chain.wavefront_position(1e9) == 64.0

    def test_mismatch_perturbs_but_preserves_monotonicity(self):
        chain = CarryChain(length=64, nominal_bin_ps=2.8, seed=2)
        times = np.linspace(0.0, chain.total_delay_ps, 200)
        positions = [chain.wavefront_position(float(t)) for t in times]
        assert positions == sorted(positions)

    def test_chains_differ_across_seeds(self):
        a = CarryChain(64, 2.8, seed=1)
        b = CarryChain(64, 2.8, seed=2)
        assert a.wavefront_position(90.0) != b.wavefront_position(90.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(SensorError):
            CarryChain(0, 2.8)
        with pytest.raises(SensorError):
            CarryChain(64, -1.0)


class TestCaptureBank:
    def test_rising_word_counts_match_position(self):
        bank = CaptureBank(length=64, seed=3)
        word = bank.capture(30.0, Polarity.RISING)
        # Registers well behind the wavefront read 1, ahead read 0.
        assert word[:29].all()
        assert not word[32:].any()

    def test_falling_word_is_complement_shape(self):
        bank = CaptureBank(length=64, seed=3)
        word = bank.capture(30.0, Polarity.FALLING)
        assert not word[:29].any()
        assert word[32:].all()

    def test_metastability_at_boundary(self):
        bank = CaptureBank(length=64, seed=4)
        # The register exactly at the wavefront resolves randomly.
        boundary_bits = [
            bool(bank.capture(30.0, Polarity.RISING)[30]) for _ in range(200)
        ]
        assert any(boundary_bits) and not all(boundary_bits)

    def test_out_of_range_position_rejected(self):
        bank = CaptureBank(length=64, seed=1)
        with pytest.raises(SensorError):
            bank.capture(65.0, Polarity.RISING)


class TestPostprocess:
    def test_hamming_rising_counts_ones(self):
        word = np.zeros(64, dtype=bool)
        word[:39] = True
        assert binary_hamming_distance(word, Polarity.RISING) == 39

    def test_hamming_falling_counts_zeros(self):
        word = np.ones(64, dtype=bool)
        word[:22] = False
        assert binary_hamming_distance(word, Polarity.FALLING) == 22

    def test_figure3_example_sequence(self):
        """The paper's worked example: distances 39, 22, 38, 22."""
        words = []
        for count, polarity in [(39, Polarity.RISING), (22, Polarity.FALLING),
                                (38, Polarity.RISING), (22, Polarity.FALLING)]:
            word = np.zeros(64, dtype=bool)
            if polarity is Polarity.RISING:
                word[:count] = True
            else:
                word[count:] = True
            words.append((word, polarity))
        distances = [binary_hamming_distance(w, p) for w, p in words]
        assert distances == [39, 22, 38, 22]

    def test_trace_mean(self):
        words = np.zeros((4, 64), dtype=bool)
        for i, count in enumerate((10, 12, 11, 13)):
            words[i, :count] = True
        trace = Trace(polarity=Polarity.RISING, theta_ps=100.0, words=words)
        assert trace_mean_distance(trace) == pytest.approx(11.5)

    def test_delta_conversion_sign(self):
        """Slower falling transition -> smaller falling distance ->
        positive delta (falling minus rising delay)."""
        rising_words = np.zeros((2, 64), dtype=bool)
        rising_words[:, :40] = True
        falling_words = np.ones((2, 64), dtype=bool)
        falling_words[:, :36] = False
        rising = [Trace(Polarity.RISING, 100.0, rising_words)]
        falling = [Trace(Polarity.FALLING, 100.0, falling_words)]
        delta = delta_ps_from_traces(rising, falling, bin_ps=2.8)
        assert delta == pytest.approx((40 - 36) * 2.8)

    def test_empty_traces_rejected(self):
        with pytest.raises(SensorError):
            traces_mean_distance([])

    def test_invalid_word_rejected(self):
        with pytest.raises(SensorError):
            binary_hamming_distance(np.zeros((2, 2), dtype=bool), Polarity.RISING)
        with pytest.raises(SensorError):
            binary_hamming_distance(np.zeros(4, dtype=float), Polarity.RISING)

    @given(count=st.integers(min_value=0, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_hamming_inverse_words_sum_to_length(self, count):
        word = np.zeros(64, dtype=bool)
        word[:count] = True
        rising = binary_hamming_distance(word, Polarity.RISING)
        falling = binary_hamming_distance(word, Polarity.FALLING)
        assert rising + falling == 64
