"""The discrete-event scheduler's determinism contract."""

import pytest

from repro.cloud.events import EventKind, EventLoop
from repro.errors import CloudError


class FakeClock:
    def __init__(self):
        self.clock_hours = 0.0
        self.advances = []

    def advance(self, hours):
        self.clock_hours += hours
        self.advances.append(hours)


def _recorder(log, tag):
    def handler(loop, event):
        log.append((tag, loop.now_hours))

    return handler


class TestOrdering:
    def test_time_order(self):
        clock = FakeClock()
        loop = EventLoop(clock)
        log = []
        loop.schedule(5.0, EventKind.RENT, _recorder(log, "b"))
        loop.schedule(1.0, EventKind.RENT, _recorder(log, "a"))
        loop.schedule(9.0, EventKind.RENT, _recorder(log, "c"))
        assert loop.run() == 3
        assert [t for t, _ in log] == ["a", "b", "c"]
        assert clock.clock_hours == 9.0

    def test_same_time_kind_priority(self):
        """At one timestamp a release precedes a wipe precedes a rent:
        the released board is re-rentable in the same tick."""
        clock = FakeClock()
        loop = EventLoop(clock)
        log = []
        loop.schedule(2.0, EventKind.SCAN, _recorder(log, "scan"))
        loop.schedule(2.0, EventKind.RENT, _recorder(log, "rent"))
        loop.schedule(2.0, EventKind.RELEASE, _recorder(log, "release"))
        loop.schedule(2.0, EventKind.WIPE, _recorder(log, "wipe"))
        loop.schedule(2.0, EventKind.PREEMPT, _recorder(log, "preempt"))
        loop.run()
        assert [t for t, _ in log] == [
            "release", "wipe", "rent", "preempt", "scan"
        ]
        # One clock advance for the shared timestamp, not five.
        assert clock.advances == [2.0]

    def test_same_time_same_kind_fifo_by_seq(self):
        loop = EventLoop(FakeClock())
        log = []
        for i in range(5):
            loop.schedule(1.0, EventKind.RENT, _recorder(log, i))
        loop.run()
        assert [t for t, _ in log] == [0, 1, 2, 3, 4]


class TestControl:
    def test_cancel(self):
        loop = EventLoop(FakeClock())
        log = []
        keep = loop.schedule(1.0, EventKind.RENT, _recorder(log, "keep"))
        drop = loop.schedule(2.0, EventKind.RENT, _recorder(log, "drop"))
        loop.cancel(drop)
        assert loop.run() == 1
        assert log == [("keep", 1.0)]
        assert keep.cancelled is False

    def test_until_hours_stops_and_advances(self):
        clock = FakeClock()
        loop = EventLoop(clock)
        log = []
        loop.schedule(1.0, EventKind.RENT, _recorder(log, "in"))
        loop.schedule(50.0, EventKind.RENT, _recorder(log, "out"))
        assert loop.run(until_hours=10.0) == 1
        assert clock.clock_hours == 10.0  # advanced the rest of the way
        assert len(loop) == 1  # the late event still queued
        assert loop.run() == 1
        assert log[-1] == ("out", 50.0)

    def test_max_events(self):
        loop = EventLoop(FakeClock())
        log = []
        for i in range(4):
            loop.schedule(float(i + 1), EventKind.RENT, _recorder(log, i))
        assert loop.run(max_events=2) == 2
        assert loop.run() == 2

    def test_past_schedule_rejected(self):
        clock = FakeClock()
        clock.clock_hours = 5.0
        loop = EventLoop(clock)
        with pytest.raises(CloudError):
            loop.schedule(4.0, EventKind.RENT, lambda lp, ev: None)

    def test_handler_may_schedule_more(self):
        clock = FakeClock()
        loop = EventLoop(clock)
        log = []

        def chain(lp, event):
            log.append(lp.now_hours)
            if event.data["n"] > 0:
                lp.schedule(lp.now_hours + 1.0, EventKind.RENT, chain,
                            n=event.data["n"] - 1)

        loop.schedule(1.0, EventKind.RENT, chain, n=3)
        assert loop.run() == 4
        assert log == [1.0, 2.0, 3.0, 4.0]
