"""The sorted free pool must match the legacy linear scan exactly.

``Region`` keeps its free list ordered by ``released_at_hours`` with a
bisected eligibility window and O(1) end pops.  These micro-tests pin
it against a naive reimplementation of the old semantics (linear scan,
first-of-the-maximal ties for LIFO, insertion-order RANDOM indexing)
under randomized rent/release/advance schedules.
"""

import numpy as np
import pytest

from repro.errors import CapacityError, TenancyError
from repro.cloud.allocation import AllocationOrder, AllocationPolicy
from repro.cloud.fleet import build_fleet
from repro.cloud.provider import CloudProvider
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS


class NaivePool:
    """The pre-optimisation free pool: a list and linear scans."""

    def __init__(self, device_ids, holdback):
        self.free = [(d, float("-inf")) for d in device_ids]
        self.holdback = holdback

    def eligible(self, now):
        cutoff = now - self.holdback
        return [
            i for i, (_, at) in enumerate(self.free) if at <= cutoff
        ]

    def allocate(self, now, order, rng):
        idx = self.eligible(now)
        if not idx:
            return None
        if order is AllocationOrder.LIFO:
            j = max(idx, key=lambda i: self.free[i][1])
            # ``max`` keeps the *first* of equal keys, matching the old
            # linear scan's tie behaviour.
        elif order is AllocationOrder.FIFO:
            j = min(idx, key=lambda i: self.free[i][1])
        else:
            j = idx[int(rng.integers(0, len(idx)))]
        device, _ = self.free.pop(j)
        return device

    def release(self, device, now):
        self.free.append((device, now))

    def retire(self, device):
        for i, (d, _) in enumerate(self.free):
            if d == device:
                self.free.pop(i)
                return
        raise AssertionError(f"device {device} not free in naive pool")


@pytest.mark.parametrize("order", list(AllocationOrder))
@pytest.mark.parametrize("holdback", [0.0, 6.0])
@pytest.mark.parametrize("seed", [1, 17])
def test_pool_matches_naive_scan(order, holdback, seed):
    policy = AllocationPolicy(order=order, holdback_hours=holdback)
    provider = CloudProvider(seed=seed)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 8, seed=seed)
    provider.create_region("r", fleet, policy=policy)
    region = provider.region("r")
    naive = NaivePool([d.device_id for d in fleet], holdback)
    # The region consumes allocation randomness from the provider's
    # root stream; mirror it by replaying an identical generator.
    mirror_rng = np.random.default_rng(seed)
    region_rng = np.random.default_rng(seed)

    schedule_rng = np.random.default_rng(seed + 1000)
    held = []
    for _ in range(200):
        move = schedule_rng.random()
        if move < 0.45:
            now = provider.clock_hours
            expected = naive.allocate(now, order, mirror_rng)
            try:
                device = region.allocate(now, region_rng)
            except CapacityError:
                device = None
            if expected is None:
                assert device is None
            else:
                assert device is not None
                assert device.device_id == expected
                held.append(device)
        elif move < 0.75 and held:
            device = held.pop(0)
            region._return_device(device, provider.clock_hours)
            naive.release(device.device_id, provider.clock_hours)
        else:
            provider.advance(float(schedule_rng.uniform(0.1, 4.0)))
        assert region.available_count(provider.clock_hours) == len(
            naive.eligible(provider.clock_hours)
        )


def test_lifo_tie_takes_first_inserted():
    """Boards released at the same instant: LIFO hands out the one
    returned first (the old ``max`` scan's tie rule)."""
    provider = CloudProvider(seed=3)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 3, seed=3)
    provider.create_region("r", fleet)
    region = provider.region("r")
    a = provider.rent("r", "t1")
    b = provider.rent("r", "t2")
    provider.advance(1.0)
    provider.release(a)
    provider.release(b)  # same clock tick
    nxt = provider.rent("r", "t3")
    assert nxt.device is a.device


def test_holdback_boundary_is_inclusive():
    """A board becomes eligible at exactly release + holdback."""
    policy = AllocationPolicy(holdback_hours=5.0)
    provider = CloudProvider(seed=4)
    provider.create_region(
        "r", build_fleet(VIRTEX_ULTRASCALE_PLUS, 1, seed=4), policy=policy
    )
    region = provider.region("r")
    instance = provider.rent("r", "t")
    provider.advance(2.0)
    provider.release(instance)
    assert region.available_count(provider.clock_hours) == 0
    provider.advance(5.0)  # exactly the holdback
    assert region.available_count(provider.clock_hours) == 1
    assert provider.rent("r", "t2").device is instance.device


@pytest.mark.parametrize("order", list(AllocationOrder))
@pytest.mark.parametrize("holdback", [0.0, 6.0])
@pytest.mark.parametrize("seed", [2, 23])
def test_retirement_interleaved_matches_naive_scan(order, holdback, seed):
    """Hard-failure retirement mixed into rent/release churn: hand-out
    order (including LIFO/FIFO/RANDOM tie semantics and holdback
    eligibility) must match the naive pool with the same device
    removed."""
    policy = AllocationPolicy(order=order, holdback_hours=holdback)
    provider = CloudProvider(seed=seed)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 12, seed=seed)
    provider.create_region("r", fleet, policy=policy)
    region = provider.region("r")
    by_id = {d.device_id: d for d in fleet}
    naive = NaivePool([d.device_id for d in fleet], holdback)
    mirror_rng = np.random.default_rng(seed)
    region_rng = np.random.default_rng(seed)

    schedule_rng = np.random.default_rng(seed + 2000)
    held = []
    retired = 0
    for _ in range(300):
        move = schedule_rng.random()
        if move < 0.40:
            now = provider.clock_hours
            expected = naive.allocate(now, order, mirror_rng)
            try:
                device = region.allocate(now, region_rng)
            except CapacityError:
                device = None
            if expected is None:
                assert device is None
            else:
                assert device is not None
                assert device.device_id == expected
                held.append(device)
        elif move < 0.70 and held:
            device = held.pop(0)
            region._return_device(device, provider.clock_hours)
            naive.release(device.device_id, provider.clock_hours)
        elif move < 0.85 and naive.free and retired < 8:
            # Retire a random *free* board (held-back ones included --
            # a hard failure does not wait out the holdback).
            k = int(schedule_rng.integers(0, len(naive.free)))
            victim_id = naive.free[k][0]
            region.retire_device(by_id[victim_id])
            naive.retire(victim_id)
            retired += 1
        else:
            provider.advance(float(schedule_rng.uniform(0.1, 4.0)))
        assert region.available_count(provider.clock_hours) == len(
            naive.eligible(provider.clock_hours)
        )
        # Held boards were taken via ``allocate`` directly, so
        # ``devices()`` sees exactly the naive free list.
        assert len(region.devices()) == len(naive.free)


def test_mass_retirement_compacts_to_survivors():
    """Retiring most of the fleet leaves exactly the survivors, in a
    pool a fresh region over those boards would also produce."""
    provider = CloudProvider(seed=6)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 10, seed=6)
    provider.create_region("r", fleet)
    region = provider.region("r")
    for device in fleet[:8]:
        region.retire_device(device)
    survivors = {d.device_id for d in fleet[8:]}
    assert {d.device_id for d in region.devices()} == survivors
    assert region.available_count(provider.clock_hours) == 2
    first = provider.rent("r", "t")
    assert first.device.device_id in survivors


def test_retire_rented_device_raises():
    provider = CloudProvider(seed=7)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 2, seed=7)
    provider.create_region("r", fleet)
    region = provider.region("r")
    instance = provider.rent("r", "t")
    with pytest.raises(TenancyError, match="not in the free pool"):
        region.retire_device(instance.device)
    # Released again, the same board retires cleanly.
    provider.release(instance)
    region.retire_device(instance.device)
    assert len(region.devices()) == 1


def test_retirement_survives_front_pop_compaction():
    """Retiring out of a pool whose lazy front has wrapped many times
    (the FIFO compaction path) must not resurrect popped entries."""
    policy = AllocationPolicy(order=AllocationOrder.FIFO)
    provider = CloudProvider(seed=8)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 6, seed=8)
    provider.create_region("r", fleet, policy=policy)
    region = provider.region("r")
    for _ in range(120):
        instance = provider.rent("r", "t")
        provider.advance(0.5)
        provider.release(instance)
    region.retire_device(fleet[0])
    region.retire_device(fleet[3])
    remaining = {d.device_id for d in fleet} - {
        fleet[0].device_id, fleet[3].device_id
    }
    assert {d.device_id for d in region.devices()} == remaining
    assert region.available_count(provider.clock_hours) == 4


def test_outage_window_refuses_allocations():
    """The eager twin of the fleet plan's OutageWindow: admission
    raises CapacityError inside the window, recovers after."""
    policy = AllocationPolicy(outage_windows=((5.0, 10.0),))
    provider = CloudProvider(seed=9)
    provider.create_region(
        "r", build_fleet(VIRTEX_ULTRASCALE_PLUS, 2, seed=9), policy=policy
    )
    assert provider.rent("r", "t1").device is not None
    provider.advance(6.0)
    with pytest.raises(CapacityError, match="dark"):
        provider.rent("r", "t2")
    provider.advance(4.0)  # now 10.0: window is half-open
    assert provider.rent("r", "t3").device is not None


def test_outage_window_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="outage window"):
        AllocationPolicy(outage_windows=((10.0, 5.0),))
    with pytest.raises(ConfigurationError, match="pairs"):
        AllocationPolicy(outage_windows=("soon",))


def test_front_pop_compaction_keeps_pool_consistent():
    """FIFO's lazy front pops periodically compact; the live window
    must survive many wrap-arounds."""
    policy = AllocationPolicy(order=AllocationOrder.FIFO)
    provider = CloudProvider(seed=5)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 6, seed=5)
    provider.create_region("r", fleet, policy=policy)
    region = provider.region("r")
    for _ in range(150):
        instance = provider.rent("r", "t")
        provider.advance(0.5)
        provider.release(instance)
    assert region.available_count(provider.clock_hours) == 6
    assert len(region.devices()) == 6
    assert len({d.device_id for d in region.devices()}) == 6
