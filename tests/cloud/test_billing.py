"""Tests for the tenancy billing meter."""

import pytest

from repro.errors import CloudError
from repro.cloud.billing import BillingMeter, F1_INSTANCE_HOURLY_USD
from repro.cloud.fleet import build_fleet
from repro.cloud.provider import CloudProvider
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS


def metered_provider(fleet_size=2):
    provider = CloudProvider(seed=1)
    provider.create_region(
        "r", build_fleet(VIRTEX_ULTRASCALE_PLUS, fleet_size, seed=2)
    )
    return provider, BillingMeter.attach(provider)


class TestMeter:
    def test_charges_wall_clock_hours(self):
        provider, meter = metered_provider()
        instance = provider.rent("r", "alice")
        provider.advance(10.0)
        provider.release(instance)
        assert meter.hours_for("alice") == pytest.approx(10.0)
        assert meter.total_for("alice") == pytest.approx(
            10.0 * F1_INSTANCE_HOURLY_USD
        )

    def test_open_tenancies_accrue(self):
        provider, meter = metered_provider()
        provider.rent("r", "alice")
        provider.advance(4.0)
        assert meter.hours_for("alice") == pytest.approx(4.0)

    def test_tenants_are_separated(self):
        provider, meter = metered_provider()
        a = provider.rent("r", "alice")
        b = provider.rent("r", "bob")
        provider.advance(2.0)
        provider.release(a)
        provider.advance(3.0)
        provider.release(b)
        assert meter.hours_for("alice") == pytest.approx(2.0)
        assert meter.hours_for("bob") == pytest.approx(5.0)

    def test_flash_attack_pays_for_the_whole_region(self):
        """Assumption 2's cost: exhausting the region multiplies the
        attacker's bill by the fleet size."""
        from repro.cloud.colocation import FlashAttack

        provider, meter = metered_provider(fleet_size=3)
        flash = FlashAttack(provider, "r", tenant="attacker")
        flash.acquire_all()
        provider.advance(25.0)
        flash.release_except(None)
        assert meter.hours_for("attacker") == pytest.approx(75.0)
        assert meter.total_for("attacker") == pytest.approx(
            75.0 * F1_INSTANCE_HOURLY_USD
        )

    def test_ledger_records_completed_charges(self):
        provider, meter = metered_provider()
        instance = provider.rent("r", "alice")
        provider.advance(1.0)
        provider.release(instance)
        ledger = meter.ledger()
        assert len(ledger) == 1
        assert ledger[0].tenant == "alice"
        assert ledger[0].amount_usd == pytest.approx(F1_INSTANCE_HOURLY_USD)

    def test_invalid_rate_rejected(self):
        provider, _ = metered_provider()
        with pytest.raises(CloudError):
            BillingMeter.attach(provider, hourly_usd=0.0)


class TestLifecycleEdges:
    def test_zero_hour_rental_lands_in_ledger(self):
        """A rent-probe-release inside one tick (the marketplace
        scanner's pattern) is a real, zero-dollar ledger entry."""
        provider, meter = metered_provider()
        instance = provider.rent("r", "scanner")
        provider.release(instance)
        ledger = meter.ledger()
        assert len(ledger) == 1
        assert ledger[0].hours == 0.0
        assert ledger[0].amount_usd == 0.0
        assert meter.total_for("scanner") == 0.0

    def test_release_then_rent_same_tick_bills_both(self):
        """The reallocation race: two tenancies of one board in one
        tick produce two separate charges."""
        provider, meter = metered_provider()
        first = provider.rent("r", "victim")
        provider.advance(3.0)
        provider.release(first)
        second = provider.rent("r", "attacker")  # same clock tick
        assert second.device is first.device
        provider.advance(2.0)
        provider.release(second)
        assert meter.hours_for("victim") == pytest.approx(3.0)
        assert meter.hours_for("attacker") == pytest.approx(2.0)
        assert len(meter.ledger()) == 2

    def test_holdback_wait_is_not_billed(self):
        """Hold-back quarantine time belongs to the provider, not the
        next tenant."""
        from repro.cloud.allocation import AllocationPolicy

        provider = CloudProvider(seed=7)
        provider.create_region(
            "r", build_fleet(VIRTEX_ULTRASCALE_PLUS, 1, seed=7),
            policy=AllocationPolicy(holdback_hours=4.0),
        )
        meter = BillingMeter.attach(provider)
        first = provider.rent("r", "a")
        provider.advance(1.0)
        provider.release(first)
        provider.advance(4.0)  # exactly the holdback
        second = provider.rent("r", "b")
        provider.advance(2.0)
        provider.release(second)
        assert meter.hours_for("a") == pytest.approx(1.0)
        assert meter.hours_for("b") == pytest.approx(2.0)
