"""Lazy aging must be bit-identical to the eager walker.

The provider's lazy path records clock intervals on a region timeline
and replays them on first touch; these tests pin that the replay
produces *exactly* the state the synchronous walker produces -- same
``sim_hours``, same effective age, same per-route remanence, same
transition delays -- across randomized rent/load/run/release/wipe
schedules driven through the event loop.
"""

import numpy as np
import pytest

from repro.cloud.events import EventKind, EventLoop
from repro.cloud.fleet import build_fleet
from repro.cloud.provider import CloudProvider, RegionTimeline
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.physics.aging import CLOUD_PART
from repro.physics.pool_array import SegmentBtiArray


def _make_provider(seed, lazy, fleet_size=4):
    provider = CloudProvider(seed=seed, lazy_aging=lazy)
    fleet = build_fleet(
        VIRTEX_ULTRASCALE_PLUS, fleet_size, wear=CLOUD_PART, seed=seed
    )
    provider.create_region("r", fleet)
    return provider


def _device_state(provider, routes):
    """Every observable analog quantity, per device, after a sync."""
    provider.sync_all()
    state = []
    for device in sorted(
        provider.region("r").devices(), key=lambda d: d.device_id
    ):
        delays = device.transition_delays(routes[0])
        state.append({
            "sim_hours": device.sim_hours,
            "age": device.effective_age_hours,
            "deltas": [device.route_delta_ps(r) for r in routes],
            "rising": delays.rising_ps,
            "falling": delays.falling_ps,
        })
    return state


def _run_schedule(provider, routes, design, seed):
    """A randomized tenancy schedule, replayed via the event loop."""
    rng = np.random.default_rng(seed)
    loop = EventLoop(provider)
    held = []

    def do_rent(lp, event):
        try:
            instance = provider.rent("r", event.data["tenant"])
        except Exception:
            return
        held.append(instance)
        if event.data["load"]:
            instance.load_image(design.bitstream)

    def do_release(lp, event):
        if held:
            provider.release(held.pop(0))

    t = 0.0
    for i in range(24):
        t += float(rng.uniform(0.5, 30.0))
        if rng.random() < 0.55:
            loop.schedule(t, EventKind.RENT, do_rent,
                          tenant=f"t{i}", load=bool(rng.random() < 0.7))
        else:
            loop.schedule(t, EventKind.RELEASE, do_release)
    loop.run(until_hours=t + float(rng.uniform(1.0, 50.0)))


class TestEagerLazyEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_randomized_schedule_bit_identical(self, seed):
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [10000.0, 5000.0])
        design = build_target_design(
            VIRTEX_ULTRASCALE_PLUS, routes, [1, 0], heater_dsps=0
        )
        states = {}
        for lazy in (False, True):
            provider = _make_provider(seed, lazy)
            _run_schedule(provider, routes, design, seed)
            states[lazy] = _device_state(provider, routes)
        for eager_dev, lazy_dev in zip(states[False], states[True]):
            # Bit-identical, not approximately equal.
            assert eager_dev["sim_hours"] == lazy_dev["sim_hours"]
            assert eager_dev["age"] == lazy_dev["age"]
            assert eager_dev["deltas"] == lazy_dev["deltas"]
            assert eager_dev["rising"] == lazy_dev["rising"]
            assert eager_dev["falling"] == lazy_dev["falling"]

    def test_zero_state_fast_forward(self):
        provider = _make_provider(3, lazy=True, fleet_size=2)
        for _ in range(50):
            provider.advance(7.3)
        device = provider.region("r").devices()[0]
        assert device.pending_intervals == 50
        device.sync()
        # The fast path accumulates the same += sequence the eager
        # walker applies, so equality is exact.
        eager = _make_provider(3, lazy=False, fleet_size=2)
        for _ in range(50):
            eager.advance(7.3)
        assert device.sim_hours == eager.region("r").devices()[0].sim_hours

    def test_sync_is_idempotent(self):
        provider = _make_provider(5, lazy=True)
        provider.advance(12.0)
        device = provider.region("r").devices()[0]
        assert device.sync() > 0
        assert device.sync() == 0
        assert device.sim_hours == 12.0


class TestRegionTimeline:
    def test_clock_accumulates_like_the_walker(self):
        timeline = RegionTimeline(start_clock=0.0)
        sim = 0.0
        for d in (0.1, 0.2, 0.7, 123.456, 1e-3):
            timeline.append(d, 300.0)
            sim += d
        assert timeline.clock_after[-1] == sim
        assert timeline.clock_before(0) == 0.0
        assert timeline.clock_before(2) == timeline.clock_after[1]
        assert len(timeline) == 5


class TestBulkGroupSync:
    def test_grouped_catch_up_matches_individual_sync(self):
        """Idle devices sharing one store advance as a group; the
        result must equal syncing each device alone."""
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [10000.0])
        design = build_target_design(
            VIRTEX_ULTRASCALE_PLUS, routes, [1], heater_dsps=0
        )

        def build(seed):
            provider = CloudProvider(seed=seed, lazy_aging=True)
            store = SegmentBtiArray()
            fleet = build_fleet(
                VIRTEX_ULTRASCALE_PLUS, 3, wear=CLOUD_PART, seed=seed,
                bti_store=store,
            )
            provider.create_region("r", fleet)
            # Materialise analog state on every board, then idle.
            held = [provider.rent("r", "warm") for _ in range(3)]
            for inst in held:
                inst.load_image(design.bitstream)
            provider.advance(5.0)
            for inst in held:
                provider.release(inst)
            provider.advance(40.0)
            provider.advance(17.0)
            return provider

        grouped = build(9)
        for device in grouped.region("r").devices():
            assert device.pending_intervals == 2
        grouped.sync_all()  # one FleetAgingArray catch-up for all three

        individual = build(9)
        for device in individual.region("r").devices():
            device.sync()  # per-device replay

        for a, b in zip(
            sorted(grouped.region("r").devices(), key=lambda d: d.device_id),
            sorted(individual.region("r").devices(),
                   key=lambda d: d.device_id),
        ):
            assert a.sim_hours == b.sim_hours
            assert a.route_delta_ps(routes[0]) == b.route_delta_ps(routes[0])
