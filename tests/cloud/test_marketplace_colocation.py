"""Tests for the marketplace, fingerprinting and the flash attack."""

import pytest

from repro.errors import AccessError, AttackError, CloudError
from repro.cloud.colocation import FlashAttack
from repro.cloud.fingerprint import (
    fingerprint_session,
    is_same_device,
    match_score,
)
from repro.cloud.fleet import build_fleet
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.phases import CalibrationPhase
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.physics.aging import NEW_PART
from repro.sensor.noise import LAB_NOISE


def make_provider(fleet_size=3, seed=2):
    provider = CloudProvider(seed=seed)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, fleet_size, wear=NEW_PART,
                        seed=seed)
    provider.create_region("eu-west-2", fleet)
    return provider


def listed_design(marketplace, public_skeleton=True):
    grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
    routes = build_route_bank(grid, [1000.0, 2000.0])
    design = build_target_design(
        VIRTEX_ULTRASCALE_PLUS, routes, [1, 0], heater_dsps=0, name="ip-core"
    )
    listing = marketplace.publish(
        design.bitstream, publisher="vendor", public_skeleton=public_skeleton
    )
    return listing, design, routes


class TestMarketplace:
    def test_publish_and_deploy(self):
        provider = make_provider()
        marketplace = Marketplace()
        listing, _, _ = listed_design(marketplace)
        instance = provider.rent("eu-west-2", "customer")
        marketplace.deploy(listing.afi_id, instance)
        assert instance.device.loaded_design is not None

    def test_customer_cannot_read_design(self):
        marketplace = Marketplace()
        listing, _, _ = listed_design(marketplace)
        with pytest.raises(AccessError):
            listing.image.static_values()
        with pytest.raises(AccessError):
            _ = listing.image.netlist

    def test_skeleton_access_follows_publisher_choice(self):
        marketplace = Marketplace()
        public, _, _ = listed_design(marketplace, public_skeleton=True)
        private, _, _ = listed_design(marketplace, public_skeleton=False)
        assert marketplace.skeleton_of(public.afi_id).net_names
        with pytest.raises(AccessError):
            marketplace.skeleton_of(private.afi_id)

    def test_unknown_afi_rejected(self):
        with pytest.raises(CloudError):
            Marketplace().listing("agfi-99999999")

    def test_catalogue_sorted(self):
        marketplace = Marketplace()
        listed_design(marketplace)
        listed_design(marketplace)
        ids = [l.afi_id for l in marketplace.catalogue()]
        assert ids == sorted(ids)


class TestFingerprint:
    def _session_for(self, provider, tenant, routes, measure):
        instance = provider.rent("eu-west-2", tenant)
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=9)
        session = calibration.run(instance)
        return instance, session

    def test_same_device_matches_itself(self):
        provider = make_provider(fleet_size=1)
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 2000.0, 5000.0])
        measure = build_measure_design(VIRTEX_ULTRASCALE_PLUS, routes)
        instance, session = self._session_for(provider, "a", routes, measure)
        reference = fingerprint_session(session)
        probe = fingerprint_session(session)
        assert match_score(reference, probe) > 0.9
        assert is_same_device(reference, probe)

    def test_different_devices_do_not_match(self):
        provider = make_provider(fleet_size=2)
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 2000.0, 5000.0, 10000.0])
        measure = build_measure_design(VIRTEX_ULTRASCALE_PLUS, routes)
        inst_a, session_a = self._session_for(provider, "a", routes, measure)
        inst_b, session_b = self._session_for(provider, "b", routes, measure)
        assert inst_a.device.device_id != inst_b.device.device_id
        # The probe must replay the reference thetas, not recalibrate
        # (recalibration cancels the identifying delay differences).
        session_b.use_theta_init(dict(session_a.theta_init))
        reference = fingerprint_session(session_a)
        probe = fingerprint_session(session_b)
        assert match_score(reference, probe) < 0.5
        assert not is_same_device(reference, probe)

    def test_mismatched_probe_routes_rejected(self):
        provider = make_provider(fleet_size=1)
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        routes = build_route_bank(grid, [1000.0, 2000.0])
        measure = build_measure_design(VIRTEX_ULTRASCALE_PLUS, routes)
        _, session = self._session_for(provider, "a", routes, measure)
        reference = fingerprint_session(session)
        from repro.cloud.fingerprint import RouteFingerprint
        import numpy as np

        other = RouteFingerprint(("x",), np.zeros((1, 2)))
        with pytest.raises(AttackError):
            match_score(reference, other)


class TestFlashAttack:
    def test_acquires_entire_region(self):
        provider = make_provider(fleet_size=3)
        flash = FlashAttack(provider, "eu-west-2")
        holdings = flash.acquire_all()
        assert len(holdings) == 3
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            provider.rent("eu-west-2", "someone-else")

    def test_guarantees_victim_board(self):
        provider = make_provider(fleet_size=3)
        victim = provider.rent("eu-west-2", "victim")
        victim_id = victim.device.device_id
        provider.release(victim)
        flash = FlashAttack(provider, "eu-west-2")
        holdings = flash.acquire_all()
        assert victim_id in {h.device.device_id for h in holdings}

    def test_release_except_returns_rest(self):
        provider = make_provider(fleet_size=3)
        flash = FlashAttack(provider, "eu-west-2")
        holdings = flash.acquire_all()
        keep = holdings[0]
        flash.release_except(keep)
        assert keep.active
        assert provider.region("eu-west-2").available_count(0.0) == 2

    def test_empty_region_raises(self):
        provider = make_provider(fleet_size=1)
        provider.rent("eu-west-2", "blocker")
        flash = FlashAttack(provider, "eu-west-2")
        with pytest.raises(AttackError):
            flash.acquire_all()

    def test_limit_bounds_acquisition(self):
        provider = make_provider(fleet_size=3)
        flash = FlashAttack(provider, "eu-west-2")
        holdings = flash.acquire_all(limit=2)
        assert len(holdings) == 2


class TestMarketplaceLifecycleEdges:
    def test_deploy_on_released_instance_rejected(self):
        from repro.errors import TenancyError

        provider = make_provider()
        marketplace = Marketplace()
        listing, _, _ = listed_design(marketplace)
        instance = provider.rent("eu-west-2", "customer")
        provider.release(instance)
        with pytest.raises(TenancyError):
            marketplace.deploy(listing.afi_id, instance)

    def test_deploy_survives_release_then_rent_same_tick(self):
        """The reallocation race with a marketplace AFI: the second
        tenant's deploy overwrites the first's logical state on the
        very same board, in the same tick."""
        provider = make_provider(fleet_size=1)
        marketplace = Marketplace()
        listing, _, _ = listed_design(marketplace)
        first = provider.rent("eu-west-2", "one")
        marketplace.deploy(listing.afi_id, first)
        provider.advance(1.0)
        provider.release(first)
        second = provider.rent("eu-west-2", "two")
        assert second.device is first.device
        assert second.device.loaded_design is None  # wiped on release
        marketplace.deploy(listing.afi_id, second)
        assert second.device.loaded_design is not None

    def test_zero_hour_marketplace_tenancy(self):
        """Deploy and release inside one tick leaves no logical state
        but does leave the tenancy accounting consistent."""
        provider = make_provider()
        marketplace = Marketplace()
        listing, _, _ = listed_design(marketplace)
        region = provider.region("eu-west-2")
        before = region.available_count(provider.clock_hours)
        instance = provider.rent("eu-west-2", "flash")
        marketplace.deploy(listing.afi_id, instance)
        provider.release(instance)
        assert instance.active is False
        assert region.available_count(provider.clock_hours) == before

    def test_republish_same_image_gets_fresh_afi(self):
        marketplace = Marketplace()
        first, design, _ = listed_design(marketplace)
        second = marketplace.publish(design.bitstream, publisher="vendor")
        assert first.afi_id != second.afi_id
        assert [l.afi_id for l in marketplace.catalogue()] == sorted(
            [first.afi_id, second.afi_id]
        )
