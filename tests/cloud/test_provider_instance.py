"""Tests for the cloud provider, tenancy lifecycle and allocation."""

import pytest

from repro.errors import (
    CapacityError,
    CloudError,
    DesignRuleViolation,
    TenancyError,
)
from repro.cloud.allocation import AllocationOrder, AllocationPolicy
from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.provider import CloudProvider
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.physics.aging import NEW_PART


def make_provider(fleet_size=2, policy=None, wear=NEW_PART, seed=1):
    provider = CloudProvider(seed=seed)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, fleet_size, wear=wear, seed=seed)
    provider.create_region("us-east-1", fleet, policy=policy)
    return provider


def small_design(value=1, name="design"):
    grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
    routes = build_route_bank(grid, [1000.0])
    return build_target_design(
        VIRTEX_ULTRASCALE_PLUS, routes, [value], heater_dsps=0, name=name
    ), routes


class TestTenancy:
    def test_rent_and_release_cycle(self):
        provider = make_provider()
        instance = provider.rent("us-east-1", "alice")
        assert instance.active
        provider.release(instance)
        assert not instance.active

    def test_capacity_exhaustion(self):
        provider = make_provider(fleet_size=2)
        provider.rent("us-east-1", "a")
        provider.rent("us-east-1", "b")
        with pytest.raises(CapacityError):
            provider.rent("us-east-1", "c")

    def test_released_instance_rejects_operations(self):
        provider = make_provider()
        instance = provider.rent("us-east-1", "alice")
        provider.release(instance)
        with pytest.raises(TenancyError):
            instance.run_hours(1.0)

    def test_double_release_rejected(self):
        provider = make_provider()
        instance = provider.rent("us-east-1", "alice")
        provider.release(instance)
        with pytest.raises(TenancyError):
            provider.release(instance)

    def test_unknown_region_rejected(self):
        provider = make_provider()
        with pytest.raises(CloudError):
            provider.rent("mars-north-1", "alice")

    def test_duplicate_region_rejected(self):
        provider = make_provider()
        with pytest.raises(CloudError):
            provider.create_region("us-east-1", [])


class TestWipeOnRelease:
    def test_release_wipes_logical_state(self):
        provider = make_provider()
        design, _ = small_design()
        instance = provider.rent("us-east-1", "victim")
        instance.load_image(design.bitstream)
        device = instance.device
        provider.release(instance)
        assert device.loaded_design is None

    def test_release_preserves_analog_state(self):
        """Threat Model 2's foundation, at platform level."""
        provider = make_provider()
        design, routes = small_design()
        instance = provider.rent("us-east-1", "victim")
        instance.load_image(design.bitstream)
        instance.run_hours(48.0)
        device = instance.device
        imprint = device.route_delta_ps(routes[0])
        provider.release(instance)
        assert device.route_delta_ps(routes[0]) == pytest.approx(imprint)
        assert imprint > 0.1


class TestAllocation:
    def test_lifo_returns_most_recent_board(self):
        provider = make_provider(fleet_size=3)
        first = provider.rent("us-east-1", "a")
        first_device = first.device.device_id
        provider.advance(1.0)
        provider.release(first)
        again = provider.rent("us-east-1", "b")
        assert again.device.device_id == first_device

    def test_holdback_quarantines_returned_boards(self):
        policy = AllocationPolicy(holdback_hours=24.0)
        provider = make_provider(fleet_size=1, policy=policy)
        instance = provider.rent("us-east-1", "a")
        provider.advance(1.0)
        provider.release(instance)
        with pytest.raises(CapacityError):
            provider.rent("us-east-1", "b")
        provider.advance(25.0)
        provider.rent("us-east-1", "b")

    def test_random_order_is_reproducible(self):
        a = make_provider(fleet_size=4,
                          policy=AllocationPolicy(order=AllocationOrder.RANDOM),
                          seed=5)
        b = make_provider(fleet_size=4,
                          policy=AllocationPolicy(order=AllocationOrder.RANDOM),
                          seed=5)
        ids_a = [a.rent("us-east-1", "x").device.device_id for _ in range(4)]
        ids_b = [b.rent("us-east-1", "x").device.device_id for _ in range(4)]
        # Same relative order (absolute ids differ across fleets).
        rank_a = [sorted(ids_a).index(i) for i in ids_a]
        rank_b = [sorted(ids_b).index(i) for i in ids_b]
        assert rank_a == rank_b


class TestDrcAtLoad:
    def test_ring_oscillator_rejected_by_platform(self):
        from repro.fabric.bitstream import Bitstream
        from repro.fabric.geometry import Coordinate
        from repro.fabric.netlist import CellType
        from repro.fabric.placement import FixedPlacer
        from repro.sensor.ro import build_ro_netlist

        provider = make_provider()
        instance = provider.rent("us-east-1", "attacker")
        grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
        route = build_route_bank(grid, [1000.0])[0]
        netlist = build_ro_netlist("probe", route)
        placer = FixedPlacer(grid)
        placer.place_at("loop_inv", CellType.INVERTER, Coordinate(0, 16))
        placer.place_at("counter_ff", CellType.FLIP_FLOP, Coordinate(0, 16))
        ro_image = Bitstream.compile(netlist, placer.placement)
        with pytest.raises(DesignRuleViolation):
            instance.load_image(ro_image)

    def test_clean_design_loads(self):
        provider = make_provider()
        design, _ = small_design()
        instance = provider.rent("us-east-1", "tenant")
        instance.load_image(design.bitstream)
        assert instance.device.loaded_design is not None


class TestTime:
    def test_advance_moves_all_devices(self):
        provider = make_provider(fleet_size=3)
        provider.advance(5.0)
        provider.sync_all()
        region = provider.region("us-east-1")
        assert all(d.sim_hours == 5.0 for d in region.devices())
        assert provider.clock_hours == 5.0

    def test_eager_mode_advances_synchronously(self):
        provider = CloudProvider(seed=11, lazy_aging=False)
        fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 3, seed=11)
        provider.create_region("us-east-1", fleet)
        provider.advance(5.0)
        region = provider.region("us-east-1")
        # No sync needed: the eager walker touched every device.
        assert all(d.sim_hours == 5.0 for d in region.devices())

    def test_lazy_devices_catch_up_on_touch(self):
        provider = make_provider(fleet_size=2)
        provider.advance(7.0)
        region = provider.region("us-east-1")
        device = region.devices()[0]
        assert device.pending_intervals == 1
        info = device.info()  # any observation syncs first
        assert device.pending_intervals == 0
        assert device.sim_hours == 7.0
        assert info.device_id == device.device_id

    def test_negative_advance_rejected(self):
        provider = make_provider()
        with pytest.raises(CloudError):
            provider.advance(-1.0)


class TestFleet:
    def test_cloud_wear_profile_scaling(self):
        profile = cloud_wear_profile(1000.0)
        assert profile.age_mean_hours == 1000.0
        default = cloud_wear_profile(4000.0)
        from repro.physics.aging import CLOUD_PART

        assert default is CLOUD_PART

    def test_fleet_size_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_fleet(VIRTEX_ULTRASCALE_PLUS, 0)
