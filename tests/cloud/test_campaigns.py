"""Fleet campaigns: bulk churn correctness and seed reproducibility.

The bulk engine resolves whole windows of background churn with numpy
passes; the reference engine replays the same trace event by event.
These tests pin them identical -- free-stack contents, event counts,
capacity drops -- across seeds, pool sizes (including drop-heavy
starvation), batch sizes, and interleaved tracked rentals, and pin the
campaign results themselves engine- and batch-invariant.
"""

import math

import numpy as np
import pytest

from repro.cloud import campaigns as campaigns_module
from repro.cloud.campaigns import (
    ChurnModel,
    ChurnTrace,
    FleetScenario,
    FlashAttackPlan,
    LazyFleet,
    ScanPlan,
    VirtualRegion,
    fleet_journal_context,
    run_churn_benchmark,
    run_flash_campaign,
    run_fleet_sweep,
    run_scan_campaign,
)
from repro.errors import CloudError, ConfigurationError
from repro.observability.metrics import registry
from repro.observability.timeseries import FlightRecorder
from repro.reliability.checkpoint import SweepJournal
from repro.reliability.fleet_chaos import (
    FleetFaultPlan,
    OutageWindow,
    PreemptionStorm,
    RetirementWave,
    ThermalExcursion,
    WipeFaultSpec,
)


def _naive_pool(trace, boards, until):
    """An independent, obviously-correct churn replay (list + scan)."""
    stack = list(range(boards))
    pending = []  # (release_time, board), unsorted on purpose
    drops = 0
    events = 0
    i = 0
    while True:
        a = trace.arrivals[i] if i < len(trace.arrivals) else math.inf
        r = min((t for t, _ in pending), default=math.inf)
        t = min(a, r)
        if t > until:
            break
        if r <= a:
            j = min(range(len(pending)), key=lambda k: pending[k][0])
            _, board = pending.pop(j)
            stack.append(board)
        else:
            i += 1
            if stack:
                board = stack.pop()
                pending.append((a + trace.durations[i - 1], board))
            else:
                drops += 1
        events += 1
    return stack, drops, events


class TestChurnModel:
    def test_trace_is_deterministic(self):
        model = ChurnModel(10.0, 4.0)
        a = model.draw(100.0, seed=3)
        b = model.draw(100.0, seed=3)
        assert np.array_equal(a.arrivals, b.arrivals)
        assert np.array_equal(a.durations, b.durations)
        assert a.arrivals[-1] < 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnModel(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            ChurnModel(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            ChurnModel().draw(-5.0)
        with pytest.raises(ConfigurationError):
            ChurnTrace(np.zeros(3), np.zeros(2))

    def test_draw_count(self):
        trace = ChurnModel(5.0, 2.0).draw_count(1000, seed=1)
        assert len(trace) == 1000
        assert (np.diff(trace.arrivals) >= 0.0).all()
        assert (trace.durations > 0.0).all()


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("boards", [5, 60, 900])
    def test_bulk_matches_reference(self, seed, boards):
        trace = ChurnModel(30.0, 4.0).draw(150.0, seed=seed)
        ref = VirtualRegion(boards, trace, engine="reference")
        ref.advance_to(180.0)
        bulk = VirtualRegion(boards, trace, engine="bulk")
        bulk.advance_to(180.0)
        assert bulk.free_boards() == ref.free_boards()
        assert bulk.events_processed == ref.events_processed
        assert bulk.dropped_arrivals == ref.dropped_arrivals

    def test_matches_naive_simulation(self):
        trace = ChurnModel(20.0, 3.0).draw(80.0, seed=11)
        stack, drops, events = _naive_pool(trace, 40, 100.0)
        for engine in ("bulk", "reference"):
            region = VirtualRegion(40, trace, engine=engine)
            region.advance_to(100.0)
            assert region.free_boards() == stack, engine
            assert region.dropped_arrivals == drops, engine
            assert region.events_processed == events, engine

    @pytest.mark.parametrize("batch", [math.inf, 100.0, 13.0, 1.0])
    def test_batch_size_invariance(self, batch):
        trace = ChurnModel(25.0, 5.0).draw(120.0, seed=5)
        baseline = VirtualRegion(80, trace, engine="bulk")
        baseline.advance_to(150.0)
        windowed = VirtualRegion(80, trace, engine="bulk",
                                 batch_hours=batch)
        windowed.advance_to(150.0)
        assert windowed.free_boards() == baseline.free_boards()
        assert windowed.events_processed == baseline.events_processed
        assert windowed.dropped_arrivals == baseline.dropped_arrivals

    @pytest.mark.parametrize("engine", ["bulk", "reference"])
    def test_tracked_rentals_interleave(self, engine):
        """Attacker rent/release between windows sees the same boards
        on both engines."""
        trace = ChurnModel(15.0, 4.0).draw(90.0, seed=2)
        region = VirtualRegion(50, trace, engine=engine, batch_hours=7.0)
        log = []
        held = []
        for t in np.linspace(1.0, 95.0, 30):
            region.advance_to(float(t))
            if len(held) >= 3:
                region.release(held.pop(0))
                log.append(("rel", None))
            else:
                board = region.rent()
                if board is not None:
                    held.append(board)
                log.append(("rent", board))
        if engine == "bulk":
            type(self)._bulk_log = log
        else:
            assert log == type(self)._bulk_log

    def test_advance_backwards_rejected(self):
        trace = ChurnModel(5.0, 2.0).draw(10.0, seed=0)
        for engine in ("bulk", "reference"):
            region = VirtualRegion(4, trace, engine=engine)
            region.advance_to(8.0)
            with pytest.raises(CloudError):
                region.advance_to(3.0)

    def test_unknown_engine_rejected(self):
        trace = ChurnModel(5.0, 2.0).draw(10.0, seed=0)
        with pytest.raises(ConfigurationError):
            VirtualRegion(4, trace, engine="psychic")


class TestLazyFleet:
    def test_materialise_on_demand(self):
        fleet = LazyFleet(size=50, seed=4)
        assert fleet.materialised == 0
        dev = fleet.device(17)
        assert fleet.materialised == 1
        assert fleet.device(17) is dev

    def test_board_seed_independent_of_order(self):
        a = LazyFleet(size=20, seed=9)
        b = LazyFleet(size=20, seed=9)
        a.device(3)  # materialise another board first on one fleet
        assert (a.device(11).effective_age_hours
                == b.device(11).effective_age_hours)

    def test_out_of_range(self):
        fleet = LazyFleet(size=5, seed=0)
        with pytest.raises(CloudError):
            fleet.device(5)


def _scenario(**overrides):
    base = dict(
        devices=120,
        horizon_hours=260.0,
        churn=ChurnModel(arrival_rate_per_hour=2.0,
                         mean_rental_hours=10.0),
        routes=4,
        seed=6,
    )
    base.update(overrides)
    return FleetScenario(**base)


class TestCampaigns:
    def test_flash_reports_yield_and_is_reproducible(self):
        plan = FlashAttackPlan(victims=2, flash_limit=5,
                               reaction_hours=0.25)
        results = [
            run_flash_campaign(_scenario(engine=engine,
                                         batch_hours=batch), plan)
            for engine, batch in (
                ("bulk", math.inf), ("bulk", 9.0), ("reference", math.inf)
            )
        ]
        first = results[0]
        assert first.victims_attempted == 2
        assert 0.0 <= first.recovery_yield <= 1.0
        assert first.boards_probed > 0
        for other in results[1:]:
            # Engine and batch size must not perturb a single draw.
            assert other.recovery_yield == first.recovery_yield
            assert other.mean_accuracy == first.mean_accuracy
            assert other.details == first.details
            assert other.lifecycle_events == first.lifecycle_events

    def test_flash_recovers_on_quiet_pool(self):
        """With no churn contention the attacker always re-acquires
        the victim's board (LIFO top) and reads the secret.  Fresh
        boards (no residual imprints) make full accuracy exact."""
        from repro.physics.aging import NEW_PART

        scenario = _scenario(
            churn=ChurnModel(arrival_rate_per_hour=0.01,
                             mean_rental_hours=1.0),
            seed=2,
            wear=NEW_PART,
        )
        plan = FlashAttackPlan(victims=2, flash_limit=3,
                               reaction_hours=0.1)
        result = run_flash_campaign(scenario, plan)
        assert result.recovery_yield == 1.0
        assert result.mean_accuracy == 1.0

    def test_scan_campaign_runs(self):
        plan = ScanPlan(victims=1, scan_width=4, scan_every_hours=16.0)
        result = run_scan_campaign(_scenario(), plan)
        assert result.kind == "scan"
        assert result.boards_probed > 0
        assert 0.0 <= result.recovery_yield <= 1.0
        again = run_scan_campaign(_scenario(engine="reference"), plan)
        assert again.recovery_yield == result.recovery_yield
        assert again.details == result.details


class TestChurnBenchmark:
    def test_drop_free_sizing(self):
        stats = run_churn_benchmark(devices=1000, arrivals=5000, seed=1)
        assert stats["dropped_arrivals"] == 0
        assert stats["events"] == 10000  # every arrival and release
        assert stats["final_free"] == 1000
        assert stats["events_per_second"] > 0

    def test_recorder_grid_samples(self):
        rec = FlightRecorder(cadence_hours=1.0)
        run_churn_benchmark(devices=200, arrivals=2000, seed=2,
                            recorder=rec)
        free = rec.series["fleet.pool_free"]
        assert free.points[0] == [0.0, 200.0]
        times = [p[0] for p in free.points]
        assert times == sorted(times)
        events = rec.series["fleet.lifecycle_events"]
        assert events.last_value == 4000.0  # cumulative, incl. releases


def _series_json(engine, batch, seed, cadence=1.0):
    """The quick flash campaign's recorder document as canonical JSON."""
    rec = FlightRecorder(cadence_hours=cadence)
    scenario = _scenario(engine=engine, batch_hours=batch, seed=seed)
    result = run_flash_campaign(
        scenario, FlashAttackPlan(victims=2, flash_limit=5,
                                  reaction_hours=0.25),
        recorder=rec,
    )
    counters = {k: v for k, v in registry.snapshot()["counters"].items()
                if k.startswith("fleet_events")}
    registry.reset()
    payload = {k: v for k, v in result.to_dict().items() if k != "engine"}
    return rec.to_json(), counters, payload


class TestSeriesBitIdentity:
    """The acceptance gate: a campaign's recorded series JSON must be
    bit-for-bit identical whichever churn engine produced it."""

    @pytest.mark.parametrize("seed", [3, 6, 11])
    def test_reference_and_bulk_emit_identical_json(self, seed):
        ref_json, ref_counters, ref_result = _series_json(
            "reference", math.inf, seed)
        for engine, batch in (("bulk", math.inf), ("bulk", 9.0),
                              ("bulk", 1.0)):
            got_json, got_counters, got_result = _series_json(
                engine, batch, seed)
            assert got_json == ref_json, (engine, batch)
            assert got_counters == ref_counters, (engine, batch)
            assert got_result == ref_result, (engine, batch)

    def test_coarse_cadence_still_identical(self):
        ref, _, _ = _series_json("reference", math.inf, 6, cadence=7.0)
        bulk, _, _ = _series_json("bulk", 13.0, 6, cadence=7.0)
        assert bulk == ref

    def test_all_fleet_series_present(self):
        rec = FlightRecorder()
        run_flash_campaign(
            _scenario(), FlashAttackPlan(victims=2), recorder=rec
        )
        assert rec.names() == (
            "fleet.aging_debt_hours",
            "fleet.boards_probed",
            "fleet.dropped_arrivals",
            "fleet.lifecycle_events",
            "fleet.pool_free",
            "fleet.recovery_yield",
            "fleet.rentals_in_flight",
            "fleet.tracked_events",
        )
        debt = rec.series["fleet.aging_debt_hours"]
        assert all(v >= 0.0 for _, v in debt.points)
        probed = rec.series["fleet.boards_probed"]
        assert probed.last_value > 0.0

    def test_scan_campaign_records_too(self):
        rec = FlightRecorder()
        result = run_scan_campaign(
            _scenario(), ScanPlan(victims=1, scan_width=4,
                                  scan_every_hours=16.0),
            recorder=rec,
        )
        assert rec.series["fleet.recovery_yield"].last_value == \
            result.recovery_yield
        assert rec.series["fleet.boards_probed"].last_value == \
            float(result.boards_probed)


class TestFleetCounters:
    """fleet_events_total and the per-kind counters are engine-exact."""

    def _counters(self, engine, batch):
        registry.reset()
        run_flash_campaign(
            _scenario(engine=engine, batch_hours=batch),
            FlashAttackPlan(victims=2),
        )
        snap = {k: v for k, v in registry.snapshot()["counters"].items()
                if k.startswith("fleet_events")}
        registry.reset()
        return snap

    def test_counter_values_agree_across_engines(self):
        ref = self._counters("reference", math.inf)
        assert ref["fleet_events_total"] > 0
        assert "fleet_events_rent_total" in ref
        assert "fleet_events_release_total" in ref
        for engine, batch in (("bulk", math.inf), ("bulk", 9.0)):
            assert self._counters(engine, batch) == ref, (engine, batch)

    def test_total_decomposes_into_kinds(self):
        registry.reset()
        run_flash_campaign(_scenario(), FlashAttackPlan(victims=2))
        snap = registry.snapshot()["counters"]
        per_kind = sum(v for k, v in snap.items()
                       if k.startswith("fleet_events_")
                       and k != "fleet_events_total")
        # Churn rents + releases + drops and the loop's by-kind tally
        # partition the grand total exactly.
        assert per_kind == snap["fleet_events_total"] > 0


def _chaos_plan(**overrides):
    """An aggressive every-family plan that provably fires at quick
    scale (the committed default is gentler)."""
    base = dict(
        seed=4,
        wipe=WipeFaultSpec(fail_probability=0.4, partial_probability=0.4,
                           scrub_fraction=0.5),
        outages=(OutageWindow(start_hours=60.0, duration_hours=20.0),),
        storms=(PreemptionStorm(start_hours=150.0, probability=0.5),),
        retirements=(RetirementWave(time_hours=30.0, boards=5),),
        excursions=(ThermalExcursion(start_hours=40.0,
                                     duration_hours=24.0, delta_k=8.0),),
    )
    base.update(overrides)
    return FleetFaultPlan(**base)


def _faulted_run(engine, batch, plan, cadence=7.0):
    """One faulted flash campaign -> (result-sans-engine, series, counters)."""
    registry.reset()
    rec = FlightRecorder(cadence_hours=cadence)
    result = run_flash_campaign(
        _scenario(engine=engine, batch_hours=batch),
        FlashAttackPlan(victims=3, flash_limit=5, reaction_hours=0.25),
        recorder=rec, fault_plan=plan,
    )
    counters = {k: v for k, v in registry.snapshot()["counters"].items()
                if k.startswith(("fleet_", "retry_", "retries_"))}
    registry.reset()
    payload = {k: v for k, v in result.to_dict().items() if k != "engine"}
    return payload, rec.to_json(), counters


class TestFleetChaos:
    """Fault injection at fleet scale stays engine- and batch-invariant,
    and every fault family leaves an honest ledger."""

    def test_faulted_campaign_engine_and_batch_invariant(self):
        plan = _chaos_plan()
        ref_result, ref_series, ref_counters = _faulted_run(
            "reference", math.inf, plan)
        # The plan must actually have done something interesting.
        faults = ref_result["faults"]
        assert faults["churn.dropped_by_outage"] > 0
        assert faults["churn.truncated_by_storm"] > 0
        assert faults["fleet.retire"] == 5
        assert faults["fleet.thermal"] == 1
        for engine, batch in (("bulk", math.inf), ("bulk", 9.0),
                              ("bulk", 1.0), ("reference", 13.0)):
            result, series, counters = _faulted_run(engine, batch, plan)
            assert result == ref_result, (engine, batch)
            assert series == ref_series, (engine, batch)
            assert counters == ref_counters, (engine, batch)

    def test_fault_series_are_plan_gated(self):
        rec = FlightRecorder(cadence_hours=7.0)
        run_flash_campaign(
            _scenario(), FlashAttackPlan(victims=2), recorder=rec,
            fault_plan=_chaos_plan(),
        )
        assert "fleet.faults_injected" in rec.names()
        assert "fleet.failed_wipes" in rec.names()
        faults = rec.series["fleet.faults_injected"]
        values = [v for _, v in faults.points]
        assert values == sorted(values) and values[-1] > 0

    def test_no_plan_results_unchanged(self):
        """fault_plan=None must be byte-identical to the pre-chaos
        code path (the fast-path contract)."""
        plan = FlashAttackPlan(victims=2, flash_limit=5,
                               reaction_hours=0.25)
        bare = run_flash_campaign(_scenario(), plan)
        explicit = run_flash_campaign(_scenario(), plan, fault_plan=None)
        assert explicit.to_dict() == bare.to_dict()
        assert bare.faults == {} and bare.failed_wipes == 0
        assert bare.region_status["r0"]["status"] == "ok"

    def test_outage_spanning_rents_degrades_gracefully(self):
        """A region dark across every victim rent (and past the retry
        budget) yields skipped victims and a truthful region map, not
        an exception."""
        plan = FleetFaultPlan(seed=1, outages=(
            OutageWindow(start_hours=0.0, duration_hours=300.0),))
        result = run_flash_campaign(
            _scenario(),
            FlashAttackPlan(victims=2, flash_limit=5,
                            reaction_hours=0.25),
            fault_plan=plan,
        )
        assert result.victims_skipped == 2
        assert result.recovery_yield == 0.0
        assert result.faults["fleet.outage"] > 0
        assert result.rent_retries > 0
        status = result.region_status["r0"]
        assert status["status"] == "dark"
        assert status["victims_skipped"] == 2
        details = {d["victim"]: d for d in result.details}
        assert all(d["skipped"] for d in details.values())

    def test_rent_retries_past_outage_end(self):
        """A short outage at the first victim's rent instant: the RENT
        retries under backoff and lands once the region lights up."""
        # Quick flash victims rent at warmup=12.0; dark 11.9..12.5.
        plan = FleetFaultPlan(seed=1, outages=(
            OutageWindow(start_hours=11.9, duration_hours=0.6,
                         drop_churn=False),))
        result = run_flash_campaign(
            _scenario(),
            FlashAttackPlan(victims=1, flash_limit=5,
                            reaction_hours=0.25),
            fault_plan=plan,
        )
        assert result.victims_skipped == 0
        assert result.rent_retries > 0
        assert result.faults["fleet.outage"] > 0
        assert result.region_status["r0"]["status"] == "degraded"

    def test_certain_storm_preempts_live_victims(self):
        """probability=1.0 storms mid-tenancy reclaim the live victim
        exactly once; the release event later finds the board gone."""
        # Victim tenancies are sequential: victim 0 holds [12, 60),
        # victim 1 holds [84, 132) (warmup 12, burn 48, spacing 24) --
        # one storm inside each window catches exactly that victim.
        plan = FleetFaultPlan(seed=1, storms=(
            PreemptionStorm(start_hours=40.0, probability=1.0,
                            cut_churn=False),
            PreemptionStorm(start_hours=100.0, probability=1.0,
                            cut_churn=False),
        ))
        result = run_flash_campaign(
            _scenario(),
            FlashAttackPlan(victims=2, flash_limit=5,
                            reaction_hours=0.25),
            fault_plan=plan,
        )
        assert result.preempted == 2
        assert result.faults["fleet.preempt"] == 2
        preempted_details = [d for d in result.details if d["preempted"]]
        assert len(preempted_details) == 2

    def test_retirement_shrinks_pool_permanently(self):
        plan = FleetFaultPlan(seed=2, retirements=(
            RetirementWave(time_hours=5.0, boards=7),))
        result = run_flash_campaign(
            _scenario(), FlashAttackPlan(victims=2), fault_plan=plan,
        )
        assert result.retired_boards == 7
        assert result.faults["fleet.retire"] == 7
        status = result.region_status["r0"]
        assert status["retired"] == 7
        assert status["boards"] == 120 - 7
        assert status["status"] == "degraded"

    def test_failed_wipe_leaves_remanence_for_the_attacker(self):
        """With every wipe failing on a quiet pool, the attacker reads
        the victim's residue exactly as before -- plus the ledger says
        the wipes failed."""
        from repro.physics.aging import NEW_PART

        scenario = _scenario(
            churn=ChurnModel(arrival_rate_per_hour=0.01,
                             mean_rental_hours=1.0),
            seed=2, wear=NEW_PART,
        )
        plan = FleetFaultPlan(seed=0,
                              wipe=WipeFaultSpec(fail_probability=1.0))
        result = run_flash_campaign(
            scenario,
            FlashAttackPlan(victims=2, flash_limit=3, reaction_hours=0.1),
            fault_plan=plan,
        )
        assert result.failed_wipes == 2
        assert result.recovery_yield == 1.0
        assert {d["wipe_mode"] for d in result.details} == {"failed"}

    def test_virtual_region_retire_free(self):
        trace = ChurnModel(5.0, 2.0).draw(10.0, seed=0)
        for engine in ("bulk", "reference"):
            region = VirtualRegion(6, trace, engine=engine)
            before = list(region.free_boards())
            removed = region.retire_free([4, 1])
            assert removed == [before[4], before[1]]
            assert region.boards == 4
            assert region.available() == 4
            with pytest.raises(CloudError):
                region.retire_free([99])


def _sweep_scenario(**overrides):
    base = dict(
        devices=60,
        horizon_hours=120.0,
        churn=ChurnModel(arrival_rate_per_hour=1.5,
                         mean_rental_hours=8.0),
        routes=4,
        seed=0,
    )
    base.update(overrides)
    return FleetScenario(**base)


_SWEEP_ATTACK = FlashAttackPlan(victims=1, flash_limit=3,
                                reaction_hours=0.25)


def _sweep_chaos_plan():
    return FleetFaultPlan(
        seed=3,
        wipe=WipeFaultSpec(fail_probability=0.3, partial_probability=0.3),
        outages=(OutageWindow(start_hours=40.0, duration_hours=6.0),),
    )


class TestFleetSweep:
    """Multi-seed campaign sweeps: journaling, kill-and-resume
    bit-identity, per-seed fault-plan derivation."""

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fleet"):
            run_fleet_sweep(_sweep_scenario(), [1], campaign="psychic")
        with pytest.raises(ConfigurationError, match="at least one"):
            run_fleet_sweep(_sweep_scenario(), [])
        with pytest.raises(ConfigurationError, match="unique"):
            run_fleet_sweep(_sweep_scenario(), [1, 1])

    def test_journal_context_excludes_engine_and_batch(self):
        plans = (None, _sweep_chaos_plan())
        for plan in plans:
            a = fleet_journal_context(
                _sweep_scenario(engine="reference"), "flash",
                attack_plan=_SWEEP_ATTACK, fault_plan=plan)
            b = fleet_journal_context(
                _sweep_scenario(engine="bulk", batch_hours=9.0), "flash",
                attack_plan=_SWEEP_ATTACK, fault_plan=plan)
            assert a == b

    def test_sweep_mean_and_per_seed_results(self):
        sweep = run_fleet_sweep(
            _sweep_scenario(), [1, 2], attack_plan=_SWEEP_ATTACK,
        )
        assert sweep.seeds == [1, 2]
        assert len(sweep.results) == 2
        yields = [r["recovery_yield"] for r in sweep.results]
        assert sweep.mean_yield == sum(yields) / 2
        assert sweep.resumed_seeds == 0

    def test_kill_and_resume_is_bit_identical(self, tmp_path,
                                              monkeypatch):
        """SIGKILL mid-sweep (modelled as a runner that dies on the
        third seed), then resume under a *different engine*: result
        JSON, merged series and counters all match the uninterrupted
        run exactly."""
        seeds = [1, 2, 3]
        plan = _sweep_chaos_plan()
        context = fleet_journal_context(
            _sweep_scenario(), "flash", attack_plan=_SWEEP_ATTACK,
            fault_plan=plan)

        def clean_run():
            registry.reset()
            rec = FlightRecorder(cadence_hours=7.0)
            sweep = run_fleet_sweep(
                _sweep_scenario(), seeds, attack_plan=_SWEEP_ATTACK,
                fault_plan=plan, recorder=rec,
            )
            counters = dict(registry.snapshot()["counters"])
            registry.reset()
            return sweep.to_dict(), rec.to_json(), counters

        expected_dict, expected_series, expected_counters = clean_run()

        # Interrupted journaled attempt: dies on the third campaign.
        journal_path = tmp_path / "fleet.journal"
        real_runner = campaigns_module._CAMPAIGN_RUNNERS["flash"]
        calls = {"n": 0}

        def dying_runner(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise KeyboardInterrupt
            return real_runner(*args, **kwargs)

        monkeypatch.setitem(campaigns_module._CAMPAIGN_RUNNERS, "flash",
                            dying_runner)
        registry.reset()
        with pytest.raises(KeyboardInterrupt):
            run_fleet_sweep(
                _sweep_scenario(), seeds, attack_plan=_SWEEP_ATTACK,
                fault_plan=plan, recorder=FlightRecorder(cadence_hours=7.0),
                journal=SweepJournal.load(journal_path, context=context),
            )
        monkeypatch.setitem(campaigns_module._CAMPAIGN_RUNNERS, "flash",
                            real_runner)
        registry.reset()
        journal = SweepJournal.load(journal_path, context=context)
        assert journal.completed_seeds() == [1, 2]

        # Resume in a fresh "process" under the bulk engine.
        rec = FlightRecorder(cadence_hours=7.0)
        sweep = run_fleet_sweep(
            _sweep_scenario(engine="bulk", batch_hours=9.0), seeds,
            attack_plan=_SWEEP_ATTACK, fault_plan=plan, recorder=rec,
            journal=SweepJournal.load(journal_path, context=context),
        )
        counters = dict(registry.snapshot()["counters"])
        registry.reset()
        assert sweep.resumed_seeds == 2
        assert sweep.to_dict() == expected_dict
        assert rec.to_json() == expected_series
        counters.pop("fleet_sweep_seeds_resumed_total")
        assert counters == expected_counters

    def test_journaled_equals_unjournaled(self, tmp_path):
        registry.reset()
        plain = run_fleet_sweep(
            _sweep_scenario(), [1, 2], attack_plan=_SWEEP_ATTACK,
        )
        registry.reset()
        journal = SweepJournal.load(tmp_path / "j.json", context={})
        journaled = run_fleet_sweep(
            _sweep_scenario(), [1, 2], attack_plan=_SWEEP_ATTACK,
            journal=journal,
        )
        registry.reset()
        assert journaled.to_dict() == plain.to_dict()
