"""Tests for bit-recovery classifiers and scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.analysis.timeseries import DeltaPsSeries
from repro.core.classify import (
    BurnTrendClassifier,
    MatchedFilterClassifier,
    NullReferencedSlopeClassifier,
    RecoverySlopeClassifier,
    cluster_separation,
    two_means_split,
)
from repro.core.metrics import grouped_accuracy, score_recovery


def synthetic_series(name, drift, length=5000.0, points=40, noise=0.05,
                     seed=1, burn=None, transient=False):
    """A centred series with linear drift or a recovery transient."""
    rng = np.random.default_rng(seed)
    series = DeltaPsSeries(route_name=name, nominal_delay_ps=length,
                           burn_value=burn)
    for hour in range(points):
        if transient:
            value = drift * (1.0 - np.exp(-((hour / 32.0) ** 0.55)))
        else:
            value = drift * hour / points
        series.append(float(hour), value + float(rng.normal(0.0, noise)))
    return series


class TestTwoMeansSplit:
    def test_separates_two_clusters(self):
        values = [0.0, 0.1, -0.05, 2.0, 2.1, 1.95]
        threshold = two_means_split(values)
        assert 0.2 < threshold < 1.9

    def test_single_point_cluster(self):
        threshold = two_means_split([0.0, 0.0, 0.0, 5.0])
        assert 0.0 < threshold < 5.0

    def test_degenerate_identical_values(self):
        assert two_means_split([1.0, 1.0, 1.0]) == 1.0

    def test_too_few_values_rejected(self):
        with pytest.raises(AnalysisError):
            two_means_split([1.0])

    @given(
        gap=st.floats(min_value=1.0, max_value=10.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_threshold_lands_between_clusters(self, gap, seed):
        rng = np.random.default_rng(seed)
        low = rng.normal(0.0, 0.1, 10)
        high = rng.normal(gap, 0.1, 10)
        threshold = two_means_split(np.concatenate([low, high]))
        assert low.max() < threshold < high.min()


class TestBurnTrendClassifier:
    def test_classifies_clean_drifts(self):
        classifier = BurnTrendClassifier()
        up = synthetic_series("u", drift=2.0, seed=2)
        down = synthetic_series("d", drift=-2.0, seed=3)
        assert classifier.classify(up) == 1
        assert classifier.classify(down) == 0

    def test_classify_many(self):
        classifier = BurnTrendClassifier()
        series = [synthetic_series(f"s{i}", drift=(1 if i % 2 else -1), seed=i)
                  for i in range(6)]
        bits = classifier.classify_many(series)
        assert bits == {f"s{i}": (1 if i % 2 else 0) for i in range(6)}

    def test_too_short_series_rejected(self):
        classifier = BurnTrendClassifier()
        short = DeltaPsSeries(route_name="x", nominal_delay_ps=1000.0)
        short.append(0.0, 0.0)
        with pytest.raises(AnalysisError):
            classifier.classify(short)


class TestRecoverySlopeClassifier:
    def test_separates_recovery_from_flat(self):
        classifier = RecoverySlopeClassifier()
        series = []
        for i in range(4):
            series.append(synthetic_series(
                f"rec{i}", drift=-2.0, transient=True, seed=i, points=25))
        for i in range(4):
            series.append(synthetic_series(
                f"flat{i}", drift=0.0, seed=10 + i, points=25))
        bits = classifier.classify_many(series, conditioned_to=0)
        assert all(bits[f"rec{i}"] == 1 for i in range(4))
        assert all(bits[f"flat{i}"] == 0 for i in range(4))

    def test_conditioned_to_one_mirrors(self):
        classifier = RecoverySlopeClassifier()
        series = []
        for i in range(4):
            series.append(synthetic_series(
                f"rec{i}", drift=2.0, transient=True, seed=i, points=25))
        for i in range(4):
            series.append(synthetic_series(
                f"flat{i}", drift=0.0, seed=10 + i, points=25))
        bits = classifier.classify_many(series, conditioned_to=1)
        assert all(bits[f"rec{i}"] == 0 for i in range(4))
        assert all(bits[f"flat{i}"] == 1 for i in range(4))

    def test_invalid_conditioned_to(self):
        with pytest.raises(AnalysisError):
            RecoverySlopeClassifier().classify_many([], conditioned_to=2)


class TestNullReferencedClassifier:
    def _series_pair(self, victim_transient):
        victim = [
            synthetic_series("a", drift=victim_transient[0], transient=True,
                             seed=1, points=25),
            synthetic_series("b", drift=victim_transient[1], transient=True,
                             seed=2, points=25),
        ]
        null = [
            synthetic_series("a", drift=0.0, seed=11, points=25),
            synthetic_series("b", drift=0.0, seed=12, points=25),
            synthetic_series("a", drift=0.0, seed=13, points=25),
            synthetic_series("b", drift=0.0, seed=14, points=25),
        ]
        return victim, null

    def test_detects_transient_against_null(self):
        victim, null = self._series_pair((-2.0, 0.0))
        bits = NullReferencedSlopeClassifier().classify_many(
            victim, null, conditioned_to=0
        )
        assert bits == {"a": 1, "b": 0}

    def test_missing_null_route_rejected(self):
        victim, null = self._series_pair((-2.0, 0.0))
        with pytest.raises(AnalysisError):
            NullReferencedSlopeClassifier().classify_many(
                victim, null[:1], conditioned_to=0
            )

    def test_empty_null_rejected(self):
        victim, _ = self._series_pair((-2.0, 0.0))
        with pytest.raises(AnalysisError):
            NullReferencedSlopeClassifier().classify_many(victim, [])


class TestMatchedFilter:
    def test_projects_recovery_shape(self):
        classifier = MatchedFilterClassifier()
        rec = synthetic_series("r", drift=-2.0, transient=True, seed=5,
                               points=25)
        flat = synthetic_series("f", drift=0.0, seed=6, points=25)
        assert classifier.feature(rec) > classifier.feature(flat)

    def test_classify_many(self):
        classifier = MatchedFilterClassifier()
        series = [
            synthetic_series(f"r{i}", drift=-2.0, transient=True, seed=i,
                             points=25) for i in range(3)
        ] + [
            synthetic_series(f"f{i}", drift=0.0, seed=20 + i, points=25)
            for i in range(3)
        ]
        bits = classifier.classify_many(series, conditioned_to=0)
        assert all(bits[f"r{i}"] == 1 for i in range(3))
        assert all(bits[f"f{i}"] == 0 for i in range(3))


class TestClusterSeparation:
    def test_bimodal_scores_higher_than_unimodal(self):
        rng = np.random.default_rng(7)
        bimodal = np.concatenate([rng.normal(0, 0.1, 10),
                                  rng.normal(3, 0.1, 10)])
        unimodal = rng.normal(0, 0.5, 20)
        assert cluster_separation(bimodal) > cluster_separation(unimodal)


class TestMetrics:
    def test_score_recovery(self):
        score = score_recovery({"a": 1, "b": 0}, {"a": 1, "b": 1})
        assert score.correct_bits == 1
        assert score.accuracy == 0.5
        assert score.bit_error_rate == 0.5

    def test_missing_truth_rejected(self):
        with pytest.raises(AnalysisError):
            score_recovery({"a": 1}, {"b": 1})

    def test_empty_recovery_rejected(self):
        with pytest.raises(AnalysisError):
            score_recovery({}, {})

    def test_grouped_accuracy(self):
        score = score_recovery(
            {"a": 1, "b": 0, "c": 1}, {"a": 1, "b": 1, "c": 1}
        )
        groups = {"a": 1000.0, "b": 1000.0, "c": 5000.0}
        accuracy = grouped_accuracy(score, groups)
        assert accuracy == {1000.0: 0.5, 5000.0: 1.0}

    def test_grouped_accuracy_missing_group_rejected(self):
        score = score_recovery({"a": 1}, {"a": 1})
        with pytest.raises(AnalysisError):
            grouped_accuracy(score, {})
