"""End-to-end tests of the two threat-model orchestrations."""

import pytest

from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.metrics import score_recovery
from repro.core.phases import CalibrationPhase
from repro.core.threat_model1 import ThreatModel1Attack
from repro.core.threat_model2 import ThreatModel2Attack
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.rng import RngFactory

PART = VIRTEX_ULTRASCALE_PLUS


def cloud_setup(fleet_size=2, age=200.0, seed=71):
    rng = RngFactory(seed)
    provider = CloudProvider(seed=rng.stream("provider"))
    fleet = build_fleet(PART, fleet_size, wear=cloud_wear_profile(age),
                        seed=rng.stream("fleet"))
    provider.create_region("eu-west-2", fleet)
    return provider, rng


class TestThreatModel1:
    def _published_target(self, marketplace, values, lengths):
        grid = PART.make_grid()
        routes = build_route_bank(grid, lengths)
        design = build_target_design(PART, routes, values, heater_dsps=512,
                                     name="victim-afi")
        listing = marketplace.publish(design.bitstream, publisher="victim",
                                      public_skeleton=True)
        return listing, design, routes

    def test_extracts_design_constants(self):
        provider, rng = cloud_setup()
        marketplace = Marketplace()
        values = [1, 0, 1, 0]
        listing, design, routes = self._published_target(
            marketplace, values, [5000.0, 5000.0, 10000.0, 10000.0]
        )
        attack = ThreatModel1Attack(
            provider=provider, marketplace=marketplace,
            afi_id=listing.afi_id, region="eu-west-2",
            seed=rng.stream("sensors"),
        )
        result = attack.run(burn_hours=48, measure_every_hours=4.0)
        truth = {r.name: v for r, v in zip(routes, values)}
        score = score_recovery(result.recovered_bits, truth)
        assert score.accuracy == 1.0
        assert len(result.bundle.series[routes[0].name]) == 13

    def test_attack_never_reads_sealed_values(self):
        """The attack consumes only the skeleton and TDC output."""
        provider, rng = cloud_setup()
        marketplace = Marketplace()
        listing, _, _ = self._published_target(
            marketplace, [1, 0], [5000.0, 5000.0]
        )
        from repro.errors import AccessError

        with pytest.raises(AccessError):
            listing.image.static_values()

    def test_instance_released_after_attack(self):
        provider, rng = cloud_setup(fleet_size=1)
        marketplace = Marketplace()
        listing, _, _ = self._published_target(
            marketplace, [1], [5000.0]
        )
        attack = ThreatModel1Attack(
            provider=provider, marketplace=marketplace,
            afi_id=listing.afi_id, region="eu-west-2",
            seed=rng.stream("sensors"),
        )
        attack.run(burn_hours=16, measure_every_hours=4.0)
        # The device went back to the pool.
        provider.rent("eu-west-2", "next-tenant")

    def test_invalid_burn_hours_rejected(self):
        provider, rng = cloud_setup()
        attack = ThreatModel1Attack(
            provider=provider, marketplace=Marketplace(),
            afi_id="agfi-00000001", region="eu-west-2",
        )
        from repro.errors import AttackError

        with pytest.raises(AttackError):
            attack.run(burn_hours=0)


class TestThreatModel2:
    def test_recovers_user_data_after_wipe(self):
        provider, rng = cloud_setup(fleet_size=2, age=200.0, seed=73)
        grid = PART.make_grid()
        lengths = [5000.0, 5000.0, 10000.0, 10000.0]
        routes = build_route_bank(grid, lengths)
        values = [1, 0, 1, 0]
        victim_design = build_target_design(PART, routes, values,
                                            heater_dsps=3896)
        measure = build_measure_design(PART, routes)

        calib_instance = provider.rent("eu-west-2", "attacker-calib")
        calibration = CalibrationPhase(measure, seed=rng.stream("calib"))
        theta = dict(calibration.run(calib_instance).theta_init)
        provider.release(calib_instance)

        victim = provider.rent("eu-west-2", "victim")
        victim.load_image(victim_design.bitstream)
        provider.advance(100.0)
        provider.release(victim)

        attack = ThreatModel2Attack(
            provider=provider, region="eu-west-2", routes=routes,
            theta_init=theta, seed=73,
        )
        result = attack.run(recovery_hours=15)
        truth = {r.name: v for r, v in zip(routes, values)}
        score = score_recovery(result.recovered_bits, truth)
        assert result.devices_probed == 2
        assert score.accuracy >= 0.75

    def test_requires_minimum_window(self):
        provider, _ = cloud_setup()
        from repro.errors import AttackError

        attack = ThreatModel2Attack(
            provider=provider, region="eu-west-2", routes=[],
            theta_init={},
        )
        with pytest.raises(AttackError):
            attack.run(recovery_hours=2)

    def test_invalid_conditioned_to(self):
        provider, _ = cloud_setup()
        from repro.errors import AttackError

        attack = ThreatModel2Attack(
            provider=provider, region="eu-west-2", routes=[],
            theta_init={}, conditioned_to=2,
        )
        with pytest.raises(AttackError):
            attack.run(recovery_hours=10)
