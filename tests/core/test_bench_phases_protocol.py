"""Tests for the lab bench, experimental phases and the protocol loop."""

import pytest

from repro.errors import AttackError
from repro.core.bench import LabBench
from repro.core.phases import CalibrationPhase, ConditionPhase, MeasurementPhase
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.thermal import OvenAmbient
from repro.sensor.noise import LAB_NOISE


@pytest.fixture
def bench_setup():
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=61)
    bench = LabBench(device, oven=OvenAmbient(60.0))
    routes = build_route_bank(device.grid, [2000.0, 2000.0])
    target = build_target_design(device.part, routes, [1, 0], heater_dsps=0)
    measure = build_measure_design(device.part, routes)
    return bench, routes, target, measure


class TestLabBench:
    def test_ambient_set_at_construction(self, bench_setup):
        bench, _, _, _ = bench_setup
        assert bench.device.junction_k() > 330.0  # oven temperature seen

    def test_load_and_clear(self, bench_setup):
        bench, _, target, _ = bench_setup
        bench.load_image(target.bitstream)
        assert bench.device.loaded_design is not None
        bench.clear()
        assert bench.device.loaded_design is None

    def test_run_hours_advances_device(self, bench_setup):
        bench, _, target, _ = bench_setup
        bench.load_image(target.bitstream)
        bench.run_hours(3.0)
        assert bench.device.sim_hours == pytest.approx(3.0)

    def test_reload_swaps_design(self, bench_setup):
        bench, _, target, measure = bench_setup
        bench.load_image(target.bitstream)
        bench.load_image(measure.bitstream)
        assert bench.device.loaded_design.name == "measure"

    def test_invalid_image_rejected(self, bench_setup):
        bench, _, _, _ = bench_setup
        from repro.errors import FabricError

        with pytest.raises(FabricError):
            bench.load_image("not a bitstream")


class TestPhases:
    def test_calibration_populates_theta(self, bench_setup):
        bench, routes, _, measure = bench_setup
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=1)
        session = calibration.run(bench)
        assert set(session.theta_init) == {r.name for r in routes}

    def test_calibration_replays_prior_theta(self, bench_setup):
        bench, routes, _, measure = bench_setup
        theta = {r.name: 2800.0 for r in routes}
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=1)
        session = calibration.run(bench, theta_init=theta)
        assert session.theta_init == theta

    def test_condition_phase_loads_and_runs(self, bench_setup):
        bench, _, target, _ = bench_setup
        ConditionPhase(target_bitstream=target.bitstream, hours=2.0).run(bench)
        assert bench.device.sim_hours == pytest.approx(2.0)
        assert bench.device.loaded_design.name == target.bitstream.name

    def test_measurement_requires_calibration(self, bench_setup):
        bench, _, _, measure = bench_setup
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=1)
        measurement = MeasurementPhase(measure_design=measure,
                                       calibration=calibration)
        with pytest.raises(AttackError):
            measurement.run(bench)

    def test_measurement_returns_all_routes(self, bench_setup):
        bench, routes, _, measure = bench_setup
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=1)
        calibration.run(bench)
        measurement = MeasurementPhase(measure_design=measure,
                                       calibration=calibration)
        results = measurement.run(bench)
        assert set(results) == {r.name for r in routes}
        assert measurement.passes == 1


class TestProtocol:
    def test_run_cycles_builds_series(self, bench_setup):
        bench, routes, target, measure = bench_setup
        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
            condition_hours_per_cycle=1.0,
        )
        protocol.calibration.noise = LAB_NOISE
        protocol.calibrate()
        bundle = protocol.run_cycles(5)
        for series in bundle:
            assert len(series) == 6  # leading baseline + one per cycle

    def test_series_reflect_burn_direction(self, bench_setup):
        bench, routes, target, measure = bench_setup
        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
            condition_hours_per_cycle=4.0,
        )
        protocol.calibration.noise = LAB_NOISE
        protocol.calibrate()
        bundle = protocol.run_cycles(8)
        burn1 = bundle.series[routes[0].name].centered[-1]
        burn0 = bundle.series[routes[1].name].centered[-1]
        assert burn1 > 0.3
        assert burn0 < -0.3

    def test_target_for_cycle_override(self, bench_setup):
        bench, routes, target, measure = bench_setup
        complement = build_target_design(
            bench.device.part, routes, [0, 1], heater_dsps=0, name="flip"
        )
        loads = []

        def chooser(cycle):
            chosen = target.bitstream if cycle % 2 == 0 else complement.bitstream
            loads.append(chosen.name)
            return chosen

        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
        )
        protocol.calibration.noise = LAB_NOISE
        protocol.calibrate()
        protocol.run_cycles(4, target_for_cycle=chooser)
        assert loads == ["target", "flip", "target", "flip"]

    def test_invalid_cycles_rejected(self, bench_setup):
        bench, routes, target, measure = bench_setup
        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
        )
        with pytest.raises(AttackError):
            protocol.run_cycles(0)

    def test_invalid_interval_rejected(self, bench_setup):
        bench, routes, target, measure = bench_setup
        with pytest.raises(AttackError):
            ConditionMeasureProtocol(
                environment=bench,
                target_bitstream=target.bitstream,
                measure_design=measure,
                routes=routes,
                condition_hours_per_cycle=0.0,
            )
