"""Tests for sequential (SPRT) extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.analysis.timeseries import DeltaPsSeries
from repro.core.sequential import RouteDecision, SequentialExtractor, SprtConfig


def drifting_series(name, drift_per_hour, hours=60, noise=0.3,
                    length=5000.0, seed=1):
    rng = np.random.default_rng(seed)
    series = DeltaPsSeries(route_name=name, nominal_delay_ps=length)
    for hour in range(hours):
        series.append(
            float(hour),
            drift_per_hour * hour + float(rng.normal(0.0, noise)),
        )
    return series


class TestSprtConfig:
    def test_thresholds_from_error_rates(self):
        config = SprtConfig(alpha=0.01, beta=0.01)
        assert config.upper_threshold == pytest.approx(math.log(99.0))
        assert config.lower_threshold == pytest.approx(-math.log(99.0))

    def test_invalid_rates_rejected(self):
        with pytest.raises(AnalysisError):
            SprtConfig(alpha=0.0)
        with pytest.raises(AnalysisError):
            SprtConfig(beta=0.6)
        with pytest.raises(AnalysisError):
            SprtConfig(noise_sigma_ps=0.0)


class TestExtraction:
    def test_positive_drift_settles_as_one(self):
        extractor = SequentialExtractor()
        series = drifting_series("r", +0.05)
        state = extractor.update_from_series(series)
        assert state.settled_bit == 1
        assert state.settled_at_hour is not None

    def test_negative_drift_settles_as_zero(self):
        extractor = SequentialExtractor()
        state = extractor.update_from_series(drifting_series("r", -0.05))
        assert state.settled_bit == 0

    def test_longer_routes_settle_sooner(self):
        settle_hours = {}
        for length in (1000.0, 5000.0, 10000.0):
            extractor = SequentialExtractor()
            drift = 0.01 * length / 1000.0  # drift scales with length
            series = drifting_series("r", drift, length=length, hours=120)
            state = extractor.update_from_series(series)
            assert state.settled
            settle_hours[length] = state.settled_at_hour
        assert settle_hours[10000.0] < settle_hours[5000.0]
        assert settle_hours[5000.0] < settle_hours[1000.0]

    def test_pure_noise_rarely_settles_quickly(self):
        settled_early = 0
        for seed in range(10):
            extractor = SequentialExtractor()
            series = drifting_series("r", 0.0, hours=10, seed=seed)
            state = extractor.update_from_series(series)
            if state.settled:
                settled_early += 1
        assert settled_early <= 2

    def test_decisions_cover_unsettled_routes(self):
        extractor = SequentialExtractor()
        extractor.update_from_series(drifting_series("a", +0.002, hours=5))
        decisions = extractor.decisions()
        assert decisions["a"] in (0, 1)
        assert not extractor.all_settled()

    def test_all_settled_and_fraction(self):
        extractor = SequentialExtractor()
        assert extractor.settled_fraction() == 0.0
        extractor.update_from_series(drifting_series("a", +0.05))
        extractor.update_from_series(drifting_series("b", +0.001, hours=5))
        assert extractor.settled_fraction() == pytest.approx(0.5)
        assert not extractor.all_settled()

    def test_settled_routes_freeze(self):
        extractor = SequentialExtractor()
        state = extractor.update_from_series(drifting_series("r", +0.05))
        settled_at = state.settled_at_hour
        # Contradictory later data does not flip a settled decision.
        extractor.update("r", 5000.0, 200.0, -50.0)
        assert extractor.decisions()["r"] == 1
        assert extractor.settle_times()["r"] == settled_at

    def test_confidence_increases_with_evidence(self):
        extractor = SequentialExtractor()
        series = drifting_series("r", +0.05, hours=30)
        confidences = []
        for hour, value in zip(series.hours, series.raw_delta_ps):
            extractor.update("r", 5000.0, hour, value)
            confidences.append(extractor.confidence("r"))
        assert confidences[-1] > confidences[1]
        assert confidences[-1] > 0.95

    def test_backwards_time_rejected(self):
        extractor = SequentialExtractor()
        extractor.update("r", 5000.0, 0.0, 0.0)
        extractor.update("r", 5000.0, 1.0, 0.1)
        with pytest.raises(AnalysisError):
            extractor.update("r", 5000.0, 0.5, 0.1)

    def test_unknown_route_confidence_rejected(self):
        with pytest.raises(AnalysisError):
            SequentialExtractor().confidence("ghost")

    def test_empty_series_rejected(self):
        empty = DeltaPsSeries(route_name="e", nominal_delay_ps=1000.0)
        with pytest.raises(AnalysisError):
            SequentialExtractor().update_from_series(empty)

    @given(drift=st.floats(min_value=0.06, max_value=0.2),
           seed=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_settled_bit_matches_drift_sign(self, drift, seed):
        # Drifts clearly above the noise floor (>= 0.06 ps/h vs 0.3 ps
        # noise); weaker signals may mis-settle at the configured error
        # rates, which is the SPRT's contract, not a bug.
        for sign, bit in ((+1.0, 1), (-1.0, 0)):
            extractor = SequentialExtractor()
            series = drifting_series("r", sign * drift, hours=80, seed=seed)
            state = extractor.update_from_series(series)
            if state.settled:
                assert state.settled_bit == bit
