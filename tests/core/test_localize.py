"""Tests for skeleton-free imprint localisation (the future-work module)."""

import pytest

from repro.errors import AttackError
from repro.core.bench import LabBench
from repro.core.localize import (
    ImprintScanner,
    candidate_segments,
    cluster_imprints,
)
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.geometry import Coordinate
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.routing import SegmentId
from repro.fabric.segments import SegmentKind
from repro.sensor.noise import LAB_NOISE
from repro.units import celsius_to_kelvin


class TestCandidateEnumeration:
    def test_enumerates_requested_window(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        candidates = candidate_segments(grid, columns=[0, 3], tracks=2)
        assert all(s.origin.x in (0, 3) for s in candidates)
        assert all(s.kind is SegmentKind.LONG for s in candidates)
        assert all(s.track in (0, 1) for s in candidates)
        # 64 rows fit 5 LONG spans; 2 columns x 5 positions x 2 tracks.
        assert len(candidates) == 20

    def test_empty_window_rejected(self):
        grid = ZYNQ_ULTRASCALE_PLUS.make_grid()
        with pytest.raises(AttackError):
            candidate_segments(grid, columns=[], tracks=1)


class TestClustering:
    def _segment(self, x, y, track=0):
        return SegmentId(SegmentKind.LONG, Coordinate(x, y), track)

    def test_nearby_segments_cluster(self):
        flagged = [self._segment(0, 0), self._segment(0, 12),
                   self._segment(1, 24)]
        clusters = cluster_imprints(flagged)
        assert len(clusters) == 1
        assert len(clusters[0]) == 3

    def test_distant_segments_split(self):
        flagged = [self._segment(0, 0), self._segment(40, 48)]
        clusters = cluster_imprints(flagged)
        assert len(clusters) == 2

    def test_empty_input(self):
        assert cluster_imprints([]) == []


class TestScanner:
    @pytest.fixture(scope="class")
    def scanned(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=33)
        bench = LabBench(device)
        routes = build_route_bank(device.grid, [5000.0, 5000.0])
        target = build_target_design(device.part, routes, [1, 0],
                                     heater_dsps=0)
        device.load(target.bitstream)
        device.advance_hours(400.0, celsius_to_kelvin(85.0))
        device.wipe()
        candidates = candidate_segments(device.grid, columns=range(0, 5),
                                        tracks=2)
        # Localisation works per-segment signal, so the scan leans on
        # measurement averaging (16 passes/observation) and a strict
        # threshold against the scan's own one-sided null; the burn here
        # is hot/long enough that every seed realisation separates.
        scanner = ImprintScanner(
            environment=bench, grid=device.grid, noise=LAB_NOISE,
            seed=7, z_threshold=3.5, measurement_passes=16,
        )
        result = scanner.scan(candidates, observation_hours=12)
        return result, set(routes[0].segments), set(routes[1].segments)

    def test_flags_only_burn_one_segments(self, scanned):
        result, burn1, burn0 = scanned
        assert result.flagged_count >= 2
        for segment in result.flagged:
            assert segment in burn1
            assert segment not in burn0

    def test_series_recorded_per_probe(self, scanned):
        result, _, _ = scanned
        assert len(result.series) == len(result.segment_for_probe)
        assert all(len(s) == 13 for s in result.series.values())

    def test_clusters_localise_victim_columns(self, scanned):
        result, burn1, _ = scanned
        victim_columns = {s.origin.x for s in burn1}
        for chain in cluster_imprints(result.flagged):
            assert {s.origin.x for s in chain} <= victim_columns

    def test_too_short_observation_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=34)
        scanner = ImprintScanner(environment=LabBench(device),
                                 grid=device.grid)
        with pytest.raises(AttackError):
            scanner.scan([SegmentId(SegmentKind.LONG, Coordinate(0, 0), 0)],
                         observation_hours=1)

    def test_no_candidates_rejected(self):
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=35)
        scanner = ImprintScanner(environment=LabBench(device),
                                 grid=device.grid)
        with pytest.raises(AttackError):
            scanner.scan([], observation_hours=5)
