"""Unit tests for the trap-pool stress/recovery kinetics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.physics.constants import (
    HIGH_POOL,
    LOW_POOL,
    REFERENCE_STRESS_HOURS,
    REFERENCE_TEMPERATURE_K,
)
from repro.physics.kinetics import REFILL_PENALTY, TrapPool


def make_pool(amplitude=1.0, params=HIGH_POOL):
    return TrapPool(params=params, amplitude_ps=amplitude)


class TestStress:
    def test_fresh_pool_has_no_charge(self):
        assert make_pool().charge_ps == 0.0

    def test_reference_stress_reaches_amplitude(self):
        pool = make_pool(amplitude=2.0)
        pool.stress(REFERENCE_STRESS_HOURS, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(2.0)

    def test_stress_is_monotone_in_time(self):
        pool = make_pool()
        charges = []
        for _ in range(10):
            pool.stress(10.0, REFERENCE_TEMPERATURE_K)
            charges.append(pool.charge_ps)
        assert charges == sorted(charges)

    def test_power_law_sublinearity(self):
        short, long_ = make_pool(), make_pool()
        short.stress(50.0, REFERENCE_TEMPERATURE_K)
        long_.stress(200.0, REFERENCE_TEMPERATURE_K)
        # 4x the time yields less than 4x the charge (n < 1).
        assert long_.charge_ps < 4.0 * short.charge_ps
        # The expected ratio is 4**n.
        expected = 4.0 ** HIGH_POOL.stress_exponent
        assert long_.charge_ps / short.charge_ps == pytest.approx(expected)

    def test_split_stress_equals_continuous_stress(self):
        split, continuous = make_pool(), make_pool()
        for _ in range(20):
            split.stress(10.0, REFERENCE_TEMPERATURE_K)
        continuous.stress(200.0, REFERENCE_TEMPERATURE_K)
        assert split.charge_ps == pytest.approx(continuous.charge_ps)

    def test_higher_temperature_accelerates(self):
        cool, hot = make_pool(), make_pool()
        cool.stress(100.0, REFERENCE_TEMPERATURE_K - 20.0)
        hot.stress(100.0, REFERENCE_TEMPERATURE_K + 20.0)
        assert hot.charge_ps > cool.charge_ps

    def test_device_age_suppresses_increment(self):
        fresh, aged = make_pool(), make_pool()
        fresh.stress(100.0, REFERENCE_TEMPERATURE_K, device_age_hours=0.0)
        aged.stress(100.0, REFERENCE_TEMPERATURE_K, device_age_hours=4000.0)
        assert aged.charge_ps < 0.2 * fresh.charge_ps

    def test_duty_scales_effective_time(self):
        full, half = make_pool(), make_pool()
        full.stress(100.0, REFERENCE_TEMPERATURE_K)
        half.stress(200.0, REFERENCE_TEMPERATURE_K, duty=0.5)
        assert half.charge_ps == pytest.approx(full.charge_ps)

    def test_zero_duration_is_noop(self):
        pool = make_pool()
        pool.stress(50.0, REFERENCE_TEMPERATURE_K)
        before = pool.charge_ps
        pool.stress(0.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == before

    def test_negative_duration_rejected(self):
        with pytest.raises(PhysicsError):
            make_pool().stress(-1.0, REFERENCE_TEMPERATURE_K)

    def test_invalid_duty_rejected(self):
        with pytest.raises(PhysicsError):
            make_pool().stress(1.0, REFERENCE_TEMPERATURE_K, duty=1.5)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(PhysicsError):
            TrapPool(params=HIGH_POOL, amplitude_ps=-1.0)


class TestRecovery:
    def _stressed_pool(self, params=HIGH_POOL):
        pool = make_pool(params=params)
        pool.stress(REFERENCE_STRESS_HOURS, REFERENCE_TEMPERATURE_K)
        return pool

    def test_release_decays_charge(self):
        pool = self._stressed_pool()
        peak = pool.charge_ps
        pool.release(50.0, REFERENCE_TEMPERATURE_K)
        assert 0.0 < pool.charge_ps < peak

    def test_release_is_monotone(self):
        pool = self._stressed_pool()
        values = []
        for _ in range(10):
            pool.release(20.0, REFERENCE_TEMPERATURE_K)
            values.append(pool.charge_ps)
        assert values == sorted(values, reverse=True)

    def test_high_pool_recovers_faster_than_low(self):
        high = self._stressed_pool(HIGH_POOL)
        low = self._stressed_pool(LOW_POOL)
        high_peak, low_peak = high.charge_ps, low.charge_ps
        high.release(100.0, REFERENCE_TEMPERATURE_K)
        low.release(100.0, REFERENCE_TEMPERATURE_K)
        assert high.charge_ps / high_peak < 0.2
        assert low.charge_ps / low_peak > 0.7

    def test_stretched_exponential_form(self):
        pool = self._stressed_pool()
        peak = pool.charge_ps
        pool.release(64.0, REFERENCE_TEMPERATURE_K)
        tau = HIGH_POOL.recovery_tau_hours
        beta = HIGH_POOL.recovery_beta
        expected = peak * math.exp(-((64.0 / tau) ** beta))
        assert pool.charge_ps == pytest.approx(expected)

    def test_release_of_empty_pool_is_noop(self):
        pool = make_pool()
        pool.release(100.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == 0.0


class TestRestress:
    def test_short_gap_costs_almost_nothing(self):
        """A one-minute measurement gap must behave like continuous
        conditioning (the Experiments 1-2 interleave)."""
        gapped, continuous = make_pool(), make_pool()
        for _ in range(50):
            gapped.stress(1.0, REFERENCE_TEMPERATURE_K)
            gapped.release(1.0 / 60.0, REFERENCE_TEMPERATURE_K)
        continuous.stress(50.0, REFERENCE_TEMPERATURE_K)
        assert gapped.charge_ps == pytest.approx(continuous.charge_ps, rel=0.05)

    def test_ac_stress_matches_refill_penalty(self):
        """One-hour-on/one-hour-off stress accumulates equivalent time at
        (1 - REFILL_PENALTY) per off-hour refund."""
        ac = make_pool()
        for _ in range(100):
            ac.stress(1.0, REFERENCE_TEMPERATURE_K)
            ac.release(1.0, REFERENCE_TEMPERATURE_K)
        # Re-enter stress so the refill snaps the charge back onto the
        # curve (comparing mid-recovery states would be apples/oranges).
        ac.stress(1e-6, REFERENCE_TEMPERATURE_K)
        # Net equivalent time: 100 on-hours minus 100*penalty refunds.
        expected_hours = 100.0 - 100.0 * REFILL_PENALTY
        reference = make_pool()
        reference.stress(expected_hours, REFERENCE_TEMPERATURE_K)
        assert ac.charge_ps == pytest.approx(reference.charge_ps, rel=0.1)

    def test_restress_never_exceeds_continuous(self):
        gapped, continuous = make_pool(), make_pool()
        for _ in range(10):
            gapped.stress(5.0, REFERENCE_TEMPERATURE_K)
            gapped.release(2.0, REFERENCE_TEMPERATURE_K)
        continuous.stress(70.0, REFERENCE_TEMPERATURE_K)
        assert gapped.charge_ps <= continuous.charge_ps * 1.001


class TestPreload:
    def test_preload_sets_charge(self):
        pool = make_pool()
        pool.preload(0.5)
        assert pool.charge_ps == pytest.approx(0.5)

    def test_preload_lands_on_stress_curve(self):
        pool = make_pool()
        pool.preload(0.5)
        t_eq = pool.equivalent_stress_hours
        reference = make_pool()
        reference.stress(t_eq, REFERENCE_TEMPERATURE_K)
        assert reference.charge_ps == pytest.approx(0.5, rel=1e-6)

    def test_negative_preload_rejected(self):
        with pytest.raises(PhysicsError):
            make_pool().preload(-0.1)


class TestEdgePaths:
    def test_preload_then_restress_continues_curve(self):
        """Stress applied after a preload continues the power-law curve
        from the preload's implied equivalent time."""
        pool = make_pool()
        pool.preload(0.5)
        t_eq = pool.equivalent_stress_hours
        pool.stress(50.0, REFERENCE_TEMPERATURE_K)
        reference = make_pool()
        reference.stress(t_eq + 50.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(reference.charge_ps)

    def test_preload_after_recovery_keeps_wall_hours_discount(self):
        """Preload deliberately leaves recovery wall hours untouched, so
        a preload mid-recovery re-enters the curve with the refill
        discount of the elapsed gap applied."""
        pool = make_pool()
        pool.stress(100.0, REFERENCE_TEMPERATURE_K)
        pool.release(10.0, REFERENCE_TEMPERATURE_K)
        pool.preload(0.3)
        # 100 frozen hours minus REFILL_PENALTY * 10 wall hours.
        expected = 100.0 - REFILL_PENALTY * 10.0
        assert pool.equivalent_stress_hours == pytest.approx(expected)
        assert pool.charge_ps == pytest.approx(0.3)

    def test_zero_amplitude_pool_never_charges(self):
        pool = make_pool(amplitude=0.0)
        pool.stress(500.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == 0.0
        pool.release(100.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == 0.0

    def test_zero_amplitude_pool_preload_survives_restress(self):
        """A zero-amplitude pool cannot place preloaded charge on any
        stress curve (rate is zero), but the charge itself must persist
        through subsequent stress and still decay under release."""
        pool = make_pool(amplitude=0.0)
        pool.preload(0.4)
        assert pool.charge_ps == pytest.approx(0.4)
        assert pool.equivalent_stress_hours == 0.0
        pool.stress(100.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(0.4)
        pool.release(50.0, REFERENCE_TEMPERATURE_K)
        assert 0.0 < pool.charge_ps < 0.4

    def test_full_refund_restarts_curve_from_decayed_charge(self):
        """At the t_new == 0 boundary (the recovery gap refunds the whole
        accumulated equivalent time) the curve restarts from the time the
        surviving decayed charge implies -- not from zero charge."""
        pool = make_pool()
        pool.stress(10.0, REFERENCE_TEMPERATURE_K)
        # REFILL_PENALTY * 20 wall hours == the 10 accumulated hours.
        pool.release(20.0, REFERENCE_TEMPERATURE_K)
        remainder = pool.charge_ps
        assert remainder > 0.0
        pool.stress(1e-9, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(remainder, rel=1e-6)
        n = HIGH_POOL.stress_exponent
        implied = (remainder / (1.0 / REFERENCE_STRESS_HOURS**n)) ** (1.0 / n)
        assert pool.equivalent_stress_hours == pytest.approx(
            implied, rel=1e-6
        )

    def test_overlong_gap_still_restarts_from_remainder(self):
        """Past the boundary (gap refund exceeds accumulated time) the
        behaviour is the same restart-from-remainder, clamped at zero."""
        pool = make_pool()
        pool.stress(10.0, REFERENCE_TEMPERATURE_K)
        pool.release(500.0, REFERENCE_TEMPERATURE_K)
        remainder = pool.charge_ps
        # The curve restarts near t = 0 where the power law is steep, so
        # even an epsilon of re-stress adds a visible sliver of charge.
        pool.stress(1e-9, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(remainder, rel=1e-4)
        assert pool.charge_ps >= remainder
        assert pool.equivalent_stress_hours < 10.0


class TestProperties:
    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_charge_never_negative_under_any_schedule(self, durations):
        pool = make_pool()
        for i, duration in enumerate(durations):
            if i % 2 == 0:
                pool.stress(duration, REFERENCE_TEMPERATURE_K)
            else:
                pool.release(duration, REFERENCE_TEMPERATURE_K)
            assert pool.charge_ps >= 0.0

    @given(hours=st.floats(min_value=0.1, max_value=2000.0))
    @settings(max_examples=50, deadline=None)
    def test_stress_charge_bounded_by_power_law(self, hours):
        pool = make_pool(amplitude=1.0)
        pool.stress(hours, REFERENCE_TEMPERATURE_K)
        bound = (hours / REFERENCE_STRESS_HOURS) ** HIGH_POOL.stress_exponent
        assert pool.charge_ps <= bound * 1.0001

    @given(
        stress_h=st.floats(min_value=1.0, max_value=500.0),
        release_h=st.floats(min_value=0.1, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_release_never_increases_charge(self, stress_h, release_h):
        pool = make_pool()
        pool.stress(stress_h, REFERENCE_TEMPERATURE_K)
        before = pool.charge_ps
        pool.release(release_h, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps <= before
