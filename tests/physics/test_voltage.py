"""Tests for the voltage-acceleration dimension of the BTI model."""

import math

import pytest

from repro.errors import ConfigurationError, FabricError
from repro.physics.constants import (
    HIGH_POOL,
    REFERENCE_TEMPERATURE_K,
    REFERENCE_VOLTAGE_V,
    VOLTAGE_GAMMA_PER_V,
    voltage_acceleration,
)
from repro.physics.kinetics import TrapPool


class TestVoltageAcceleration:
    def test_unity_at_nominal(self):
        assert voltage_acceleration(REFERENCE_VOLTAGE_V) == pytest.approx(1.0)

    def test_exponential_form(self):
        assert voltage_acceleration(0.80) == pytest.approx(
            math.exp(VOLTAGE_GAMMA_PER_V * -0.05)
        )

    def test_overvolting_accelerates(self):
        assert voltage_acceleration(0.90) > 1.0

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            voltage_acceleration(0.0)


class TestPoolVoltage:
    def _charge_at(self, voltage):
        pool = TrapPool(params=HIGH_POOL, amplitude_ps=1.0)
        pool.stress(100.0, REFERENCE_TEMPERATURE_K, voltage_v=voltage)
        return pool.charge_ps

    def test_default_matches_nominal(self):
        explicit = self._charge_at(REFERENCE_VOLTAGE_V)
        pool = TrapPool(params=HIGH_POOL, amplitude_ps=1.0)
        pool.stress(100.0, REFERENCE_TEMPERATURE_K)
        assert pool.charge_ps == pytest.approx(explicit)

    def test_undervolting_shrinks_charge_sublinearly(self):
        """The power law blunts rate suppression to rate**n on charge --
        the reason undervolting alone cannot stop the attack (bench A8)."""
        nominal = self._charge_at(0.85)
        undervolted = self._charge_at(0.80)
        rate_factor = voltage_acceleration(0.80)
        expected = nominal * rate_factor**HIGH_POOL.stress_exponent
        assert undervolted == pytest.approx(expected, rel=0.01)
        assert undervolted > nominal * rate_factor  # blunted, not full

    def test_monotone_in_voltage(self):
        charges = [self._charge_at(v) for v in (0.72, 0.80, 0.85, 0.90)]
        assert charges == sorted(charges)


class TestDeviceVoltage:
    def test_device_voltage_propagates_to_imprint(self):
        from repro.designs import build_route_bank, build_target_design
        from repro.fabric.device import FpgaDevice
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS

        def burn(voltage):
            device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=77)
            device.set_core_voltage(voltage)
            routes = build_route_bank(device.grid, [5000.0])
            design = build_target_design(device.part, routes, [1],
                                         heater_dsps=0)
            device.load(design.bitstream)
            device.advance_hours(48.0, REFERENCE_TEMPERATURE_K)
            return device.route_delta_ps(routes[0])

        assert burn(0.78) < burn(0.85)

    def test_invalid_device_voltage_rejected(self):
        from repro.fabric.device import FpgaDevice
        from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS

        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=1)
        with pytest.raises(FabricError):
            device.set_core_voltage(-0.1)
