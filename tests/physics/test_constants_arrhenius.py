"""Tests for mechanism parameters, age suppression and Arrhenius factors."""

import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.arrhenius import (
    arrhenius_factor,
    recovery_acceleration,
    stress_acceleration,
)
from repro.physics.constants import (
    HIGH_POOL,
    LOW_POOL,
    REFERENCE_TEMPERATURE_K,
    MechanismParams,
    age_suppression,
)


class TestMechanismParams:
    def test_high_pool_larger_amplitude(self):
        """Section 3: the effect of the 1-stressed pool is larger."""
        assert HIGH_POOL.amplitude_scale > LOW_POOL.amplitude_scale

    def test_high_pool_recovers_much_faster(self):
        assert HIGH_POOL.recovery_tau_hours < LOW_POOL.recovery_tau_hours / 100

    @pytest.mark.parametrize("field,value", [
        ("stress_exponent", 0.0),
        ("stress_exponent", 1.0),
        ("amplitude_scale", 0.0),
        ("recovery_tau_hours", -1.0),
        ("recovery_beta", 0.0),
        ("recovery_beta", 1.5),
    ])
    def test_invalid_params_rejected(self, field, value):
        kwargs = dict(
            name="x", stress_exponent=0.3, amplitude_scale=1.0,
            recovery_tau_hours=10.0, recovery_beta=0.5,
            ea_stress_ev=0.5, ea_recovery_ev=0.2,
        )
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            MechanismParams(**kwargs)


class TestAgeSuppression:
    def test_new_device_unsuppressed(self):
        assert age_suppression(0.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        values = [age_suppression(a) for a in (0, 100, 500, 2000, 4000, 10000)]
        assert values == sorted(values, reverse=True)

    def test_cloud_age_order_of_magnitude(self):
        """The Experiment 1 vs 2 anchor: ~10x smaller on cloud parts."""
        assert 0.05 < age_suppression(4000.0) < 0.15

    def test_negative_age_rejected(self):
        with pytest.raises(ConfigurationError):
            age_suppression(-1.0)


class TestArrhenius:
    def test_unity_at_reference(self):
        assert arrhenius_factor(REFERENCE_TEMPERATURE_K, 0.5) == pytest.approx(1.0)

    def test_above_reference_accelerates(self):
        assert arrhenius_factor(REFERENCE_TEMPERATURE_K + 10.0, 0.5) > 1.0

    def test_below_reference_decelerates(self):
        assert arrhenius_factor(REFERENCE_TEMPERATURE_K - 10.0, 0.5) < 1.0

    def test_zero_activation_energy_is_flat(self):
        assert arrhenius_factor(400.0, 0.0) == pytest.approx(1.0)

    def test_stress_more_sensitive_than_recovery(self):
        hot = REFERENCE_TEMPERATURE_K + 15.0
        assert stress_acceleration(HIGH_POOL, hot) > recovery_acceleration(
            HIGH_POOL, hot
        )

    def test_invalid_temperature_rejected(self):
        with pytest.raises(PhysicsError):
            arrhenius_factor(0.0, 0.5)
        with pytest.raises(PhysicsError):
            arrhenius_factor(-10.0, 0.5)
