"""Equivalence suite for the structure-of-arrays aging engine.

The acceptance pin of the vectorised kernel: :class:`TrapPoolArray` and
:class:`SegmentBtiArray` must be *bit-identical* to the scalar
:class:`TrapPool` / :class:`SegmentBti` reference across randomised
stress/release/re-stress/preload schedule sweeps.  Every comparison in
this file is exact equality, not approx.
"""

import numpy as np
import pytest

from repro.errors import PhysicsError
from repro.physics.bti import SegmentBti, SegmentTraits
from repro.physics.constants import (
    HIGH_POOL,
    LOW_POOL,
    REFERENCE_TEMPERATURE_K,
)
from repro.physics.kinetics import TrapPool
from repro.physics.pool_array import (
    AGING_KERNELS,
    SegmentBtiArray,
    TrapPoolArray,
    aging_kernel,
    get_aging_kernel,
    set_aging_kernel,
)

REF_K = REFERENCE_TEMPERATURE_K


class TestKernelKnobs:
    def test_known_kernels(self):
        assert AGING_KERNELS == ("array", "scalar")
        assert get_aging_kernel() in AGING_KERNELS

    def test_set_returns_previous_default(self):
        previous = set_aging_kernel("scalar")
        try:
            assert get_aging_kernel() == "scalar"
        finally:
            set_aging_kernel(previous)
        assert get_aging_kernel() == previous

    def test_context_manager_restores(self):
        before = get_aging_kernel()
        with aging_kernel("scalar"):
            assert get_aging_kernel() == "scalar"
        assert get_aging_kernel() == before

    def test_context_manager_restores_on_error(self):
        before = get_aging_kernel()
        with pytest.raises(RuntimeError):
            with aging_kernel("scalar"):
                raise RuntimeError("boom")
        assert get_aging_kernel() == before

    def test_unknown_kernel_rejected(self):
        with pytest.raises(PhysicsError):
            set_aging_kernel("quantum")


class TestTrapPoolArrayBasics:
    def test_add_pool_returns_dense_indices(self):
        pools = TrapPoolArray(HIGH_POOL, capacity=2)
        assert [pools.add_pool(1.0) for _ in range(5)] == [0, 1, 2, 3, 4]
        assert len(pools) == 5

    def test_growth_preserves_state(self):
        pools = TrapPoolArray(HIGH_POOL, capacity=1)
        pools.add_pool(1.0)
        pools.stress([0], 10.0, REF_K)
        before = pools.charge_ps[0]
        for _ in range(40):  # force several doublings
            pools.add_pool(1.0)
        assert pools.charge_ps[0] == before

    def test_negative_amplitude_rejected(self):
        with pytest.raises(PhysicsError):
            TrapPoolArray(HIGH_POOL).add_pool(-1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PhysicsError):
            TrapPoolArray(HIGH_POOL, capacity=0)

    def test_invalid_interval_rejected(self):
        pools = TrapPoolArray(HIGH_POOL)
        pools.add_pool(1.0)
        with pytest.raises(PhysicsError):
            pools.stress([0], -1.0, REF_K)
        with pytest.raises(PhysicsError):
            pools.release([0], 1.0, 0.0)
        with pytest.raises(PhysicsError):
            pools.stress([0], 1.0, REF_K, duty=1.5)
        with pytest.raises(PhysicsError):
            pools.preload([0], -0.1)

    def test_view_bounds_checked(self):
        pools = TrapPoolArray(HIGH_POOL)
        pools.add_pool(1.0)
        with pytest.raises(PhysicsError):
            pools.view(1)

    def test_empty_index_set_is_noop(self):
        pools = TrapPoolArray(HIGH_POOL)
        pools.add_pool(1.0)
        pools.stress([], 10.0, REF_K)
        pools.release([], 10.0, REF_K)
        assert pools.charge_ps[0] == 0.0


def _random_schedule(rng, steps=60):
    """A randomised stress/release/preload schedule (shared per test)."""
    ops = []
    for _ in range(steps):
        op = rng.choice(["stress", "release", "preload"], p=[0.5, 0.4, 0.1])
        if op == "stress":
            ops.append((
                "stress",
                float(rng.uniform(0.1, 30.0)),
                float(rng.uniform(REF_K - 30.0, REF_K + 60.0)),
                float(rng.uniform(0.0, 4000.0)),   # device age
                float(rng.choice([0.0, 0.25, 0.5, 1.0])),  # duty
                float(rng.uniform(0.80, 0.90)),    # voltage
            ))
        elif op == "release":
            ops.append((
                "release",
                float(rng.uniform(0.1, 50.0)),
                float(rng.uniform(REF_K - 30.0, REF_K + 60.0)),
            ))
        else:
            ops.append(("preload", float(rng.uniform(0.0, 1.0))))
    return ops


class TestTrapPoolArrayEquivalence:
    @pytest.mark.parametrize("params", [HIGH_POOL, LOW_POOL],
                             ids=["high", "low"])
    def test_bit_identical_over_random_schedules(self, params):
        """The acceptance pin: exact float equality with TrapPool over
        randomised stress/release/re-stress/preload sweeps."""
        rng = np.random.default_rng(42)
        n_pools = 17
        amplitudes = rng.uniform(0.0, 2.0, size=n_pools)
        amplitudes[3] = 0.0  # a zero-amplitude pool rides along
        scalars = [TrapPool(params=params, amplitude_ps=float(a))
                   for a in amplitudes]
        pools = TrapPoolArray(params, capacity=4)
        for a in amplitudes:
            pools.add_pool(float(a))
        all_idx = np.arange(n_pools)
        for step, op in enumerate(_random_schedule(rng)):
            # Alternate full-device and random-subset index sets.
            if step % 3 == 2:
                idx = rng.choice(all_idx, size=rng.integers(1, n_pools),
                                 replace=False)
            else:
                idx = all_idx
            if op[0] == "stress":
                _, hours, temp, age, duty, volt = op
                pools.stress(idx, hours, temp, device_age_hours=age,
                             duty=duty, voltage_v=volt)
                for i in idx:
                    scalars[i].stress(hours, temp, device_age_hours=age,
                                      duty=duty, voltage_v=volt)
            elif op[0] == "release":
                _, hours, temp = op
                pools.release(idx, hours, temp)
                for i in idx:
                    scalars[i].release(hours, temp)
            else:
                _, charge = op
                pools.preload(idx, charge)
                for i in idx:
                    scalars[i].preload(charge)
            for i in range(n_pools):
                assert pools.charge_ps[i] == scalars[i].charge_ps, (
                    f"step {step}: pool {i} diverged"
                )
                assert (pools.equivalent_stress_hours[i]
                        == scalars[i].equivalent_stress_hours)

    def test_per_element_duty_matches_scalar_loop(self):
        rng = np.random.default_rng(7)
        duties = rng.uniform(0.0, 1.0, size=8)
        scalars = [TrapPool(params=HIGH_POOL, amplitude_ps=1.0)
                   for _ in duties]
        pools = TrapPoolArray(HIGH_POOL)
        for _ in duties:
            pools.add_pool(1.0)
        pools.stress(np.arange(8), 24.0, REF_K, duty=duties)
        for i, duty in enumerate(duties):
            scalars[i].stress(24.0, REF_K, duty=float(duty))
            assert pools.charge_ps[i] == scalars[i].charge_ps

    def test_slot_view_matches_scalar_pool(self):
        pool = TrapPool(params=HIGH_POOL, amplitude_ps=1.5)
        pools = TrapPoolArray(HIGH_POOL)
        slot = pools.view(pools.add_pool(1.5))
        for obj in (pool, slot):
            obj.stress(12.0, REF_K, device_age_hours=100.0, duty=0.75)
            obj.release(6.0, REF_K)
            obj.stress(3.0, REF_K)
        assert slot.charge_ps == pool.charge_ps
        assert slot.equivalent_stress_hours == pool.equivalent_stress_hours
        assert slot.amplitude_ps == pool.amplitude_ps
        assert slot.params is pool.params


def _make_traits(rng):
    return SegmentTraits(
        rising_delay_ps=float(rng.uniform(50.0, 200.0)),
        falling_delay_ps=float(rng.uniform(50.0, 200.0)),
        burn_amplitude_ps=float(rng.uniform(0.0, 1.0)),
    )


class TestSegmentBtiArrayEquivalence:
    def test_bit_identical_over_random_segment_schedules(self):
        rng = np.random.default_rng(9)
        n_seg = 11
        traits = [_make_traits(rng) for _ in range(n_seg)]
        scalars = [SegmentBti(t) for t in traits]
        array = SegmentBtiArray()
        for t in traits:
            array.register(t)
        all_idx = np.arange(n_seg)
        for step in range(40):
            op = rng.choice(["hold1", "hold0", "toggle", "idle", "preload"])
            hours = float(rng.uniform(0.5, 24.0))
            temp = float(rng.uniform(REF_K - 20.0, REF_K + 40.0))
            age = float(rng.uniform(0.0, 2000.0))
            idx = (all_idx if step % 2 == 0 else
                   rng.choice(all_idx, size=rng.integers(1, n_seg),
                              replace=False))
            if op in ("hold1", "hold0"):
                value = 1 if op == "hold1" else 0
                array.hold(idx, value, hours, temp, device_age_hours=age)
                for i in idx:
                    scalars[i].hold(value, hours, temp, device_age_hours=age)
            elif op == "toggle":
                duty = rng.uniform(0.0, 1.0, size=idx.shape)
                array.toggle(idx, hours, temp, device_age_hours=age,
                             duty_high=duty)
                for i, d in zip(idx, duty):
                    scalars[i].toggle(hours, temp, device_age_hours=age,
                                      duty_high=float(d))
            elif op == "idle":
                array.idle(idx, hours, temp)
                for i in idx:
                    scalars[i].idle(hours, temp)
            else:
                high = float(rng.uniform(0.0, 0.5))
                low = float(rng.uniform(0.0, 0.5))
                array.preload_imprint(idx, high_charge_ps=high,
                                      low_charge_ps=low)
                for i in idx:
                    scalars[i].preload_imprint(high_charge_ps=high,
                                               low_charge_ps=low)
            deltas = array.delta_ps(all_idx)
            rising = array.rising_delay_ps(all_idx)
            falling = array.falling_delay_ps(all_idx)
            for i in range(n_seg):
                reference = scalars[i].transition_delays()
                assert deltas[i] == scalars[i].delta_ps, f"step {step}"
                assert rising[i] == reference.rising_ps
                assert falling[i] == reference.falling_ps

    def test_slot_duck_types_segment_bti(self):
        rng = np.random.default_rng(3)
        traits = _make_traits(rng)
        scalar = SegmentBti(traits)
        array = SegmentBtiArray()
        slot = array.view(array.register(traits))
        for obj in (scalar, slot):
            obj.preload_imprint(high_charge_ps=0.2, low_charge_ps=0.1)
            obj.hold(1, 12.0, REF_K, device_age_hours=500.0)
            obj.toggle(6.0, REF_K, duty_high=0.3)
            obj.idle(2.0, REF_K)
        assert slot.delta_ps == scalar.delta_ps
        assert slot.transition_delays() == scalar.transition_delays()
        assert slot.snapshot() == scalar.snapshot()
        assert slot.traits is scalar.traits or slot.traits == scalar.traits
        assert slot.high_pool.charge_ps == scalar.high_pool.charge_ps
        assert slot.low_pool.charge_ps == scalar.low_pool.charge_ps

    def test_invalid_hold_value_rejected(self):
        array = SegmentBtiArray()
        array.register(SegmentTraits(100.0, 100.0, 1.0))
        with pytest.raises(PhysicsError):
            array.hold([0], 2, 1.0, REF_K)

    def test_view_bounds_checked(self):
        array = SegmentBtiArray()
        with pytest.raises(PhysicsError):
            array.view(0)
