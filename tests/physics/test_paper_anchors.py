"""Calibration anchors: the physics must reproduce the paper's numbers.

These tests pin the model to the quantitative claims of Section 6.1
(Figure 6) and 6.2 (Figure 7) at the physics level, independent of the
sensor pipeline.  Route compositions come from the delay-targeting
router's switch counts.
"""

import pytest

from repro.fabric.router import compose_delay
from repro.fabric.segments import spec_for
from repro.physics.bti import SegmentBti, SegmentTraits
from repro.physics.constants import REFERENCE_TEMPERATURE_K


def burn_route(length_ps, hours=200, value=1, age0=0.0):
    """Condition one aggregated route-equivalent segment hourly."""
    switches = sum(spec_for(k).switch_count for k in compose_delay(length_ps))
    from repro.physics.constants import PS_PER_SWITCH_AT_REFERENCE

    seg = SegmentBti(
        SegmentTraits(
            rising_delay_ps=length_ps,
            falling_delay_ps=length_ps,
            burn_amplitude_ps=switches * PS_PER_SWITCH_AT_REFERENCE,
        )
    )
    age = age0
    for _ in range(hours):
        seg.hold(value, 1.0, REFERENCE_TEMPERATURE_K, device_age_hours=age)
        age += 1.0
    return seg, age


# The Figure 6 bands, new device at 60 C after 200 hours (in ps).
FIG6_BANDS = {
    1000.0: (1.0, 2.0),
    2000.0: (2.0, 3.0),
    5000.0: (5.0, 6.0),
    10000.0: (10.0, 11.0),
}


class TestFigure6Magnitudes:
    @pytest.mark.parametrize("length,band", sorted(FIG6_BANDS.items()))
    def test_burn_one_magnitude_in_band(self, length, band):
        seg, _ = burn_route(length)
        low, high = band
        # Nominal (variation-free) magnitude within 25% of the band.
        assert low * 0.75 <= seg.delta_ps <= high * 1.25

    @pytest.mark.parametrize("length", sorted(FIG6_BANDS))
    def test_burn_zero_is_mirrored(self, length):
        one, _ = burn_route(length, value=1)
        zero, _ = burn_route(length, value=0)
        assert zero.delta_ps < 0.0
        ratio = abs(zero.delta_ps) / one.delta_ps
        assert 0.8 <= ratio <= 1.0  # low pool slightly weaker

    def test_magnitude_grows_with_length(self):
        magnitudes = [burn_route(L)[0].delta_ps for L in sorted(FIG6_BANDS)]
        assert magnitudes == sorted(magnitudes)


class TestFigure7CloudSuppression:
    @pytest.mark.parametrize("length,cloud_max", [
        (1000.0, 0.2), (2000.0, 0.4), (5000.0, 1.0), (10000.0, 2.0),
    ])
    def test_aged_device_magnitudes_within_cloud_bands(self, length, cloud_max):
        seg, _ = burn_route(length, age0=4000.0)
        assert 0.0 < seg.delta_ps <= cloud_max * 1.3

    def test_suppression_is_order_of_magnitude(self):
        fresh, _ = burn_route(5000.0)
        aged, _ = burn_route(5000.0, age0=4000.0)
        assert 5.0 < fresh.delta_ps / aged.delta_ps < 20.0


class TestRecoveryTimescales:
    def test_burn_one_crossing_in_30_to_50_hours(self):
        seg, age = burn_route(5000.0)
        crossing = None
        for hour in range(200):
            seg.hold(0, 1.0, REFERENCE_TEMPERATURE_K, device_age_hours=age)
            age += 1.0
            if crossing is None and seg.delta_ps <= 0.0:
                crossing = hour + 1
        assert crossing is not None and 20 <= crossing <= 60

    def test_burn_zero_not_recovered_after_200_hours(self):
        seg, age = burn_route(5000.0, value=0)
        for _ in range(200):
            seg.hold(1, 1.0, REFERENCE_TEMPERATURE_K, device_age_hours=age)
            age += 1.0
        assert seg.delta_ps < 0.0
