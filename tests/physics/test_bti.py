"""Unit tests for per-segment BTI state and the paper's sign convention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.physics.bti import (
    SegmentBti,
    SegmentTraits,
    aggregate_delays,
    aggregate_delta_ps,
)
from repro.physics.constants import REFERENCE_TEMPERATURE_K

T_REF = REFERENCE_TEMPERATURE_K


def make_segment(amplitude=0.54, rising=450.0, falling=452.0):
    return SegmentBti(
        SegmentTraits(
            rising_delay_ps=rising,
            falling_delay_ps=falling,
            burn_amplitude_ps=amplitude,
        )
    )


class TestSignConvention:
    def test_hold_one_pushes_delta_positive(self):
        seg = make_segment()
        seg.hold(1, 100.0, T_REF)
        assert seg.delta_ps > 0.0

    def test_hold_zero_pushes_delta_negative(self):
        seg = make_segment()
        seg.hold(0, 100.0, T_REF)
        assert seg.delta_ps < 0.0

    def test_hold_one_slows_falling_transition(self):
        seg = make_segment()
        before = seg.transition_delays()
        seg.hold(1, 100.0, T_REF)
        after = seg.transition_delays()
        assert after.falling_ps > before.falling_ps
        assert after.rising_ps == pytest.approx(before.rising_ps)

    def test_hold_zero_slows_rising_transition(self):
        seg = make_segment()
        before = seg.transition_delays()
        seg.hold(0, 100.0, T_REF)
        after = seg.transition_delays()
        assert after.rising_ps > before.rising_ps
        assert after.falling_ps == pytest.approx(before.falling_ps)

    def test_invalid_value_rejected(self):
        with pytest.raises(PhysicsError):
            make_segment().hold(2, 1.0, T_REF)


class TestRecoveryAsymmetry:
    def test_burn_one_imprint_recovers_quickly(self):
        seg = make_segment()
        seg.hold(1, 200.0, T_REF)
        peak = seg.delta_ps
        seg.idle(100.0, T_REF)
        assert seg.delta_ps < 0.2 * peak

    def test_burn_zero_imprint_persists(self):
        seg = make_segment()
        seg.hold(0, 200.0, T_REF)
        trough = seg.delta_ps
        seg.idle(100.0, T_REF)
        assert seg.delta_ps < 0.7 * trough < 0.0  # still clearly negative

    def test_complement_hold_reverses_burn_one_within_50_hours(self):
        """The Figure 6 recovery band: burn-1 routes cross zero within
        30-50 hours of complemented conditioning."""
        seg = make_segment()
        age = 0.0
        for _ in range(200):
            seg.hold(1, 1.0, T_REF, device_age_hours=age)
            age += 1.0
        crossing = None
        for hour in range(200):
            seg.hold(0, 1.0, T_REF, device_age_hours=age)
            age += 1.0
            if crossing is None and seg.delta_ps <= 0.0:
                crossing = hour + 1
        assert crossing is not None
        assert 20 <= crossing <= 60

    def test_complement_hold_on_burn_zero_takes_over_200_hours(self):
        seg = make_segment()
        age = 0.0
        for _ in range(200):
            seg.hold(0, 1.0, T_REF, device_age_hours=age)
            age += 1.0
        for _ in range(200):
            seg.hold(1, 1.0, T_REF, device_age_hours=age)
            age += 1.0
        # Not recovered to positive within 200 hours (paper: "over 200").
        assert seg.delta_ps < 0.0


class TestToggle:
    def test_balanced_toggle_keeps_delta_small(self):
        seg = make_segment()
        seg.toggle(200.0, T_REF)
        held = make_segment()
        held.hold(1, 200.0, T_REF)
        assert abs(seg.delta_ps) < 0.3 * abs(held.delta_ps)

    def test_skewed_duty_biases_delta(self):
        seg = make_segment()
        seg.toggle(200.0, T_REF, duty_high=0.9)
        assert seg.delta_ps > 0.0

    def test_invalid_duty_rejected(self):
        with pytest.raises(PhysicsError):
            make_segment().toggle(1.0, T_REF, duty_high=1.2)

    def test_invalid_ac_factor_rejected(self):
        with pytest.raises(PhysicsError):
            make_segment().toggle(1.0, T_REF, ac_factor=-0.1)


class TestAggregation:
    def test_aggregate_delays_sums_segments(self):
        segments = [make_segment(), make_segment(), make_segment()]
        total = aggregate_delays(segments)
        assert total.rising_ps == pytest.approx(3 * 450.0)
        assert total.falling_ps == pytest.approx(3 * 452.0)

    def test_aggregate_delta_sums_imprints(self):
        segments = [make_segment() for _ in range(4)]
        for seg in segments:
            seg.hold(1, 100.0, T_REF)
        total = aggregate_delta_ps(segments)
        assert total == pytest.approx(4 * segments[0].delta_ps)

    def test_empty_aggregate_is_zero(self):
        assert aggregate_delta_ps([]) == 0.0


class TestSnapshotAndPreload:
    def test_snapshot_captures_state(self):
        seg = make_segment()
        seg.hold(1, 50.0, T_REF)
        snap = seg.snapshot()
        assert snap.delta_ps == pytest.approx(seg.delta_ps)
        assert snap.high_charge_ps > 0.0
        assert snap.low_charge_ps == 0.0

    def test_preload_imprint(self):
        seg = make_segment()
        seg.preload_imprint(high_charge_ps=0.1, low_charge_ps=0.04)
        assert seg.delta_ps == pytest.approx(0.06)

    def test_invalid_traits_rejected(self):
        with pytest.raises(PhysicsError):
            SegmentTraits(rising_delay_ps=0.0, falling_delay_ps=1.0,
                          burn_amplitude_ps=0.1)
        with pytest.raises(PhysicsError):
            SegmentTraits(rising_delay_ps=1.0, falling_delay_ps=1.0,
                          burn_amplitude_ps=-0.1)


class TestProperties:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=1),
                        min_size=1, max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_bounded_by_single_pool_maximum(self, values):
        """Under any hold schedule, |delta| never exceeds what holding a
        single value for the whole duration would have produced."""
        seg = make_segment()
        for value in values:
            seg.hold(value, 5.0, T_REF)
        bound = make_segment()
        bound.hold(1, 5.0 * len(values), T_REF)
        assert abs(seg.delta_ps) <= abs(bound.delta_ps) * 1.001

    @given(value=st.integers(min_value=0, max_value=1),
           hours=st.floats(min_value=0.1, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_delta_sign_matches_held_value(self, value, hours):
        seg = make_segment()
        seg.hold(value, hours, T_REF)
        if value == 1:
            assert seg.delta_ps > 0.0
        else:
            assert seg.delta_ps < 0.0
