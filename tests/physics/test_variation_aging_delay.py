"""Tests for process variation, wear profiles and the delay model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.aging import CLOUD_PART, NEW_PART, WearProfile
from repro.physics.delay import (
    TransitionDelays,
    alpha_power_delay_shift,
)
from repro.physics.variation import (
    DEFAULT_VARIATION,
    ProcessVariation,
    VariationParams,
)


class TestProcessVariation:
    def test_deterministic_per_seed(self):
        a = ProcessVariation(seed=7).sample_segment(100.0, 1.0)
        b = ProcessVariation(seed=7).sample_segment(100.0, 1.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = ProcessVariation(seed=7).sample_segment(100.0, 1.0)
        b = ProcessVariation(seed=8).sample_segment(100.0, 1.0)
        assert a != b

    def test_sample_near_nominal(self):
        rng = ProcessVariation(seed=1)
        samples = [rng.sample_segment(450.0, 0.5) for _ in range(500)]
        risings = np.array([s[0] for s in samples])
        amps = np.array([s[2] for s in samples])
        assert abs(risings.mean() - 450.0) < 5.0
        assert abs(amps.mean() - 0.5) < 0.05

    def test_die_to_die_delay_variation_stays_small(self):
        """theta_init portability (Experiment 3) requires ~1%-class
        die-to-die delay variation."""
        assert DEFAULT_VARIATION.delay_sigma <= 0.02

    def test_invalid_nominal_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(seed=1).sample_segment(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            ProcessVariation(seed=1).sample_segment(10.0, -1.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            VariationParams(delay_sigma=-0.1)


class TestWearProfiles:
    def test_new_part_is_pristine(self):
        assert NEW_PART.sample_age_hours(seed=1) == 0.0
        assert NEW_PART.sample_residual_imprints(1.0, seed=1) == (0.0, 0.0)

    def test_cloud_part_is_aged(self):
        ages = [CLOUD_PART.sample_age_hours(seed=i) for i in range(50)]
        assert all(age > 0.0 for age in ages)
        assert 2500.0 < np.mean(ages) < 5500.0

    def test_cloud_residuals_are_small_fractions(self):
        highs, lows = zip(*[
            CLOUD_PART.sample_residual_imprints(1.0, seed=i) for i in range(100)
        ])
        assert all(h >= 0.0 for h in highs)
        assert max(highs) < 0.5
        assert max(lows) < 0.5

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            WearProfile("x", age_mean_hours=-1.0, age_sigma_hours=0.0,
                        residual_imprint_fraction=0.0)
        with pytest.raises(ConfigurationError):
            WearProfile("x", age_mean_hours=0.0, age_sigma_hours=0.0,
                        residual_imprint_fraction=1.5)


class TestDelayModel:
    def test_delta_ps_definition(self):
        d = TransitionDelays(rising_ps=100.0, falling_ps=103.5)
        assert d.delta_ps == pytest.approx(3.5)

    def test_addition(self):
        a = TransitionDelays(10.0, 12.0)
        b = TransitionDelays(5.0, 4.0)
        total = a + b
        assert total.rising_ps == 15.0
        assert total.falling_ps == 16.0

    def test_zero(self):
        assert TransitionDelays.zero().delta_ps == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(PhysicsError):
            TransitionDelays(rising_ps=-1.0, falling_ps=1.0)

    def test_alpha_power_linear_in_vth(self):
        one = alpha_power_delay_shift(1000.0, 10.0)
        two = alpha_power_delay_shift(1000.0, 20.0)
        assert two == pytest.approx(2.0 * one)

    def test_alpha_power_scales_with_delay(self):
        short = alpha_power_delay_shift(1000.0, 10.0)
        long_ = alpha_power_delay_shift(10000.0, 10.0)
        assert long_ == pytest.approx(10.0 * short)

    def test_alpha_power_magnitude_plausible(self):
        # ~25 mV on a 1000 ps path at 0.53 V overdrive: tens of ps.
        shift = alpha_power_delay_shift(1000.0, 25.0)
        assert 20.0 < shift < 100.0

    def test_alpha_power_invalid_inputs(self):
        with pytest.raises(PhysicsError):
            alpha_power_delay_shift(-1.0, 10.0)
        with pytest.raises(PhysicsError):
            alpha_power_delay_shift(100.0, 10.0, vdd=0.3, vth=0.4)
