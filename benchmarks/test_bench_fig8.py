"""Benchmark F8: regenerate Figure 8 (Experiment 3, cloud Threat Model 2).

The victim burns X for 200 unobserved hours and releases; the attacker
flash-acquires the region, replays a-priori theta_init, and watches 25
hours of recovery while conditioning to 0.  Prints the panels (series
start at the attacker's hour 0 = the paper's hour 200) and the Type B
recovery statistics.
"""

import numpy as np

from conftest import routes_per_length

from repro.analysis.timeseries import length_class
from repro.experiments import (
    Experiment3Config,
    render_experiment_panels,
    run_experiment3,
)


def test_fig8_cloud_threat_model_2(benchmark, emit):
    config = Experiment3Config(
        routes_per_length=routes_per_length(), seed=3
    )
    result = benchmark.pedantic(
        lambda: run_experiment3(config), rounds=1, iterations=1
    )
    emit("\n" + render_experiment_panels(
        result.bundle, "Figure 8 (Experiment 3, cloud TM2)"
    ))
    emit(f"\nBoards probed (flash attack): {result.devices_probed}")
    emit(f"Type B recovery: {result.recovery_score}")
    emit(f"Accuracy by length: "
         f"{ {k: round(v, 2) for k, v in result.accuracy_by_length().items()} }")

    # The figure's visual claim: former burn-1 routes fall away from
    # former burn-0 routes during the recovery window (long routes).
    burn1, burn0 = [], []
    for series in result.bundle:
        if length_class(series.nominal_delay_ps) < 5000.0:
            continue
        scaled = series.centered[-1] / (series.nominal_delay_ps / 1000.0)
        (burn1 if series.burn_value == 1 else burn0).append(scaled)
    emit(f"Mean end-of-window drift per 1000 ps: burn-1 "
         f"{np.mean(burn1):+.3f} ps, burn-0 {np.mean(burn0):+.3f} ps")

    assert np.mean(burn1) < np.mean(burn0)
    assert result.recovery_score.accuracy > 0.55
    accuracy = result.accuracy_by_length()
    assert accuracy[10000.0] >= accuracy[1000.0]
    assert accuracy[10000.0] >= 0.75
