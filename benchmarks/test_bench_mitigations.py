"""Ablation A3: effectiveness of the Section 8 mitigations.

Runs the Threat Model 1 extraction against a victim defended by each
user-side schedule, plus the provider-side hold-back against Threat
Model 2, and reports the attacker's bit-error rate (0.0 = defenceless,
0.5 = perfect protection).
"""

from repro.analysis.report import render_table
from repro.designs import build_target_design
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.mitigations import (
    KeyRotationSchedule,
    PeriodicInversionSchedule,
    RelocationSchedule,
    ShufflingSchedule,
    StaticSchedule,
    evaluate_holdback,
    evaluate_schedule,
)
from repro.mitigations.evaluation import default_evaluation_routes
from repro.mitigations.relocation import build_relocation_banks

PART = ZYNQ_ULTRASCALE_PLUS
VALUES = [1, 0, 1, 1, 0, 0, 1, 0]


def evaluate_all():
    routes = default_evaluation_routes(
        PART, lengths=(5000.0,) * 4 + (10000.0,) * 4
    )
    grid = PART.make_grid()
    schedules = {
        "none (static secret)": StaticSchedule(
            build_target_design(PART, routes, VALUES, heater_dsps=0)
        ),
        "hourly inversion": PeriodicInversionSchedule(
            PART, routes, VALUES, period_epochs=1
        ),
        "per-epoch shuffling": ShufflingSchedule(
            PART, routes, VALUES, seed=8
        ),
        "key rotation (8 h)": KeyRotationSchedule(
            PART, routes, VALUES, period_epochs=4, seed=8
        ),
    }
    reports = {
        name: evaluate_schedule(
            schedule, routes, VALUES,
            burn_hours=48, measure_every_hours=2.0, seed=31,
        )
        for name, schedule in schedules.items()
    }
    # Relocation uses its own (disjoint) banks.
    banks = build_relocation_banks(grid, [5000.0] * 8, bank_count=2)
    relocation = RelocationSchedule(PART, banks, VALUES, period_epochs=6)
    reports["relocation (12 h)"] = evaluate_schedule(
        relocation, banks[0], VALUES,
        burn_hours=48, measure_every_hours=2.0, seed=31,
    )
    holdback = {
        hours: evaluate_holdback(
            float(hours),
            default_evaluation_routes(PART, lengths=(10000.0,) * 8),
            VALUES,
            victim_burn_hours=100,
            recovery_hours=15,
            seed=33,
        )
        for hours in (0, 72)
    }
    return reports, holdback


def test_ablation_mitigation_effectiveness(benchmark, emit):
    reports, holdback = benchmark.pedantic(evaluate_all, rounds=1,
                                           iterations=1)
    rows = [[name, f"{report.attacker_ber:.2f}"]
            for name, report in reports.items()]
    rows += [[f"provider hold-back {hours} h (TM2)",
              f"{report.attacker_ber:.2f}"]
             for hours, report in holdback.items()]
    emit("\n" + render_table(
        ["Mitigation", "attacker BER"],
        rows,
        title="Ablation A3: Section 8 mitigations vs pentimento extraction",
    ))
    baseline = reports["none (static secret)"].attacker_ber
    assert baseline <= 0.05
    assert reports["hourly inversion"].attacker_ber >= 0.3
    # Quarantine reduces the TM2 attacker's yield relative to immediate
    # reallocation.
    assert (holdback[72].score.accuracy
            <= holdback[0].score.accuracy)
