"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series next to the published values.  By
default the figure benchmarks run the full experiment *duration* with a
reduced route count (4 per length class instead of 16) so the whole
suite completes in minutes; set ``REPRO_BENCH_FULL=1`` for the paper's
exact scale.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def routes_per_length() -> int:
    return 16 if full_scale() else 4


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit
