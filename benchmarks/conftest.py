"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series next to the published values.  By
default the figure benchmarks run the full experiment *duration* with a
reduced route count (4 per length class instead of 16) so the whole
suite completes in minutes; set ``REPRO_BENCH_FULL=1`` for the paper's
exact scale.

Each session also writes ``BENCH_observability.json`` at the repo root:
per-benchmark wall times plus the observability metrics the run
accumulated, so the bench trajectory is machine-readable run over run.

Bench cases are isolated the same way tests are: the autouse
``clean_bench_observability`` fixture (mirroring ``clean_observability``
in ``tests/conftest.py``) gives every case a fresh process-global
metrics registry and span state, so one benchmark's counters cannot
leak into another's measurements.  Each case's instruments are folded
into a session-level accumulator before the reset, so the session
summary still reflects the whole run.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


# Benchmarks drive the CLI in-process; keep them from writing a run
# database into the repo unless a case opts in with its own tmp path.
os.environ["REPRO_RUNSTORE"] = "off"


#: Session-wide accumulator the per-case registries fold into; built
#: lazily so a broken ``repro`` import degrades to timings-only output.
_session_metrics = None


def _accumulator():
    global _session_metrics
    if _session_metrics is None:
        from repro.observability.metrics import MetricsRegistry

        _session_metrics = MetricsRegistry()
    return _session_metrics


@pytest.fixture(autouse=True)
def clean_bench_observability():
    """Every bench case starts with empty global metrics/span state.

    Mirrors the autouse reset in ``tests/conftest.py`` so counters
    cannot leak between bench cases; the case's instruments are merged
    into the session accumulator for the ``BENCH_observability.json``
    summary before being dropped.
    """
    from repro.observability import trace
    from repro.observability.metrics import registry

    registry.reset()
    trace.clear()
    trace.disable()
    yield
    _accumulator().merge_state(registry.dump_state())
    registry.reset()
    trace.clear()
    trace.disable()


def routes_per_length() -> int:
    return 16 if full_scale() else 4


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit


_durations: dict[str, float] = {}
_session_start = time.time()

#: Named result blocks benchmarks contribute to the session summary
#: (e.g. the ``series_overhead`` measurements): top-level keys merged
#: into ``BENCH_observability.json`` verbatim.
_extra_blocks: dict[str, dict] = {}


@pytest.fixture
def bench_block():
    """Publish a named result block into ``BENCH_observability.json``.

    Usage: ``bench_block("series_overhead", {...})``.  Re-publishing a
    name overwrites it, so a re-run bench reports its latest numbers.
    """

    def _publish(name: str, payload: dict) -> None:
        _extra_blocks[name] = payload

    return _publish


def pytest_runtest_logreport(report):
    """Collect per-benchmark call durations."""
    if report.when == "call" and report.passed:
        _durations[report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session):
    """Write the ``BENCH_observability.json`` timing summary."""
    if not _durations:
        return
    try:
        from repro import __version__
        from repro.observability.metrics import get_registry

        accumulated = _accumulator()
        # Anything recorded outside a bench case (collection hooks,
        # session fixtures) is still in the live registry; fold it in.
        accumulated.merge_state(get_registry().dump_state())
        metrics = accumulated.snapshot()
        version = __version__
    except Exception:  # repro not importable: still record the timings
        metrics, version = {}, "unknown"
    payload = {
        "suite": "benchmarks",
        "repro_version": version,
        "python_version": platform.python_version(),
        "full_scale": full_scale(),
        "started_unix": round(_session_start, 3),
        "total_seconds": round(time.time() - _session_start, 3),
        "benchmarks": dict(sorted(_durations.items())),
        "metrics": metrics,
    }
    payload.update(sorted(_extra_blocks.items()))
    target = os.path.join(str(session.config.rootpath),
                          "BENCH_observability.json")
    with open(target, "w") as handle:
        json.dump(payload, handle, indent=1)
