"""Benchmark F6: regenerate Figure 6 (Experiment 1, lab environment).

A factory-new ZCU102 at 60 C: 200-hour burn-in with random values X,
then 200-hour recovery under the complement.  Prints the four ASCII
panels and the per-length magnitude bands next to the published ones.
"""

import numpy as np

from conftest import routes_per_length

from repro.experiments import (
    Experiment1Config,
    render_experiment_panels,
    run_experiment1,
)

PAPER_BANDS = {
    1000.0: (1.0, 2.0),
    2000.0: (2.0, 3.0),
    5000.0: (5.0, 6.0),
    10000.0: (10.0, 11.0),
}


def test_fig6_lab_burn_in_and_recovery(benchmark, emit):
    config = Experiment1Config(
        routes_per_length=routes_per_length(), seed=1
    )
    result = benchmark.pedantic(
        lambda: run_experiment1(config), rounds=1, iterations=1
    )
    emit("\n" + render_experiment_panels(
        result.bundle,
        "Figure 6 (Experiment 1, lab)",
        stress_change_hour=result.stress_change_hour,
    ))
    emit("\nEnd-of-burn |delta-ps| bands (reproduced vs paper):")
    for length, (lo, hi) in sorted(PAPER_BANDS.items()):
        ours = result.magnitude_band(length)
        emit(f"  {length:7.0f} ps: ({ours[0]:.2f}, {ours[1]:.2f})"
             f"   paper: ({lo:.1f}, {hi:.1f})")
    crossings = result.recovery_crossing_hours()
    emit(f"\nBurn-1 recovery zero-crossings: median "
         f"{np.median(crossings):.0f} h (paper: 30-50 h), "
         f"n={len(crossings)}")
    emit(f"Bit recovery: {result.recovery_score}")

    # Acceptance: shape of the result.
    assert result.recovery_score.accuracy == 1.0
    for length, (lo, hi) in PAPER_BANDS.items():
        _, band_max = result.magnitude_band(length)
        assert lo * 0.4 <= band_max <= hi * 1.5
    assert 20.0 <= np.median(crossings) <= 60.0
