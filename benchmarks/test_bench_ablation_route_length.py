"""Ablation A1: recovery reliability vs route length.

Section 6.1's discussion: "There appear to be no limitations in route
length as to observable burn-in effects" but magnitude scales with
length.  This bench sweeps route length from 500 ps to 10000 ps on the
lab setup with a short (24 h) burn -- the hard regime -- and reports
end-of-burn signal, measurement noise, and single-route SNR.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.bench import LabBench
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.noise import LAB_NOISE

LENGTHS = (500.0, 1000.0, 2000.0, 5000.0, 10000.0)


def sweep():
    rows = []
    for length in LENGTHS:
        device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=int(length))
        bench = LabBench(device)
        routes = build_route_bank(device.grid, [length] * 4)
        values = [1, 1, 0, 0]
        target = build_target_design(device.part, routes, values,
                                     heater_dsps=0)
        measure = build_measure_design(device.part, routes)
        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
            condition_hours_per_cycle=2.0,
        )
        protocol.calibration.noise = LAB_NOISE
        protocol.calibration.seed = int(length) + 1
        protocol.calibrate()
        bundle = protocol.run_cycles(12)  # 24 hours of burn
        signals, noises = [], []
        for series, value in zip(bundle, values):
            centred = series.centered
            signal = centred[-3:].mean()
            signals.append(signal if value == 1 else -signal)
            noises.append(np.std(np.diff(centred)) / np.sqrt(2.0))
        signal = float(np.mean(signals))
        noise = float(np.mean(noises))
        rows.append([int(length), round(signal, 3), round(noise, 3),
                     round(signal / noise, 1)])
    return rows


def test_ablation_route_length_sweep(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("\n" + render_table(
        ["Route (ps)", "24h signal (ps)", "noise (ps)", "SNR"],
        rows,
        title="Ablation A1: burn-in signal vs route length (24 h burn, lab)",
    ))
    signals = [row[1] for row in rows]
    # Signal grows monotonically with route length.
    assert signals == sorted(signals)
    # Even 500 ps routes show positive signal after only 24 hours.
    assert signals[0] > 0.0
    # Long routes are comfortably detectable.
    assert rows[-1][3] > 5.0
