"""Ablation A2: the attacker's recovery-conditioning polarity choice.

Section 6.3 motivates conditioning all routes to logical 0: "Since the
Burn 1 degradation values see the greatest and fastest recovery, the
attacker would set all recovery values to condition to logical 0".
This bench runs Threat Model 2 with conditioning-to-0 and
conditioning-to-1 and compares recovery accuracy.
"""

from repro.analysis.report import render_table
from repro.experiments import Experiment3Config, run_experiment3


def run_polarity(conditioned_to):
    config = Experiment3Config(
        routes_per_length=3,
        victim_burn_hours=120,
        recovery_hours=18,
        fleet_size=2,
        device_age_mean_hours=300.0,
        conditioned_to=conditioned_to,
        seed=23,
    )
    return run_experiment3(config)


def test_ablation_recovery_polarity(benchmark, emit):
    def both():
        return run_polarity(0), run_polarity(1)

    to_zero, to_one = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        ["condition to 0 (paper's choice)",
         f"{to_zero.recovery_score.accuracy:.2f}"],
        ["condition to 1",
         f"{to_one.recovery_score.accuracy:.2f}"],
    ]
    emit("\n" + render_table(
        ["Attacker polarity", "bit accuracy"],
        rows,
        title="Ablation A2: Threat Model 2 conditioning polarity",
    ))
    # Conditioning to 0 exposes the fast-recovering burn-1 imprint; the
    # mirror attack watches the slow pool and performs no better.
    assert to_zero.recovery_score.accuracy >= to_one.recovery_score.accuracy
    assert to_zero.recovery_score.accuracy > 0.6
