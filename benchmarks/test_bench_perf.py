"""Performance benchmark: batched capture, array aging, parallel sweeps.

Five phases, written to ``BENCH_perf.json`` at the repo root:

* **measurement microbench** -- full TDC measurements through the scalar
  reference kernel vs the vectorised batched kernel (the PR 2 tentpole
  targets >= 10x here);
* **aging microbench** -- whole-device ``advance_hours`` on a >= 4k
  materialised-segment device under the scalar per-object kernel vs the
  structure-of-arrays kernel (the PR 3 tentpole targets >= 10x here);
* **end-to-end exp1** -- ``exp1 --quick`` wall time under each capture
  kernel with recovery accuracy compared;
* **end-to-end exp2** -- ``exp2 --quick`` wall time under each *aging*
  kernel with recovery accuracy compared;
* **sweep sharding** -- ``experiment_sweep(jobs=N)`` vs sequential, with
  the bit-identical-result invariant checked (on single-CPU runners the
  clamp resolves the request down to the sequential path, which is
  recorded).

The hard gates (CI fails on them) are deliberately loose -- the
vectorised kernels must not be *slower* than their scalar references --
so noisy shared runners cannot flake the build; the headline ratios are
recorded for trend tracking rather than asserted.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.designs import build_route_bank, build_target_design
from repro.experiments import (
    Experiment1Config,
    Experiment2Config,
    run_experiment1,
    run_experiment2,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.geometry import Coordinate
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.fabric.routing import SegmentId
from repro.fabric.segments import SegmentKind
from repro.montecarlo import experiment_sweep, resolve_jobs
from repro.physics.pool_array import aging_kernel
from repro.sensor import find_theta_init
from repro.sensor.noise import LAB_NOISE
from repro.sensor.tdc import TunableDualPolarityTdc, capture_kernel
from repro.units import celsius_to_kelvin

_TARGET = Path(__file__).resolve().parents[1] / "BENCH_perf.json"

#: Full measurements timed per kernel in the capture microbench.
_MICRO_REPS = 60

#: Whole-device advances timed per kernel in the aging microbench.
_AGING_REPS = 20

#: Materialised segments on the aging-microbench device.
_AGING_SEGMENTS = 4096

_AMBIENT_K = celsius_to_kelvin(35.0)


def _time_measurements(tdc, theta, kernel, reps):
    for _ in range(5):  # warm caches, allocator, rng dispatch
        tdc.measure_raw(theta, kernel=kernel)
    start = perf_counter()
    for _ in range(reps):
        tdc.measure_raw(theta, kernel=kernel)
    return (perf_counter() - start) / reps


def _build_aging_device(kernel):
    """A loaded device with >= _AGING_SEGMENTS materialised segments.

    A hundred mixed-length routed nets give the advance realistic
    activity classes (static-1/static-0/toggling heater); the rest of
    the quota is materialised directly as idle SINGLE segments (routing
    banks top out far below 4k on this grid).
    """
    with aging_kernel(kernel):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, seed=33)
    lengths = [1000.0, 2000.0, 5000.0, 10000.0] * 25
    routes = build_route_bank(device.grid, lengths)
    design = build_target_design(
        device.part, routes, [i % 2 for i in range(len(routes))],
        heater_dsps=8,
    )
    device.load(design.bitstream)
    for x in range(device.grid.columns):
        for y in range(device.grid.rows):
            for track in range(4):
                if device.materialised_segments >= _AGING_SEGMENTS:
                    return device
                device.segment_state(
                    SegmentId(SegmentKind.SINGLE, Coordinate(x, y), track)
                )
    return device


def _time_advances(device, reps):
    device.advance_hours(1.0, _AMBIENT_K)  # warm group cache + factors
    start = perf_counter()
    for _ in range(reps):
        device.advance_hours(1.0, _AMBIENT_K)
    return (perf_counter() - start) / reps


def _time_exp1(kernel):
    config = Experiment1Config.quick()
    with capture_kernel(kernel):
        best, accuracy = float("inf"), None
        for _ in range(2):
            start = perf_counter()
            result = run_experiment1(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def _time_exp2(kernel):
    config = Experiment2Config.quick()
    with aging_kernel(kernel):
        best, accuracy = float("inf"), None
        for _ in range(2):
            start = perf_counter()
            result = run_experiment2(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def test_bench_perf(emit):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    route = build_route_bank(device.grid, [1000.0])[0]
    tdc = TunableDualPolarityTdc(device, route, noise=LAB_NOISE, seed=1)
    theta = find_theta_init(tdc)

    scalar_s = _time_measurements(tdc, theta, "scalar", _MICRO_REPS)
    batched_s = _time_measurements(tdc, theta, "batched", _MICRO_REPS)
    micro_speedup = scalar_s / batched_s
    words_per_measurement = 2 * 10 * 16  # both polarities
    emit(f"micro: scalar {scalar_s * 1e3:.2f} ms/measurement, "
         f"batched {batched_s * 1e3:.2f} ms/measurement "
         f"({micro_speedup:.1f}x, "
         f"{words_per_measurement / batched_s:,.0f} words/s)")

    scalar_device = _build_aging_device("scalar")
    array_device = _build_aging_device("array")
    aging_segments = array_device.materialised_segments
    assert scalar_device.materialised_segments == aging_segments
    aging_scalar_s = _time_advances(scalar_device, _AGING_REPS)
    aging_array_s = _time_advances(array_device, _AGING_REPS)
    aging_speedup = aging_scalar_s / aging_array_s
    emit(f"aging ({aging_segments} segments): "
         f"scalar {aging_scalar_s * 1e3:.2f} ms/advance, "
         f"array {aging_array_s * 1e3:.2f} ms/advance "
         f"({aging_speedup:.1f}x, "
         f"{aging_segments / aging_array_s:,.0f} segments/s)")

    e2e_scalar_s, scalar_accuracy = _time_exp1("scalar")
    e2e_batched_s, batched_accuracy = _time_exp1("batched")
    e2e_speedup = e2e_scalar_s / e2e_batched_s
    emit(f"exp1 --quick: scalar {e2e_scalar_s:.2f} s, "
         f"batched {e2e_batched_s:.2f} s ({e2e_speedup:.1f}x), "
         f"accuracy {scalar_accuracy:.3f} -> {batched_accuracy:.3f}")

    exp2_scalar_s, exp2_scalar_accuracy = _time_exp2("scalar")
    exp2_array_s, exp2_array_accuracy = _time_exp2("array")
    exp2_speedup = exp2_scalar_s / exp2_array_s
    emit(f"exp2 --quick: scalar-aging {exp2_scalar_s:.2f} s, "
         f"array-aging {exp2_array_s:.2f} s ({exp2_speedup:.1f}x), "
         f"accuracy {exp2_scalar_accuracy:.3f} -> {exp2_array_accuracy:.3f}")

    seeds = [1, 2, 3, 4]
    # Ask for at least two workers; on single-CPU runners resolve_jobs
    # clamps the request back to the sequential path (oversubscription
    # was measured at 0.89x) and that is recorded below.
    jobs_requested = max(2, min(4, os.cpu_count() or 1))
    jobs_effective = resolve_jobs(jobs_requested, len(seeds))
    start = perf_counter()
    sequential = experiment_sweep("exp1", seeds=seeds, jobs=1)
    sweep_sequential_s = perf_counter() - start
    start = perf_counter()
    sharded = experiment_sweep("exp1", seeds=seeds, jobs=jobs_requested)
    sweep_sharded_s = perf_counter() - start
    emit(f"sweep (4 seeds): jobs=1 {sweep_sequential_s:.2f} s, "
         f"jobs={jobs_requested} (effective {jobs_effective}) "
         f"{sweep_sharded_s:.2f} s "
         f"({sweep_sequential_s / sweep_sharded_s:.1f}x)")

    payload = {
        "suite": "perf",
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "microbench": {
            "scalar_seconds_per_measurement": round(scalar_s, 6),
            "batched_seconds_per_measurement": round(batched_s, 6),
            "speedup": round(micro_speedup, 2),
            "batched_words_per_second": round(
                words_per_measurement / batched_s
            ),
        },
        "aging_microbench": {
            "segments": aging_segments,
            "scalar_seconds_per_advance": round(aging_scalar_s, 6),
            "array_seconds_per_advance": round(aging_array_s, 6),
            "speedup": round(aging_speedup, 2),
            "array_segments_per_second": round(
                aging_segments / aging_array_s
            ),
        },
        "exp1_quick": {
            "scalar_seconds": round(e2e_scalar_s, 3),
            "batched_seconds": round(e2e_batched_s, 3),
            "speedup": round(e2e_speedup, 2),
            "scalar_accuracy": scalar_accuracy,
            "batched_accuracy": batched_accuracy,
        },
        "exp2_quick": {
            "scalar_aging_seconds": round(exp2_scalar_s, 3),
            "array_aging_seconds": round(exp2_array_s, 3),
            "speedup": round(exp2_speedup, 2),
            "scalar_accuracy": exp2_scalar_accuracy,
            "array_accuracy": exp2_array_accuracy,
        },
        "sweep": {
            "seeds": len(seeds),
            "jobs_requested": jobs_requested,
            "jobs_effective": jobs_effective,
            "sequential_seconds": round(sweep_sequential_s, 3),
            "sharded_seconds": round(sweep_sharded_s, 3),
            "speedup": round(sweep_sequential_s / sweep_sharded_s, 2),
            "bit_identical": sharded == sequential,
        },
    }
    _TARGET.write_text(json.dumps(payload, indent=1))
    emit(f"wrote {_TARGET.name}")

    # Hard gates: the vectorised kernels must never lose to their
    # reference paths, sharding must not change the statistics, and the
    # kernels must agree on recovery for the fixed default seeds.
    assert micro_speedup >= 1.0
    assert aging_speedup > 1.0
    assert aging_segments >= 1000
    assert e2e_speedup >= 1.0
    assert sharded == sequential
    assert batched_accuracy == scalar_accuracy
    assert exp2_array_accuracy == exp2_scalar_accuracy
