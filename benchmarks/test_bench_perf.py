"""Performance benchmark: batched capture, array aging, parallel sweeps.

Seven phases, written to ``BENCH_perf.json`` at the repo root:

* **measurement microbench** -- full TDC measurements through the scalar
  reference kernel vs the vectorised batched kernel (the PR 2 tentpole
  targets >= 10x here);
* **aging microbench** -- whole-device ``advance_hours`` on a >= 4k
  materialised-segment device under the scalar per-object kernel vs the
  structure-of-arrays kernel (the PR 3 tentpole targets >= 10x here);
* **end-to-end exp1** -- ``exp1 --quick`` wall time under each capture
  kernel with recovery accuracy compared;
* **end-to-end exp2 (aging axis)** -- ``exp2 --quick`` wall time under
  each *aging* kernel with recovery accuracy compared;
* **end-to-end exp2/exp3 (all axes)** -- ``exp2 --quick`` and
  ``exp3 --quick`` with *every* knob scalar (capture, calibration scan,
  aging) vs every knob fast (the PR 7 tentpole targets >= 5x here);
* **calibration-axis equivalence** -- the lockstep calibration scan
  must reproduce the sequential scan's recovery accuracy *exactly*
  (that axis is bit-identical even with jitter, unlike the capture
  kernel's matrix-first jitter draws);
* **sweep sharding** -- ``experiment_sweep(jobs=N)`` vs sequential over
  shared-memory result arrays, with the bit-identical-result invariant
  checked.  On single-CPU runners ``resolve_jobs`` clamps the request
  down to the sequential path; the bench then *skips* the speedup
  ratio (a 1-core self-comparison is noise, not a benchmark) and
  records why.

The hard gates (CI fails on them) are deliberately loose -- the
vectorised kernels must not be *slower* than their scalar references --
so noisy shared runners cannot flake the build; the headline ratios are
recorded for trend tracking rather than asserted.  The one tight gate
is accuracy equality along the bit-identical axes.
"""

from __future__ import annotations

import json
import os
import platform
from contextlib import ExitStack
from pathlib import Path
from time import perf_counter

from repro.designs import build_route_bank, build_target_design
from repro.experiments import (
    Experiment1Config,
    Experiment2Config,
    Experiment3Config,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.drc import clear_drc_cache
from repro.fabric.geometry import Coordinate
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.fabric.routing import SegmentId
from repro.fabric.segments import SegmentKind
from repro.montecarlo import experiment_sweep, resolve_jobs
from repro.physics.pool_array import aging_kernel
from repro.sensor import find_theta_init
from repro.sensor.calibration import calibration_kernel
from repro.sensor.noise import LAB_NOISE
from repro.sensor.tdc import TunableDualPolarityTdc, capture_kernel
from repro.units import celsius_to_kelvin

_TARGET = Path(__file__).resolve().parents[1] / "BENCH_perf.json"

#: Full measurements timed per kernel in the capture microbench.
_MICRO_REPS = 60

#: Whole-device advances timed per kernel in the aging microbench.
_AGING_REPS = 20

#: Materialised segments on the aging-microbench device.
_AGING_SEGMENTS = 4096

_AMBIENT_K = celsius_to_kelvin(35.0)


def _time_measurements(tdc, theta, kernel, reps):
    for _ in range(5):  # warm caches, allocator, rng dispatch
        tdc.measure_raw(theta, kernel=kernel)
    start = perf_counter()
    for _ in range(reps):
        tdc.measure_raw(theta, kernel=kernel)
    return (perf_counter() - start) / reps


def _build_aging_device(kernel):
    """A loaded device with >= _AGING_SEGMENTS materialised segments.

    A hundred mixed-length routed nets give the advance realistic
    activity classes (static-1/static-0/toggling heater); the rest of
    the quota is materialised directly as idle SINGLE segments (routing
    banks top out far below 4k on this grid).
    """
    with aging_kernel(kernel):
        device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, seed=33)
    lengths = [1000.0, 2000.0, 5000.0, 10000.0] * 25
    routes = build_route_bank(device.grid, lengths)
    design = build_target_design(
        device.part, routes, [i % 2 for i in range(len(routes))],
        heater_dsps=8,
    )
    device.load(design.bitstream)
    for x in range(device.grid.columns):
        for y in range(device.grid.rows):
            for track in range(4):
                if device.materialised_segments >= _AGING_SEGMENTS:
                    return device
                device.segment_state(
                    SegmentId(SegmentKind.SINGLE, Coordinate(x, y), track)
                )
    return device


def _time_advances(device, reps):
    device.advance_hours(1.0, _AMBIENT_K)  # warm group cache + factors
    start = perf_counter()
    for _ in range(reps):
        device.advance_hours(1.0, _AMBIENT_K)
    return (perf_counter() - start) / reps


def _time_exp1(kernel):
    config = Experiment1Config.quick()
    with capture_kernel(kernel):
        best, accuracy = float("inf"), None
        for _ in range(2):
            start = perf_counter()
            result = run_experiment1(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def _time_exp2(kernel):
    config = Experiment2Config.quick()
    with aging_kernel(kernel):
        best, accuracy = float("inf"), None
        for _ in range(2):
            start = perf_counter()
            result = run_experiment2(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def _time_quick_all_knobs(run, config_cls, scalar, reps=2):
    """Best-of-``reps`` wall time of one --quick experiment.

    ``scalar=True`` pins *every* kernel knob to its scalar reference --
    capture words, calibration scan and aging -- the fully unbatched
    path the PR 7 tentpole is measured against.  The DRC cache is
    cleared before every rep so each rep pays its own full vetting
    cost (reports are keyed per compile, so reps never share entries;
    clearing just keeps the comparison cold-start honest).
    """
    with ExitStack() as stack:
        if scalar:
            stack.enter_context(capture_kernel("scalar"))
            stack.enter_context(calibration_kernel("scalar"))
            stack.enter_context(aging_kernel("scalar"))
        best, accuracy = float("inf"), None
        for _ in range(reps):
            clear_drc_cache()
            config = config_cls.quick()
            start = perf_counter()
            result = run(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def _calibration_axis_accuracy(run, config_cls):
    """Recovery accuracy under each calibration *scan* kernel.

    Capture stays batched on both sides: the scan orchestration is the
    one axis pinned bit-identical even with jitter on (each route owns
    its own generator stream), so the two accuracies must be equal to
    the last bit.
    """
    accuracies = {}
    for scan in ("scalar", "batched"):
        clear_drc_cache()
        with calibration_kernel(scan):
            accuracies[scan] = run(config_cls.quick()).recovery_score.accuracy
    return accuracies["scalar"], accuracies["batched"]


def test_bench_perf(emit):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    route = build_route_bank(device.grid, [1000.0])[0]
    tdc = TunableDualPolarityTdc(device, route, noise=LAB_NOISE, seed=1)
    theta = find_theta_init(tdc)

    scalar_s = _time_measurements(tdc, theta, "scalar", _MICRO_REPS)
    batched_s = _time_measurements(tdc, theta, "batched", _MICRO_REPS)
    micro_speedup = scalar_s / batched_s
    words_per_measurement = 2 * 10 * 16  # both polarities
    emit(f"micro: scalar {scalar_s * 1e3:.2f} ms/measurement, "
         f"batched {batched_s * 1e3:.2f} ms/measurement "
         f"({micro_speedup:.1f}x, "
         f"{words_per_measurement / batched_s:,.0f} words/s)")

    scalar_device = _build_aging_device("scalar")
    array_device = _build_aging_device("array")
    aging_segments = array_device.materialised_segments
    assert scalar_device.materialised_segments == aging_segments
    aging_scalar_s = _time_advances(scalar_device, _AGING_REPS)
    aging_array_s = _time_advances(array_device, _AGING_REPS)
    aging_speedup = aging_scalar_s / aging_array_s
    emit(f"aging ({aging_segments} segments): "
         f"scalar {aging_scalar_s * 1e3:.2f} ms/advance, "
         f"array {aging_array_s * 1e3:.2f} ms/advance "
         f"({aging_speedup:.1f}x, "
         f"{aging_segments / aging_array_s:,.0f} segments/s)")

    e2e_scalar_s, scalar_accuracy = _time_exp1("scalar")
    e2e_batched_s, batched_accuracy = _time_exp1("batched")
    e2e_speedup = e2e_scalar_s / e2e_batched_s
    emit(f"exp1 --quick: scalar {e2e_scalar_s:.2f} s, "
         f"batched {e2e_batched_s:.2f} s ({e2e_speedup:.1f}x), "
         f"accuracy {scalar_accuracy:.3f} -> {batched_accuracy:.3f}")

    exp2_scalar_s, exp2_scalar_accuracy = _time_exp2("scalar")
    exp2_array_s, exp2_array_accuracy = _time_exp2("array")
    exp2_speedup = exp2_scalar_s / exp2_array_s
    emit(f"exp2 --quick: scalar-aging {exp2_scalar_s:.2f} s, "
         f"array-aging {exp2_array_s:.2f} s ({exp2_speedup:.1f}x), "
         f"accuracy {exp2_scalar_accuracy:.3f} -> {exp2_array_accuracy:.3f}")

    exp2_all_scalar_s, exp2_all_scalar_acc = _time_quick_all_knobs(
        run_experiment2, Experiment2Config, scalar=True
    )
    exp2_all_fast_s, exp2_all_fast_acc = _time_quick_all_knobs(
        run_experiment2, Experiment2Config, scalar=False
    )
    exp2_e2e_speedup = exp2_all_scalar_s / exp2_all_fast_s
    emit(f"exp2 --quick (all knobs): scalar {exp2_all_scalar_s:.2f} s, "
         f"fast {exp2_all_fast_s:.2f} s ({exp2_e2e_speedup:.1f}x), "
         f"accuracy {exp2_all_scalar_acc:.3f} -> {exp2_all_fast_acc:.3f}")

    exp3_scalar_s, exp3_scalar_acc = _time_quick_all_knobs(
        run_experiment3, Experiment3Config, scalar=True
    )
    exp3_fast_s, exp3_fast_acc = _time_quick_all_knobs(
        run_experiment3, Experiment3Config, scalar=False
    )
    exp3_speedup = exp3_scalar_s / exp3_fast_s
    emit(f"exp3 --quick (all knobs): scalar {exp3_scalar_s:.2f} s, "
         f"fast {exp3_fast_s:.2f} s ({exp3_speedup:.1f}x), "
         f"accuracy {exp3_scalar_acc:.3f} -> {exp3_fast_acc:.3f}")

    exp2_seq_scan_acc, exp2_lockstep_acc = _calibration_axis_accuracy(
        run_experiment2, Experiment2Config
    )
    exp3_seq_scan_acc, exp3_lockstep_acc = _calibration_axis_accuracy(
        run_experiment3, Experiment3Config
    )
    emit(f"calibration axis: exp2 {exp2_seq_scan_acc:.3f} == "
         f"{exp2_lockstep_acc:.3f}, exp3 {exp3_seq_scan_acc:.3f} == "
         f"{exp3_lockstep_acc:.3f}")

    seeds = [1, 2, 3, 4]
    # Ask for at least two workers; on single-CPU runners resolve_jobs
    # clamps the request back to the sequential path (oversubscription
    # was measured at 0.89x), and the speedup ratio below is skipped
    # rather than recorded as a meaningless ~1x self-comparison.
    jobs_requested = max(2, min(4, os.cpu_count() or 1))
    jobs_effective = resolve_jobs(jobs_requested, len(seeds))
    start = perf_counter()
    sequential = experiment_sweep("exp1", seeds=seeds, jobs=1)
    sweep_sequential_s = perf_counter() - start
    start = perf_counter()
    sharded = experiment_sweep("exp1", seeds=seeds, jobs=jobs_requested)
    sweep_sharded_s = perf_counter() - start
    if jobs_effective >= 2:
        emit(f"sweep (4 seeds): jobs=1 {sweep_sequential_s:.2f} s, "
             f"jobs={jobs_requested} (effective {jobs_effective}) "
             f"{sweep_sharded_s:.2f} s "
             f"({sweep_sequential_s / sweep_sharded_s:.1f}x)")
    else:
        emit(f"sweep (4 seeds): jobs=1 {sweep_sequential_s:.2f} s; "
             f"jobs={jobs_requested} clamped to 1 on this "
             f"{os.cpu_count()}-cpu host -- speedup gate skipped")

    payload = {
        "suite": "perf",
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "microbench": {
            "scalar_seconds_per_measurement": round(scalar_s, 6),
            "batched_seconds_per_measurement": round(batched_s, 6),
            "speedup": round(micro_speedup, 2),
            "batched_words_per_second": round(
                words_per_measurement / batched_s
            ),
        },
        "aging_microbench": {
            "segments": aging_segments,
            "scalar_seconds_per_advance": round(aging_scalar_s, 6),
            "array_seconds_per_advance": round(aging_array_s, 6),
            "speedup": round(aging_speedup, 2),
            "array_segments_per_second": round(
                aging_segments / aging_array_s
            ),
        },
        "exp1_quick": {
            "scalar_seconds": round(e2e_scalar_s, 3),
            "batched_seconds": round(e2e_batched_s, 3),
            "speedup": round(e2e_speedup, 2),
            "scalar_accuracy": scalar_accuracy,
            "batched_accuracy": batched_accuracy,
        },
        "exp2_quick": {
            "scalar_aging_seconds": round(exp2_scalar_s, 3),
            "array_aging_seconds": round(exp2_array_s, 3),
            "speedup": round(exp2_speedup, 2),
            "scalar_accuracy": exp2_scalar_accuracy,
            "array_accuracy": exp2_array_accuracy,
        },
        "exp2_quick_e2e": {
            "all_scalar_seconds": round(exp2_all_scalar_s, 3),
            "all_fast_seconds": round(exp2_all_fast_s, 3),
            "speedup": round(exp2_e2e_speedup, 2),
            "all_scalar_accuracy": exp2_all_scalar_acc,
            "all_fast_accuracy": exp2_all_fast_acc,
        },
        "exp3_quick": {
            "all_scalar_seconds": round(exp3_scalar_s, 3),
            "all_fast_seconds": round(exp3_fast_s, 3),
            "speedup": round(exp3_speedup, 2),
            "all_scalar_accuracy": exp3_scalar_acc,
            "all_fast_accuracy": exp3_fast_acc,
        },
        "calibration_axis": {
            "exp2_sequential_accuracy": exp2_seq_scan_acc,
            "exp2_lockstep_accuracy": exp2_lockstep_acc,
            "exp3_sequential_accuracy": exp3_seq_scan_acc,
            "exp3_lockstep_accuracy": exp3_lockstep_acc,
        },
        "sweep": {
            "seeds": len(seeds),
            "jobs_requested": jobs_requested,
            "jobs_effective": jobs_effective,
            "sequential_seconds": round(sweep_sequential_s, 3),
            "sharded_seconds": round(sweep_sharded_s, 3),
            "bit_identical": sharded == sequential,
        },
    }
    if jobs_effective >= 2:
        payload["sweep"]["speedup"] = round(
            sweep_sequential_s / sweep_sharded_s, 2
        )
        payload["sweep"]["speedup_gate"] = "enforced"
    else:
        # resolve_jobs clamped the request to the sequential path: the
        # two timings above ran the same code, so a ratio would be
        # measurement noise dressed up as a result.  Record the skip
        # instead of the number.
        payload["sweep"]["speedup_gate"] = "skipped_single_cpu"
    _TARGET.write_text(json.dumps(payload, indent=1))
    emit(f"wrote {_TARGET.name}")

    # Hard gates: the vectorised kernels must never lose to their
    # reference paths, sharding must not change the statistics, and the
    # kernels must agree on recovery for the fixed default seeds.
    assert micro_speedup >= 1.0
    assert aging_speedup > 1.0
    assert aging_segments >= 1000
    assert e2e_speedup >= 1.0
    assert exp2_e2e_speedup >= 1.0
    assert exp3_speedup >= 1.0
    assert sharded == sequential
    assert batched_accuracy == scalar_accuracy
    assert exp2_array_accuracy == exp2_scalar_accuracy
    # The calibration-scan axis is bit-identical by construction (each
    # route owns an independent generator stream), so exact equality
    # holds even though both experiments run with jitter on.  The
    # all-scalar vs all-fast accuracies may legitimately differ: the
    # scalar *capture* kernel interleaves its jitter draws, which is
    # distributional, not bit-identical, equivalence (PR 2).
    assert exp2_lockstep_acc == exp2_seq_scan_acc
    assert exp3_lockstep_acc == exp3_seq_scan_acc
    # Sharding must beat sequential where there is real parallelism to
    # win; on one core the clamp makes the comparison meaningless and
    # the gate is skipped (recorded in the payload above).
    if jobs_effective >= 2:
        assert sweep_sequential_s / sweep_sharded_s > 1.5
