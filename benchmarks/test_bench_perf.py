"""Performance benchmark: batched capture kernel and parallel sweeps.

Three phases, written to ``BENCH_perf.json`` at the repo root:

* **measurement microbench** -- full TDC measurements through the scalar
  reference kernel vs the vectorised batched kernel (the PR 2 tentpole
  targets >= 10x here);
* **end-to-end** -- ``exp1 --quick`` wall time under each kernel with
  recovery accuracy compared (target >= 3x, accuracy unchanged);
* **sweep sharding** -- ``experiment_sweep(jobs=N)`` vs sequential, with
  the bit-identical-result invariant checked.

The hard gate (CI fails on it) is deliberately loose -- the batched
kernel must not be *slower* than the scalar path -- so noisy shared
runners cannot flake the build; the headline ratios are recorded for
trend tracking rather than asserted.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.designs import build_route_bank
from repro.experiments import Experiment1Config, run_experiment1
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.montecarlo import experiment_sweep
from repro.sensor import find_theta_init
from repro.sensor.noise import LAB_NOISE
from repro.sensor.tdc import TunableDualPolarityTdc, capture_kernel

_TARGET = Path(__file__).resolve().parents[1] / "BENCH_perf.json"

#: Full measurements timed per kernel in the microbench.
_MICRO_REPS = 60


def _time_measurements(tdc, theta, kernel, reps):
    for _ in range(5):  # warm caches, allocator, rng dispatch
        tdc.measure_raw(theta, kernel=kernel)
    start = perf_counter()
    for _ in range(reps):
        tdc.measure_raw(theta, kernel=kernel)
    return (perf_counter() - start) / reps


def _time_exp1(kernel):
    config = Experiment1Config.quick()
    with capture_kernel(kernel):
        best, accuracy = float("inf"), None
        for _ in range(2):
            start = perf_counter()
            result = run_experiment1(config)
            best = min(best, perf_counter() - start)
            accuracy = result.recovery_score.accuracy
    return best, accuracy


def test_bench_perf(emit):
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=21)
    route = build_route_bank(device.grid, [1000.0])[0]
    tdc = TunableDualPolarityTdc(device, route, noise=LAB_NOISE, seed=1)
    theta = find_theta_init(tdc)

    scalar_s = _time_measurements(tdc, theta, "scalar", _MICRO_REPS)
    batched_s = _time_measurements(tdc, theta, "batched", _MICRO_REPS)
    micro_speedup = scalar_s / batched_s
    words_per_measurement = 2 * 10 * 16  # both polarities
    emit(f"micro: scalar {scalar_s * 1e3:.2f} ms/measurement, "
         f"batched {batched_s * 1e3:.2f} ms/measurement "
         f"({micro_speedup:.1f}x, "
         f"{words_per_measurement / batched_s:,.0f} words/s)")

    e2e_scalar_s, scalar_accuracy = _time_exp1("scalar")
    e2e_batched_s, batched_accuracy = _time_exp1("batched")
    e2e_speedup = e2e_scalar_s / e2e_batched_s
    emit(f"exp1 --quick: scalar {e2e_scalar_s:.2f} s, "
         f"batched {e2e_batched_s:.2f} s ({e2e_speedup:.1f}x), "
         f"accuracy {scalar_accuracy:.3f} -> {batched_accuracy:.3f}")

    seeds = [1, 2, 3, 4]
    # At least two workers so the sharded path (pool, pickling, metrics
    # merge-back) is always exercised, even on single-core runners.
    jobs = max(2, min(4, os.cpu_count() or 1))
    start = perf_counter()
    sequential = experiment_sweep("exp1", seeds=seeds, jobs=1)
    sweep_sequential_s = perf_counter() - start
    start = perf_counter()
    sharded = experiment_sweep("exp1", seeds=seeds, jobs=jobs)
    sweep_sharded_s = perf_counter() - start
    emit(f"sweep (4 seeds): jobs=1 {sweep_sequential_s:.2f} s, "
         f"jobs={jobs} {sweep_sharded_s:.2f} s "
         f"({sweep_sequential_s / sweep_sharded_s:.1f}x)")

    payload = {
        "suite": "perf",
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "microbench": {
            "scalar_seconds_per_measurement": round(scalar_s, 6),
            "batched_seconds_per_measurement": round(batched_s, 6),
            "speedup": round(micro_speedup, 2),
            "batched_words_per_second": round(
                words_per_measurement / batched_s
            ),
        },
        "exp1_quick": {
            "scalar_seconds": round(e2e_scalar_s, 3),
            "batched_seconds": round(e2e_batched_s, 3),
            "speedup": round(e2e_speedup, 2),
            "scalar_accuracy": scalar_accuracy,
            "batched_accuracy": batched_accuracy,
        },
        "sweep": {
            "seeds": len(seeds),
            "jobs": jobs,
            "sequential_seconds": round(sweep_sequential_s, 3),
            "sharded_seconds": round(sweep_sharded_s, 3),
            "speedup": round(sweep_sequential_s / sweep_sharded_s, 2),
            "bit_identical": sharded == sequential,
        },
    }
    _TARGET.write_text(json.dumps(payload, indent=1))
    emit(f"wrote {_TARGET.name}")

    # Hard gates: the batched kernel must never lose to the reference
    # path, sharding must not change the statistics, and the kernels
    # must agree on exp1's recovery for the fixed default seed.
    assert micro_speedup >= 1.0
    assert e2e_speedup >= 1.0
    assert sharded == sequential
    assert batched_accuracy == scalar_accuracy
