"""Fleet-scale simulation benchmark: the PR 8 tentpole's headline.

Four phases, written to ``BENCH_fleet.json`` at the repo root:

* **bulk_churn** -- the headline workload: 100k devices, 500k tenant
  arrivals (1M lifecycle events, drop-free by construction) resolved
  by the vectorised bulk-churn engine.  Hard-gated at >= 1M events/s.
* **reference_baseline** -- the per-event reference engine timed on a
  smaller trace; its events/s is the eager baseline the bulk speedup
  is measured against.
* **equivalence** -- bulk vs reference on a moderate drop-heavy
  scenario: free-stack contents, event counts and capacity drops must
  match exactly, and the bulk engine must be invariant to the window
  size it resolves the trace in.
* **campaign_quick** -- a small flash-attack campaign recording fleet
  recovery yield, pinned identical across engines.

Hard gates are deliberately loose (the 1M events/s floor is ~3x under
what this path measures on a warm laptop core); the headline ratios
are recorded for trend tracking by ``repro bench diff``.
"""

import json
import math
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.cloud.campaigns import (
    ChurnModel,
    FlashAttackPlan,
    FleetScenario,
    VirtualRegion,
    run_churn_benchmark,
    run_flash_campaign,
)

_TARGET = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

#: Headline workload: 2 * _ARRIVALS lifecycle events on _DEVICES boards.
_DEVICES = 100_000
_ARRIVALS = 500_000

#: The reference engine replays one python-level event at a time; a
#: full million-event trace would dominate the bench session, so the
#: baseline is timed on a slice and compared per-event.
_REFERENCE_ARRIVALS = 20_000
_REFERENCE_DEVICES = 4_000

#: CI gate: minimum bulk-path throughput, lifecycle events per second.
_FLOOR_EVENTS_PER_SECOND = 1_000_000


def _campaign_scenario(engine):
    return FleetScenario(
        devices=96,
        horizon_hours=220.0,
        churn=ChurnModel(arrival_rate_per_hour=2.0,
                         mean_rental_hours=10.0),
        routes=4,
        seed=6,
        engine=engine,
    )


def test_bench_fleet(emit):
    # -- bulk churn headline -------------------------------------------
    best = None
    for _ in range(2):  # best-of-2: first run pays numpy warm-up
        stats = run_churn_benchmark(
            devices=_DEVICES, arrivals=_ARRIVALS, seed=0, engine="bulk"
        )
        if best is None or stats["seconds"] < best["seconds"]:
            best = stats
    emit(f"bulk churn: {best['events']:,} events over "
         f"{best['devices']:,} devices in {best['seconds']:.2f} s "
         f"({best['events_per_second']:,.0f} events/s)")

    # -- reference baseline --------------------------------------------
    ref = run_churn_benchmark(
        devices=_REFERENCE_DEVICES, arrivals=_REFERENCE_ARRIVALS,
        seed=0, engine="reference",
    )
    speedup = best["events_per_second"] / ref["events_per_second"]
    emit(f"reference baseline: {ref['events']:,} events in "
         f"{ref['seconds']:.2f} s ({ref['events_per_second']:,.0f} "
         f"events/s) -- bulk is {speedup:.0f}x faster per event")

    # -- engine equivalence --------------------------------------------
    trace = ChurnModel(40.0, 6.0).draw(200.0, seed=3)
    engines = {}
    for engine, batch in (("reference", math.inf), ("bulk", math.inf),
                          ("bulk", 11.0)):
        region = VirtualRegion(48, trace, engine=engine,
                               batch_hours=batch)
        region.advance_to(240.0)
        engines[(engine, batch)] = (
            region.free_boards(), region.events_processed,
            region.dropped_arrivals,
        )
    ref_state = engines[("reference", math.inf)]
    equivalent = all(state == ref_state for state in engines.values())
    emit(f"equivalence: {ref_state[1]:,} events, "
         f"{ref_state[2]:,} drops -- bulk == reference: {equivalent}, "
         f"batch-invariant: "
         f"{engines[('bulk', 11.0)] == engines[('bulk', math.inf)]}")

    # -- quick campaign ------------------------------------------------
    start = perf_counter()
    campaign = run_flash_campaign(
        _campaign_scenario("bulk"),
        FlashAttackPlan(victims=2, flash_limit=4, reaction_hours=0.25),
    )
    campaign_s = perf_counter() - start
    campaign_ref = run_flash_campaign(
        _campaign_scenario("reference"),
        FlashAttackPlan(victims=2, flash_limit=4, reaction_hours=0.25),
    )
    emit(f"campaign: yield {campaign.recovery_yield:.2f}, "
         f"mean accuracy {campaign.mean_accuracy:.3f}, "
         f"{campaign.lifecycle_events:,} churn events in "
         f"{campaign_s:.2f} s")

    payload = {
        "suite": "fleet",
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "bulk_churn": {
            "devices": best["devices"],
            "arrivals": best["arrivals"],
            "events": best["events"],
            "dropped_arrivals": best["dropped_arrivals"],
            "seconds": round(best["seconds"], 3),
            "events_per_second": round(best["events_per_second"]),
        },
        "reference_baseline": {
            "devices": ref["devices"],
            "arrivals": ref["arrivals"],
            "events": ref["events"],
            "seconds": round(ref["seconds"], 3),
            "events_per_second": round(ref["events_per_second"]),
            "bulk_speedup": round(speedup, 1),
        },
        "equivalence": {
            "events": ref_state[1],
            "dropped_arrivals": ref_state[2],
            "bulk_matches_reference": equivalent,
        },
        "campaign_quick": {
            "engine": "bulk",
            "victims": campaign.victims_attempted,
            "recovery_yield": campaign.recovery_yield,
            "mean_accuracy": round(campaign.mean_accuracy, 4),
            "lifecycle_events": campaign.lifecycle_events,
            "seconds": round(campaign_s, 3),
            "engine_invariant": (
                campaign.recovery_yield == campaign_ref.recovery_yield
                and campaign.details == campaign_ref.details
            ),
        },
    }
    _TARGET.write_text(json.dumps(payload, indent=1))
    emit(f"wrote {_TARGET.name}")

    # Hard gates: the bulk path must clear the CI throughput floor on a
    # drop-free million-event trace, it must never lose to the
    # per-event reference, and correctness must not depend on the
    # engine or the window size.
    assert best["events"] == 2 * _ARRIVALS
    assert best["dropped_arrivals"] == 0
    assert best["events_per_second"] >= _FLOOR_EVENTS_PER_SECOND
    assert speedup > 1.0
    assert equivalent
    assert campaign.recovery_yield == campaign_ref.recovery_yield
    assert campaign.mean_accuracy == campaign_ref.mean_accuracy
