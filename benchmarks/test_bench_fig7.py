"""Benchmark F7: regenerate Figure 7 (Experiment 2, cloud Threat Model 1).

An aged AWS-F1-like device, 63 W marketplace AFI, 200 hours of hourly
condition/measure interleave.  Prints the four panels and the magnitude
bands -- roughly an order of magnitude below the lab run -- plus the
Type A bit recovery.
"""

from conftest import routes_per_length

from repro.experiments import (
    Experiment2Config,
    render_experiment_panels,
    run_experiment2,
)

PAPER_BANDS_MAX = {1000.0: 0.2, 2000.0: 0.4, 5000.0: 1.0, 10000.0: 2.0}


def test_fig7_cloud_threat_model_1(benchmark, emit):
    config = Experiment2Config(
        routes_per_length=routes_per_length(), seed=2
    )
    result = benchmark.pedantic(
        lambda: run_experiment2(config), rounds=1, iterations=1
    )
    emit("\n" + render_experiment_panels(
        result.bundle, "Figure 7 (Experiment 2, cloud TM1)"
    ))
    emit("\nEnd-of-burn |delta-ps| bands (reproduced vs paper max):")
    for length, paper_max in sorted(PAPER_BANDS_MAX.items()):
        ours = result.magnitude_band(length)
        emit(f"  {length:7.0f} ps: ({ours[0]:.3f}, {ours[1]:.3f})"
             f"   paper: (0, {paper_max:.1f})")
    emit(f"\nType A recovery: {result.recovery_score}")
    emit(f"Accuracy by length: "
         f"{ {k: round(v, 2) for k, v in result.accuracy_by_length().items()} }")

    # Acceptance: recoverable, noisier than lab, magnitude ordering holds.
    assert result.recovery_score.accuracy >= 0.75
    assert result.accuracy_by_length()[10000.0] >= 0.75
    band_max = {L: result.magnitude_band(L)[1] for L in PAPER_BANDS_MAX}
    assert band_max[10000.0] <= 3.0  # an order below the lab's ~11 ps
    assert band_max[10000.0] > band_max[1000.0] * 0.9
