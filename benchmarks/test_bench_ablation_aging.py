"""Ablation A4: burn-in signal vs device age and burn duration.

Section 6.2's observation -- "the burn-in for the cloud FPGAs is lesser
than that of the new ZCU102 ... cloud FPGAs are older and more used" --
generalised into a table: the 5000 ps route's end-of-burn delta-ps as a
function of prior device wear and of conditioning duration.
"""

from repro.analysis.report import render_table
from repro.fabric.router import compose_delay
from repro.fabric.segments import spec_for
from repro.physics.bti import SegmentBti, SegmentTraits
from repro.physics.constants import (
    PS_PER_SWITCH_AT_REFERENCE,
    REFERENCE_TEMPERATURE_K,
)

AGES_HOURS = (0.0, 500.0, 2000.0, 4000.0, 8000.0)
BURN_HOURS = (10, 50, 100, 200, 400)


def signal(age_hours, burn_hours, length_ps=5000.0):
    switches = sum(
        spec_for(k).switch_count for k in compose_delay(length_ps)
    )
    segment = SegmentBti(SegmentTraits(
        rising_delay_ps=length_ps,
        falling_delay_ps=length_ps,
        burn_amplitude_ps=switches * PS_PER_SWITCH_AT_REFERENCE,
    ))
    age = age_hours
    for _ in range(burn_hours):
        segment.hold(1, 1.0, REFERENCE_TEMPERATURE_K, device_age_hours=age)
        age += 1.0
    return segment.delta_ps


def build_matrix():
    return {
        age: [signal(age, hours) for hours in BURN_HOURS]
        for age in AGES_HOURS
    }


def test_ablation_age_and_duration(benchmark, emit):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    rows = [
        [f"{age:.0f} h wear"] + [round(v, 2) for v in matrix[age]]
        for age in AGES_HOURS
    ]
    emit("\n" + render_table(
        ["Device age"] + [f"{h} h burn" for h in BURN_HOURS],
        rows,
        title=(
            "Ablation A4: 5000 ps route burn-1 delta-ps vs device wear "
            "and burn duration"
        ),
    ))
    # Monotone in burn duration for every age.
    for age in AGES_HOURS:
        assert matrix[age] == sorted(matrix[age])
    # Monotone decreasing in age for every duration.
    for column in range(len(BURN_HOURS)):
        by_age = [matrix[age][column] for age in AGES_HOURS]
        assert by_age == sorted(by_age, reverse=True)
    # The paper's anchor: ~10x between new and ~4-year parts at 200 h.
    ratio = matrix[0.0][3] / matrix[4000.0][3]
    assert 5.0 < ratio < 20.0
