"""Ablation A9: seed-robustness of the headline results.

Single-seed demonstrations can flatter an attack; this bench sweeps the
quick configurations of all three experiments over five seeds each and
reports the recovery-accuracy distributions.  Experiment 1's lab
setting should be deterministic-perfect; the cloud settings should stay
well above chance with modest spread.
"""

from repro.analysis.report import render_table
from repro.montecarlo import experiment_sweep

SEEDS = (3, 5, 7, 19, 23)


def sweep_all():
    return {
        name: experiment_sweep(name, seeds=SEEDS)
        for name in ("exp1", "exp2", "exp3")
    }


def test_seed_robustness(benchmark, emit):
    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        lo, hi = result.percentile_interval(0.9)
        rows.append([
            name, f"{result.mean:.2f}", f"{result.std:.2f}",
            f"[{lo:.2f}, {hi:.2f}]", f"{result.minimum:.2f}",
        ])
    emit("\n" + render_table(
        ["Experiment (quick)", "mean acc", "sd", "90% interval", "min"],
        rows,
        title="Ablation A9: recovery accuracy across seeds (n=5 each)",
    ))
    assert results["exp1"].mean == 1.0
    assert results["exp2"].mean >= 0.8
    assert results["exp3"].mean >= 0.6
    # Every cloud run beats coin flipping.
    assert results["exp2"].minimum > 0.5