"""Ablation A5: TDC sensor vs ring-oscillator baseline (Section 7).

Two findings from the related-work comparison, reproduced:

1. **Deployability** -- the RO's combinational loop fails the cloud
   provider's self-oscillator scan; the TDC passes DRC.
2. **Polarity separation** -- the RO's single output (oscillation
   period) responds identically to burn-0 and burn-1, while the TDC's
   falling-minus-rising output signs the previous value.
"""

import pytest

from repro.analysis.report import render_table
from repro.designs import build_route_bank, build_target_design, build_measure_design
from repro.errors import DesignRuleViolation
from repro.fabric.bitstream import Bitstream
from repro.fabric.device import FpgaDevice
from repro.fabric.geometry import Coordinate
from repro.fabric.netlist import CellType
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.placement import FixedPlacer
from repro.fabric.drc import check_design
from repro.sensor.ro import RingOscillatorSensor, build_ro_netlist
from repro.units import celsius_to_kelvin

PART = ZYNQ_ULTRASCALE_PLUS
AMBIENT = celsius_to_kelvin(60.0)


def burn(device, route, value, hours=100):
    design = build_target_design(PART, [route], [value], heater_dsps=0,
                                 name=f"burn{value}")
    device.load(design.bitstream)
    device.advance_hours(float(hours), AMBIENT)
    device.wipe()


def compare_sensors():
    results = {}
    for value in (0, 1):
        device = FpgaDevice(PART, seed=81 + value)
        device.set_ambient(AMBIENT)
        route = build_route_bank(device.grid, [5000.0])[0]
        ro = RingOscillatorSensor(device, route, seed=1)
        ro_before = ro.period_ps()
        tdc_before = device.transition_delays(route).delta_ps
        burn(device, route, value)
        results[value] = {
            "ro_shift": ro.period_ps() - ro_before,
            "tdc_shift": device.transition_delays(route).delta_ps - tdc_before,
        }
    # DRC outcome for each sensor's netlist.
    grid = PART.make_grid()
    route = build_route_bank(grid, [1000.0])[0]
    placer = FixedPlacer(grid)
    placer.place_at("loop_inv", CellType.INVERTER, Coordinate(0, 0))
    placer.place_at("counter_ff", CellType.FLIP_FLOP, Coordinate(0, 0))
    ro_image = Bitstream.compile(build_ro_netlist("p", route), placer.placement)
    ro_drc = check_design(ro_image, grid, PART.power_cap_watts)
    measure = build_measure_design(PART, [route])
    tdc_drc = check_design(measure.bitstream, grid, PART.power_cap_watts)
    return results, ro_drc, tdc_drc


def test_ablation_sensor_comparison(benchmark, emit):
    results, ro_drc, tdc_drc = benchmark.pedantic(
        compare_sensors, rounds=1, iterations=1
    )
    rows = [
        ["RO period shift (ps)",
         round(results[0]["ro_shift"], 2), round(results[1]["ro_shift"], 2)],
        ["TDC delta-ps shift (ps)",
         round(results[0]["tdc_shift"], 2), round(results[1]["tdc_shift"], 2)],
    ]
    emit("\n" + render_table(
        ["Sensor output", "after burn-0", "after burn-1"],
        rows,
        title="Ablation A5: sensor response to a 100 h burn on a 5000 ps route",
    ))
    emit(f"Cloud DRC: RO sensor passes={ro_drc.passed}, "
         f"TDC sensor passes={tdc_drc.passed}")

    # The RO cannot sign the previous value: both burns slow the loop.
    assert results[0]["ro_shift"] > 0.0
    assert results[1]["ro_shift"] > 0.0
    # The TDC separates them by sign.
    assert results[0]["tdc_shift"] < 0.0 < results[1]["tdc_shift"]
    # Only the TDC is deployable on the cloud platform.
    assert not ro_drc.passed
    assert tdc_drc.passed
    with pytest.raises(DesignRuleViolation):
        ro_drc.raise_on_failure()
