"""Benchmark T1: regenerate Table 1 (OpenTitan route-length study).

Prints the reproduced per-asset distribution rows interleaved with the
published values.
"""

from repro.opentitan import build_table1, render_table1


def test_table1_opentitan_route_lengths(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: build_table1(seed=1), rounds=1, iterations=1
    )
    emit("\n" + render_table1(rows, compare=True))
    # Acceptance: the paper's qualitative claims hold.
    medians = [row.stats.p50 for row in rows]
    assert sum(1 for m in medians if m < 600.0) >= 8, "most routes short"
    assert max(r.stats.maximum for r in rows) > 3000.0, "tails approach 4 ns"
    maxima = [row.stats.maximum for row in rows]
    assert maxima == sorted(maxima)
