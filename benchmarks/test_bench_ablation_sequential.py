"""Ablation A6: sequential extraction vs a fixed-duration burn.

Section 6.2: "The attacker can continue the burn-in process until they
are satisfied that the sensitive values are extracted."  This bench
quantifies the rent-time economics: the SPRT-based sequential attacker
(:mod:`repro.core.sequential`) stops per route as soon as the bit has
settled, paying for a fraction of the fixed 120-hour burn while
recovering the same bits.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.timeseries import length_class
from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.metrics import score_recovery
from repro.core.sequential import SequentialExtractor
from repro.core.threat_model1 import ThreatModel1Attack
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS as PART
from repro.rng import RngFactory


def run_both():
    rng = RngFactory(71)
    grid = PART.make_grid()
    lengths = [1000.0] * 4 + [2000.0] * 4 + [5000.0] * 4 + [10000.0] * 4
    routes = build_route_bank(grid, lengths)
    values = [int(b) for b in np.random.default_rng(5).integers(0, 2, 16)]
    design = build_target_design(PART, routes, values, heater_dsps=1024,
                                 name="afi")

    def attack(seed_name):
        # A fresh platform per strategy: both attackers must start from
        # the same pristine fleet for a fair rent-time comparison.
        provider = CloudProvider(seed=rng.stream(f"{seed_name}-p"))
        fleet = build_fleet(PART, 2, wear=cloud_wear_profile(200.0),
                            seed=904)  # identical fleet for both strategies
        provider.create_region("eu-west-2", fleet)
        marketplace = Marketplace()
        listing = marketplace.publish(design.bitstream, publisher="v",
                                      public_skeleton=True)
        return ThreatModel1Attack(
            provider=provider, marketplace=marketplace,
            afi_id=listing.afi_id, region="eu-west-2",
            seed=rng.stream(f"{seed_name}-s"),
        )

    fixed = attack("fixed").run(burn_hours=120, measure_every_hours=1.0)
    sequential = attack("seq").run_until_confident(
        max_hours=120, measure_every_hours=1.0
    )
    truth = {r.name: v for r, v in zip(routes, values)}
    return fixed, sequential, truth


def test_ablation_sequential_extraction(benchmark, emit):
    fixed, sequential, truth = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)
    fixed_score = score_recovery(fixed.recovered_bits, truth)
    seq_score = score_recovery(sequential.recovered_bits, truth)

    # Per-length settle times from the sequential run's series.
    extractor = SequentialExtractor()
    settle_by_length = {}
    for series in sequential.bundle:
        state = extractor.update_from_series(series)
        if state.settled:
            settle_by_length.setdefault(
                length_class(series.nominal_delay_ps), []
            ).append(state.settled_at_hour)
    rows = [
        ["fixed 120 h burn", f"{fixed_score.accuracy:.2f}",
         f"{fixed.burn_hours:.0f} h"],
        ["sequential (SPRT)", f"{seq_score.accuracy:.2f}",
         f"{sequential.burn_hours:.0f} h"],
    ]
    emit("\n" + render_table(
        ["Strategy", "bit accuracy", "rent time"],
        rows,
        title="Ablation A6: sequential vs fixed-duration extraction",
    ))
    for length in sorted(settle_by_length):
        times = settle_by_length[length]
        emit(f"  {length:7.0f} ps routes settle at "
             f"{np.median(times):5.1f} h (median of {len(times)})")

    # The trade-off: a modest accuracy concession (per-route drift on
    # worn devices varies around the SPRT's fixed-signal hypotheses)
    # buys a large rent-time saving.
    assert seq_score.accuracy >= 0.75
    assert sequential.burn_hours < 0.85 * fixed.burn_hours
    medians = [np.median(settle_by_length[L])
               for L in sorted(settle_by_length)]
    assert medians == sorted(medians, reverse=True)  # longer = sooner
