"""Ablation A7: temporal channel lifetimes (Section 7 comparison).

Tian & Szefer's thermal covert channel decays to ambient "within a few
minutes"; the BTI pentimento "can last hundreds of hours".  This bench
measures both decode accuracies as a function of the handoff gap
between the victim/transmitter releasing the board and the attacker/
receiver acquiring it.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.baselines import ThermalChannel
from repro.core.classify import NullReferencedSlopeClassifier
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.core.bench import LabBench
from repro.core.phases import CalibrationPhase
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.noise import LAB_NOISE
from repro.units import celsius_to_kelvin

PART = ZYNQ_ULTRASCALE_PLUS
GAPS_HOURS = (0.0, 0.5, 2.0, 24.0)
AMBIENT = celsius_to_kelvin(38.0)


def bti_accuracy_after_gap(gap_hours, seed):
    """Burn 8 bits for 100 h, idle for the gap, recover via transients."""
    device = FpgaDevice(PART, seed=seed)
    device.set_ambient(AMBIENT)
    bench = LabBench(device)
    bench.oven.at  # (oven unused: ambient fixed via set_ambient)
    routes = build_route_bank(device.grid, [10000.0] * 8)
    bits = [int(b) for b in np.random.default_rng(seed).integers(0, 2, 8)]
    victim = build_target_design(PART, routes, bits, heater_dsps=512)
    device.load(victim.bitstream)
    device.advance_hours(100.0, AMBIENT)
    device.wipe()
    device.advance_hours(gap_hours, AMBIENT)  # the handoff gap

    # Attacker: hold 0 / measure hourly for 15 h (Threat Model 2 style),
    # with a pristine twin device providing the null reference.
    def probe(probe_device):
        probe_bench = LabBench(probe_device)
        measure = build_measure_design(PART, routes)
        hold = build_target_design(PART, routes, [0] * 8, heater_dsps=0,
                                   name="hold")
        calibration = CalibrationPhase(measure, noise=LAB_NOISE, seed=seed)
        session = calibration.run(probe_bench)
        from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle

        bundle = SeriesBundle("probe")
        for route in routes:
            bundle.add(DeltaPsSeries(route_name=route.name,
                                     nominal_delay_ps=route.nominal_delay_ps))
        clock = 0.0
        for _ in range(15):
            probe_bench.load_image(measure.bitstream)
            for name, m in session.measure_all().items():
                bundle.series[name].append(clock, m.delta_ps)
            probe_bench.load_image(hold.bitstream)
            probe_bench.run_hours(1.0)
            clock += 1.0
        probe_bench.load_image(measure.bitstream)
        for name, m in session.measure_all().items():
            bundle.series[name].append(clock, m.delta_ps)
        return bundle

    victim_bundle = probe(device)
    twin = FpgaDevice(PART, seed=seed + 1000)
    twin.set_ambient(AMBIENT)
    null_bundle = probe(twin)
    recovered = NullReferencedSlopeClassifier().classify_many(
        list(victim_bundle), list(null_bundle), conditioned_to=0
    )
    truth = {r.name: b for r, b in zip(routes, bits)}
    hits = sum(1 for n, b in recovered.items() if b == truth[n])
    return hits / len(truth)


def run_comparison():
    thermal = ThermalChannel(seed=5)
    rows = []
    for gap_hours in GAPS_HOURS:
        thermal_accuracy = thermal.accuracy_at_gap(gap_hours * 60.0, bits=128)
        bti_accuracy = bti_accuracy_after_gap(gap_hours, seed=41)
        rows.append([f"{gap_hours:g} h", f"{thermal_accuracy:.2f}",
                     f"{bti_accuracy:.2f}"])
    return rows


def test_channel_lifetime_comparison(benchmark, emit):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit("\n" + render_table(
        ["Handoff gap", "thermal channel acc.", "BTI pentimento acc."],
        rows,
        title=(
            "Ablation A7: covert/side channel lifetime across the "
            "tenancy gap"
        ),
    ))
    thermal = [float(row[1]) for row in rows]
    bti = [float(row[2]) for row in rows]
    # The thermal channel is dead after half an hour in the pool.
    assert thermal[0] > 0.9
    assert thermal[1] < 0.75
    # The BTI pentimento reads perfectly through gaps that already kill
    # the thermal channel, and still beats chance after a full idle day
    # (the fast pool anneals with a ~32 h time constant -- exactly what
    # the provider hold-back mitigation exploits; the slow burn-0 pool
    # persists for hundreds of hours, per Experiment 1).
    assert bti[0] >= 0.9
    assert bti[2] >= 0.9
    assert bti[3] >= 0.5
