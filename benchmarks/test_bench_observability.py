"""Benchmark O1: instrumentation overhead of the observability layer.

The pipeline's hot paths call ``trace.span(...)`` and the metrics
registry on every capture.  Tracing is *off* by default and its
disabled path is a shared null context manager, so the promise to keep
is: with tracing disabled, the instrumentation adds no more than 5 %
to ``exp1 --quick`` wall time.  This benchmark measures the promise
directly — it times the quick run, counts how many instrumented
operations it performed (from the always-on counters), times the
disabled-path primitives in isolation, and checks the product.
"""

import time
import timeit

from repro.experiments import Experiment1Config, run_experiment1
from repro.observability import trace
from repro.observability.metrics import get_registry


def _time_noop_span() -> float:
    """Seconds per disabled trace.span() enter/exit."""
    loops = 200_000

    def body():
        with trace.span("bench.noop", route="r0"):
            pass

    return timeit.timeit(body, number=loops) / loops


def _time_counter_inc() -> float:
    """Seconds per get-or-create counter increment."""
    loops = 200_000
    registry = get_registry()

    def body():
        registry.counter("bench_overhead_total").inc()

    return timeit.timeit(body, number=loops) / loops


def test_noop_instrumentation_overhead(benchmark, emit):
    trace.disable()
    registry = get_registry()
    registry.reset()

    config = Experiment1Config.quick()
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_experiment1(config), rounds=1, iterations=1
    )
    wall = time.perf_counter() - start
    assert result.recovery_score.accuracy >= 0.5
    assert not trace.roots(), "tracing must stay disabled in this bench"

    # How many instrumented operations did the run actually perform?
    # Counters are priced by *increment* count, not value: the batch
    # kernels count hundreds of words/segments per single inc() call
    # (capture_words_total, aging_segment_updates_total), so summing
    # values would overstate the instrumentation work by orders of
    # magnitude.
    snapshot = registry.snapshot()
    span_sites = sum(
        snapshot["counters"].get(name, 0.0)
        for name in ("captures_total", "protocol_cycles_total",
                     "calibrations_total", "experiments_total",
                     "measurement_phases_total", "condition_phases_total")
    )
    histogram_observes = sum(
        h["count"] for h in snapshot["histograms"].values()
    )
    counter_incs = sum(
        counter.increments for counter in registry.counters.values()
    )

    per_span = _time_noop_span()
    per_inc = _time_counter_inc()
    overhead_s = (span_sites * per_span
                  + (counter_incs + histogram_observes) * per_inc)
    fraction = overhead_s / wall

    emit("\nObservability no-op overhead (exp1 --quick, tracing off):")
    emit(f"  wall time              : {wall * 1e3:8.1f} ms")
    emit(f"  span sites entered     : {span_sites:8.0f}"
         f"  @ {per_span * 1e9:6.0f} ns each")
    emit(f"  metric ops             : {counter_incs + histogram_observes:8.0f}"
         f"  @ {per_inc * 1e9:6.0f} ns each")
    emit(f"  estimated overhead     : {overhead_s * 1e3:8.3f} ms"
         f"  ({fraction * 100:.3f} % of wall)")

    # Acceptance: the no-op fast path keeps instrumentation under 5 %.
    assert fraction <= 0.05, (
        f"instrumentation overhead {fraction * 100:.2f}% exceeds 5% budget"
    )
    # And the primitives themselves are genuinely cheap (microsecond-class).
    assert per_span < 5e-6
    assert per_inc < 10e-6


def test_runstore_recording_overhead(tmp_path, benchmark, emit):
    """Benchmark O2: cost of recording a finished run into the store.

    ``--runstore`` prices one manifest build plus one sqlite
    transaction per invocation, paid after the experiment finishes.
    The promise: recording adds no more than 5 % to ``exp1 --quick``
    wall time.  Measured as (per-record cost) / (quick-run wall time)
    with the memoised git probe warmed, matching the steady state of a
    long-lived CI runner.
    """
    from repro.observability.manifest import build_manifest, git_state
    from repro.observability.metrics import get_registry
    from repro.observability.runstore import RunRecord, RunStore

    trace.disable()
    registry = get_registry()
    registry.reset()

    config = Experiment1Config.quick()
    start = time.perf_counter()
    result = run_experiment1(config)
    wall = time.perf_counter() - start
    assert result.recovery_score.accuracy >= 0.5

    git_state()  # memoised: the subprocess probe is a one-off, not per-run
    store = RunStore(tmp_path / "runs.db")
    seed_rows = [{"seed": i + 1, "value": 1.0} for i in range(8)]
    cli_config = {"experiment": "exp1", "quick": True, "seed": 7}

    def record_once():
        manifest = build_manifest(
            config=cli_config, seed=7,
            include_spans=False, include_metrics=False,
        )
        store.record_run(RunRecord(
            kind="experiment", experiment="exp1",
            started_unix=1000.0, outcome="ok", accuracy=1.0,
            config=cli_config, manifest=manifest.to_dict(),
            metrics_state=registry.dump_state(), seed_rows=seed_rows,
        ))

    loops = 20
    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: [record_once() for _ in range(loops)],
        rounds=1, iterations=1,
    )
    per_record = (time.perf_counter() - t0) / loops
    fraction = per_record / wall

    emit("\nRun-store recording overhead (exp1 --quick):")
    emit(f"  quick-run wall time    : {wall * 1e3:8.1f} ms")
    emit(f"  per-record cost        : {per_record * 1e3:8.3f} ms"
         f"  (manifest + sqlite txn + seed rows + metrics blob)")
    emit(f"  overhead per recorded run: {fraction * 100:.3f} % of wall")

    # Acceptance: auto-recording stays under the 5 % budget.
    assert fraction <= 0.05, (
        f"recording overhead {fraction * 100:.2f}% exceeds 5% budget"
    )


def test_series_recording_overhead(benchmark, emit, bench_block):
    """Benchmark O3: flight-recorder cost on the 1M-event churn bench.

    The bulk churn engine resolves whole windows vectorised; the
    recorder's grid sampling must ride those windows without giving the
    speed back.  The promise: attaching a default-cadence
    ``FlightRecorder`` adds no more than 5 % to the million-event churn
    benchmark.  Single-run wall times on a shared box jitter by more
    than the budget, so the overhead is estimated from *paired*
    interleaved off/on runs (the engine is deterministic): the median
    of the per-pair ratios cancels slow machine drift that a
    min-of-runs comparison would book as overhead.  The overhead
    itself is deterministic while noise only ever slows a run down, so
    a noisy-neighbour window that inflates one whole round cannot be
    averaged away — instead the measurement re-runs up to ``rounds``
    times, stops at the first round inside the budget, and publishes
    the *least-contaminated* (minimum) round estimate.  Published as
    the ``series_overhead`` block of ``BENCH_observability.json`` for
    the CI gate.
    """
    import gc
    import statistics

    from repro.cloud.campaigns import run_churn_benchmark
    from repro.observability.timeseries import FlightRecorder

    trace.disable()
    devices, arrivals = 100_000, 500_000  # 1M lifecycle events
    pairs = 7
    rounds = 3
    budget = 0.05

    def one_pair():
        off = run_churn_benchmark(
            devices=devices, arrivals=arrivals, seed=1,
        )["seconds"]
        recorder = FlightRecorder()
        on = run_churn_benchmark(
            devices=devices, arrivals=arrivals, seed=1,
            recorder=recorder,
        )["seconds"]
        return off, on, recorder

    def measure_round():
        one_pair()  # warm-up pair: allocator growth, cold caches
        ratios = []
        offs, ons = [], []
        recorder = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(pairs):
                off, on, recorder = one_pair()
                offs.append(off)
                ons.append(on)
                ratios.append(on / off)
        finally:
            if gc_was_enabled:
                gc.enable()
        return offs, ons, statistics.median(ratios) - 1.0, recorder

    def measure():
        best = None
        for _ in range(rounds):
            offs, ons, fraction, recorder = measure_round()
            if best is None or fraction < best[2]:
                best = (offs, ons, fraction, recorder)
            if fraction <= budget:
                break
        return best

    offs, ons, fraction, recorder = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    off_s, on_s = min(offs), min(ons)
    points = sum(len(s.points) for s in recorder.series.values())

    emit(f"\nFlight-recorder overhead (1M-event bulk churn, "
         f"{pairs} interleaved pairs):")
    emit(f"  recorder off (best)    : {off_s * 1e3:8.1f} ms")
    emit(f"  recorder on  (best)    : {on_s * 1e3:8.1f} ms")
    emit(f"  overhead (median pair) : {fraction * 100:+.2f} % "
         f"({len(recorder.series)} series, {points} retained points)")

    bench_block("series_overhead", {
        "devices": devices,
        "events": 2 * arrivals,
        "pairs": pairs,
        "off_seconds": round(off_s, 4),
        "on_seconds": round(on_s, 4),
        "fraction": round(fraction, 4),
        "series": len(recorder.series),
        "retained_points": points,
        "budget_fraction": budget,
    })

    # Acceptance: sim-time telemetry stays under the 5 % budget, and
    # the reservoir really did bound the retained sample count.
    assert fraction <= budget, (
        f"series overhead {fraction * 100:.2f}% exceeds 5% budget "
        f"in all {rounds} measurement rounds"
    )
    assert points <= len(recorder.series) * recorder.max_points
