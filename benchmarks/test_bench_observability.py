"""Benchmark O1: instrumentation overhead of the observability layer.

The pipeline's hot paths call ``trace.span(...)`` and the metrics
registry on every capture.  Tracing is *off* by default and its
disabled path is a shared null context manager, so the promise to keep
is: with tracing disabled, the instrumentation adds no more than 5 %
to ``exp1 --quick`` wall time.  This benchmark measures the promise
directly — it times the quick run, counts how many instrumented
operations it performed (from the always-on counters), times the
disabled-path primitives in isolation, and checks the product.
"""

import time
import timeit

from repro.experiments import Experiment1Config, run_experiment1
from repro.observability import trace
from repro.observability.metrics import get_registry


def _time_noop_span() -> float:
    """Seconds per disabled trace.span() enter/exit."""
    loops = 200_000

    def body():
        with trace.span("bench.noop", route="r0"):
            pass

    return timeit.timeit(body, number=loops) / loops


def _time_counter_inc() -> float:
    """Seconds per get-or-create counter increment."""
    loops = 200_000
    registry = get_registry()

    def body():
        registry.counter("bench_overhead_total").inc()

    return timeit.timeit(body, number=loops) / loops


def test_noop_instrumentation_overhead(benchmark, emit):
    trace.disable()
    registry = get_registry()
    registry.reset()

    config = Experiment1Config.quick()
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_experiment1(config), rounds=1, iterations=1
    )
    wall = time.perf_counter() - start
    assert result.recovery_score.accuracy >= 0.5
    assert not trace.roots(), "tracing must stay disabled in this bench"

    # How many instrumented operations did the run actually perform?
    # Counters are priced by *increment* count, not value: the batch
    # kernels count hundreds of words/segments per single inc() call
    # (capture_words_total, aging_segment_updates_total), so summing
    # values would overstate the instrumentation work by orders of
    # magnitude.
    snapshot = registry.snapshot()
    span_sites = sum(
        snapshot["counters"].get(name, 0.0)
        for name in ("captures_total", "protocol_cycles_total",
                     "calibrations_total", "experiments_total",
                     "measurement_phases_total", "condition_phases_total")
    )
    histogram_observes = sum(
        h["count"] for h in snapshot["histograms"].values()
    )
    counter_incs = sum(
        counter.increments for counter in registry.counters.values()
    )

    per_span = _time_noop_span()
    per_inc = _time_counter_inc()
    overhead_s = (span_sites * per_span
                  + (counter_incs + histogram_observes) * per_inc)
    fraction = overhead_s / wall

    emit("\nObservability no-op overhead (exp1 --quick, tracing off):")
    emit(f"  wall time              : {wall * 1e3:8.1f} ms")
    emit(f"  span sites entered     : {span_sites:8.0f}"
         f"  @ {per_span * 1e9:6.0f} ns each")
    emit(f"  metric ops             : {counter_incs + histogram_observes:8.0f}"
         f"  @ {per_inc * 1e9:6.0f} ns each")
    emit(f"  estimated overhead     : {overhead_s * 1e3:8.3f} ms"
         f"  ({fraction * 100:.3f} % of wall)")

    # Acceptance: the no-op fast path keeps instrumentation under 5 %.
    assert fraction <= 0.05, (
        f"instrumentation overhead {fraction * 100:.2f}% exceeds 5% budget"
    )
    # And the primitives themselves are genuinely cheap (microsecond-class).
    assert per_span < 5e-6
    assert per_inc < 10e-6


def test_runstore_recording_overhead(tmp_path, benchmark, emit):
    """Benchmark O2: cost of recording a finished run into the store.

    ``--runstore`` prices one manifest build plus one sqlite
    transaction per invocation, paid after the experiment finishes.
    The promise: recording adds no more than 5 % to ``exp1 --quick``
    wall time.  Measured as (per-record cost) / (quick-run wall time)
    with the memoised git probe warmed, matching the steady state of a
    long-lived CI runner.
    """
    from repro.observability.manifest import build_manifest, git_state
    from repro.observability.metrics import get_registry
    from repro.observability.runstore import RunRecord, RunStore

    trace.disable()
    registry = get_registry()
    registry.reset()

    config = Experiment1Config.quick()
    start = time.perf_counter()
    result = run_experiment1(config)
    wall = time.perf_counter() - start
    assert result.recovery_score.accuracy >= 0.5

    git_state()  # memoised: the subprocess probe is a one-off, not per-run
    store = RunStore(tmp_path / "runs.db")
    seed_rows = [{"seed": i + 1, "value": 1.0} for i in range(8)]
    cli_config = {"experiment": "exp1", "quick": True, "seed": 7}

    def record_once():
        manifest = build_manifest(
            config=cli_config, seed=7,
            include_spans=False, include_metrics=False,
        )
        store.record_run(RunRecord(
            kind="experiment", experiment="exp1",
            started_unix=1000.0, outcome="ok", accuracy=1.0,
            config=cli_config, manifest=manifest.to_dict(),
            metrics_state=registry.dump_state(), seed_rows=seed_rows,
        ))

    loops = 20
    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: [record_once() for _ in range(loops)],
        rounds=1, iterations=1,
    )
    per_record = (time.perf_counter() - t0) / loops
    fraction = per_record / wall

    emit("\nRun-store recording overhead (exp1 --quick):")
    emit(f"  quick-run wall time    : {wall * 1e3:8.1f} ms")
    emit(f"  per-record cost        : {per_record * 1e3:8.3f} ms"
         f"  (manifest + sqlite txn + seed rows + metrics blob)")
    emit(f"  overhead per recorded run: {fraction * 100:.3f} % of wall")

    # Acceptance: auto-recording stays under the 5 % budget.
    assert fraction <= 0.05, (
        f"recording overhead {fraction * 100:.2f}% exceeds 5% budget"
    )
