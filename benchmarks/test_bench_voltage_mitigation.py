"""Ablation A8: voltage scaling as a provider/manufacturer mitigation.

Section 8.2/8.3: "Some FPGAs that operate at different voltages and use
a lower voltage would reduce the burn-in effects" / "FPGA manufacturers
could consider more advanced dynamic voltage scaling techniques to allow
users to mitigate BTI selectively."  BTI accelerates exponentially in
gate voltage, so modest undervolting attacks the imprint at its source.

This bench burns the same secret at three core-voltage settings and
reports the imprint magnitude and the attacker's recovery.
"""

from repro.analysis.report import render_table
from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.core.metrics import score_recovery
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.noise import LAB_NOISE

PART = ZYNQ_ULTRASCALE_PLUS
VOLTAGES = (0.85, 0.80, 0.72)
SECRET = [1, 0, 1, 1, 0, 0]


def burn_at_voltage(voltage):
    device = FpgaDevice(PART, seed=91)
    device.set_core_voltage(voltage)
    bench = LabBench(device)
    routes = build_route_bank(device.grid, [5000.0] * len(SECRET))
    target = build_target_design(PART, routes, SECRET, heater_dsps=0)
    measure = build_measure_design(PART, routes)
    protocol = ConditionMeasureProtocol(
        environment=bench,
        target_bitstream=target.bitstream,
        measure_design=measure,
        routes=routes,
        condition_hours_per_cycle=2.0,
    )
    protocol.calibration.noise = LAB_NOISE
    protocol.calibration.seed = 92
    protocol.calibrate()
    bundle = protocol.run_cycles(24)  # 48-hour burn
    imprint = max(
        abs(device.route_delta_ps(route)) for route in routes
    )
    recovered = BurnTrendClassifier().classify_many(list(bundle))
    truth = {route.name: bit for route, bit in zip(routes, SECRET)}
    score = score_recovery(recovered, truth)
    return imprint, score


def test_ablation_voltage_scaling(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {v: burn_at_voltage(v) for v in VOLTAGES},
        rounds=1, iterations=1,
    )
    rows = [
        [f"{voltage:.2f} V", f"{imprint:.2f}",
         f"{score.accuracy:.2f}"]
        for voltage, (imprint, score) in results.items()
    ]
    emit("\n" + render_table(
        ["Core voltage", "max imprint (ps)", "attacker accuracy"],
        rows,
        title="Ablation A8: undervolting vs the pentimento imprint (48 h burn)",
    ))
    imprints = [results[v][0] for v in VOLTAGES]
    # Imprint shrinks monotonically with undervolting...
    assert imprints == sorted(imprints, reverse=True)
    assert results[0.72][0] < 0.75 * results[0.85][0]
    # ...but the t^n power law blunts the exponential *rate* suppression
    # to rate**n on the observable charge (a 130 mV undervolt cuts the
    # stress rate ~3x yet the imprint only ~1.5x), so the attacker still
    # recovers every bit -- quantifying the paper's scepticism that
    # voltage mitigations alone will outpace the threat (Section 8.3).
    for voltage in VOLTAGES:
        assert results[voltage][1].accuracy == 1.0
