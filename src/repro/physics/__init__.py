"""Transistor-level BTI physics model.

This package is the substitution for real UltraScale+ silicon: it models
bias temperature instability (BTI) stress and recovery on FPGA routing
transistors with the functional forms from the device-reliability
literature the paper builds on (power-law stress kinetics, stretched
exponential recovery, Arrhenius temperature acceleration, saturation with
device lifetime), calibrated so that the paper's published magnitudes
(Figures 6-8) are reproduced.

Public surface:

* :class:`~repro.physics.kinetics.TrapPool` -- one trap population with
  stress/recovery dynamics;
* :class:`~repro.physics.bti.SegmentBti` -- the persistent analog state of
  one routing segment (two opposing pools);
* :class:`~repro.physics.constants.MechanismParams` and the default
  parameter sets;
* :class:`~repro.physics.variation.ProcessVariation` -- per-device
  manufacturing variation;
* :class:`~repro.physics.aging.WearProfile` -- prior-lifetime wear for
  fresh lab boards vs. aged cloud devices;
* :class:`~repro.physics.pool_array.TrapPoolArray` /
  :class:`~repro.physics.pool_array.SegmentBtiArray` -- the vectorised
  structure-of-arrays aging engine, with the
  :func:`~repro.physics.pool_array.set_aging_kernel` /
  :func:`~repro.physics.pool_array.aging_kernel` selection knobs
  (``REPRO_AGING_KERNEL`` sets the import-time default).
"""

from repro.physics.arrhenius import stress_acceleration, recovery_acceleration
from repro.physics.bti import SegmentBti
from repro.physics.constants import (
    AGE_SUPPRESSION_EXPONENT,
    AGE_SUPPRESSION_HOURS,
    HIGH_POOL,
    LOW_POOL,
    PS_PER_SWITCH_AT_REFERENCE,
    REFERENCE_STRESS_HOURS,
    REFERENCE_TEMPERATURE_K,
    MechanismParams,
    age_suppression,
)
from repro.physics.delay import TransitionDelays
from repro.physics.kinetics import TrapPool
from repro.physics.pool_array import (
    AGING_KERNELS,
    SegmentBtiArray,
    TrapPoolArray,
    aging_kernel,
    get_aging_kernel,
    set_aging_kernel,
)
from repro.physics.variation import ProcessVariation
from repro.physics.aging import WearProfile, NEW_PART, CLOUD_PART

__all__ = [
    "AGE_SUPPRESSION_EXPONENT",
    "AGE_SUPPRESSION_HOURS",
    "AGING_KERNELS",
    "CLOUD_PART",
    "HIGH_POOL",
    "LOW_POOL",
    "MechanismParams",
    "NEW_PART",
    "PS_PER_SWITCH_AT_REFERENCE",
    "ProcessVariation",
    "REFERENCE_STRESS_HOURS",
    "REFERENCE_TEMPERATURE_K",
    "SegmentBti",
    "SegmentBtiArray",
    "TransitionDelays",
    "TrapPool",
    "TrapPoolArray",
    "WearProfile",
    "age_suppression",
    "aging_kernel",
    "get_aging_kernel",
    "set_aging_kernel",
    "stress_acceleration",
    "recovery_acceleration",
]
