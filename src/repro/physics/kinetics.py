"""Stress/recovery kinetics of a single trap population.

A :class:`TrapPool` integrates an arbitrary piecewise schedule of stress
and release intervals.  Charge is expressed directly in picoseconds of
transition-delay contribution (the Vth-to-delay linearisation is folded
into the amplitude; see :mod:`repro.physics.delay`).

The integration rules:

* **Stress** advances an internal *equivalent stress time* ``t_eq`` and
  accumulates charge along ``Q = A * t_eq**n``, where the increment is
  additionally scaled by the Arrhenius factor for the interval's
  temperature and by the device-age suppression at the interval's start.
* **Release** decays the charge along a stretched exponential relative to
  the charge at the moment stress was removed.
* **Re-stress** after partial recovery re-enters the stress curve with a
  *refill discount*: recently-emptied traps refill almost immediately
  under renewed stress, so the equivalent time lost to a recovery gap is
  only ``REFILL_PENALTY`` times the gap's duration (not the much larger
  equivalent time the decayed charge alone would imply).  Two limits
  anchor the choice:

  - the hourly condition/measure interleave of Experiments 1 and 2 has
    ~one-minute gaps, which must behave like continuous conditioning
    (each gap costs ~30 equivalent seconds);
  - 50%-duty AC stress (one hour on, one hour off) must land at the
    literature's ~60% of DC degradation, which ``REFILL_PENALTY = 0.5``
    reproduces: each off-hour refunds half an hour of equivalent time.

The per-element transcendentals (``exp``, ``pow``) go through numpy's
float64 ufuncs rather than :mod:`math`: numpy's SIMD kernels differ from
libm by ULPs, but agree exactly between length-1 and vectorised calls,
which is what lets :class:`~repro.physics.pool_array.TrapPoolArray`
reproduce this class bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import PhysicsError
from repro.physics.arrhenius import recovery_acceleration, stress_acceleration
from repro.physics.constants import (
    REFERENCE_STRESS_HOURS,
    REFERENCE_VOLTAGE_V,
    MechanismParams,
    age_suppression,
    voltage_acceleration,
)

#: Equivalent stress time refunded per hour of recovery gap when stress
#: resumes (see module docstring for the two anchoring limits).
REFILL_PENALTY = 0.5


def _pow(base: float, exponent: float) -> float:
    """``base ** exponent`` through the numpy float64 ufunc."""
    return float(np.power(base, exponent))


def _exp(value: float) -> float:
    """``e ** value`` through the numpy float64 ufunc."""
    return float(np.exp(value))


@dataclass
class TrapPool:
    """One trap population with persistent stress state.

    Attributes:
        params: kinetic parameters of the mechanism.
        amplitude_ps: charge (in ps of delay shift) this pool would reach
            after one equivalent reference-duration stress on a fresh
            device at reference temperature, before age suppression.
            Folds in the number of stressed transistors and their process
            variation.
    """

    params: MechanismParams
    amplitude_ps: float
    _charge_ps: float = field(default=0.0, repr=False)
    _equivalent_stress_hours: float = field(default=0.0, repr=False)
    _recovery_elapsed_hours: float = field(default=0.0, repr=False)
    _recovery_wall_hours: float = field(default=0.0, repr=False)
    _charge_at_release_ps: float = field(default=0.0, repr=False)
    _recovering: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.amplitude_ps < 0.0:
            raise PhysicsError(f"amplitude_ps must be >= 0, got {self.amplitude_ps}")

    @property
    def charge_ps(self) -> float:
        """Current charge of the pool, in picoseconds of delay shift."""
        return self._charge_ps

    @property
    def equivalent_stress_hours(self) -> float:
        """Equivalent cumulative stress time at reference conditions."""
        return self._equivalent_stress_hours

    def _rate_amplitude(self) -> float:
        """The power-law prefactor ``A`` in ``Q = A * t_eq**n``.

        Normalised so that ``t_eq = REFERENCE_STRESS_HOURS`` yields
        ``amplitude_ps`` on a fresh device at reference temperature.
        """
        n = self.params.stress_exponent
        return self.amplitude_ps / (REFERENCE_STRESS_HOURS**n)

    def stress(
        self,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty: float = 1.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Apply stress for ``duration_hours`` at ``temperature_k``.

        ``duty`` scales the effective stress time for partially-stressed
        schedules (toggling nets stress each pool with their respective
        duty fractions).  ``device_age_hours`` is the device's effective
        prior wear, which suppresses *incremental* charge.
        ``voltage_v`` applies the exponential voltage acceleration
        (defaults to the 0.85 V nominal).
        """
        self._check_interval(duration_hours, temperature_k)
        if not 0.0 <= duty <= 1.0:
            raise PhysicsError(f"duty must be in [0, 1], got {duty}")
        if duration_hours == 0.0 or duty == 0.0:
            return
        if self._recovering:
            self._reenter_stress_curve()
        n = self.params.stress_exponent
        rate = self._rate_amplitude()
        acceleration = stress_acceleration(self.params, temperature_k)
        if voltage_v is None:
            voltage_v = REFERENCE_VOLTAGE_V
        acceleration *= voltage_acceleration(voltage_v)
        effective_hours = duration_hours * duty * acceleration
        suppression = age_suppression(device_age_hours)
        t_old = self._equivalent_stress_hours
        t_new = t_old + effective_hours
        increment = rate * (_pow(t_new, n) - _pow(t_old, n))
        self._charge_ps += suppression * increment
        self._equivalent_stress_hours = t_new

    def release(self, duration_hours: float, temperature_k: float) -> None:
        """Remove stress for ``duration_hours``: traps anneal (recover)."""
        self._check_interval(duration_hours, temperature_k)
        if duration_hours == 0.0 or self._charge_ps == 0.0:
            return
        if not self._recovering:
            self._recovering = True
            self._recovery_elapsed_hours = 0.0
            self._recovery_wall_hours = 0.0
            self._charge_at_release_ps = self._charge_ps
        acceleration = recovery_acceleration(self.params, temperature_k)
        self._recovery_elapsed_hours += duration_hours * acceleration
        self._recovery_wall_hours += duration_hours
        ratio = self._recovery_elapsed_hours / self.params.recovery_tau_hours
        fraction = _exp(-_pow(ratio, self.params.recovery_beta))
        self._charge_ps = self._charge_at_release_ps * fraction

    def _reenter_stress_curve(self) -> None:
        """Resume stress after a recovery gap, with fast trap refill.

        The gap refunds ``REFILL_PENALTY * gap_hours`` of equivalent
        stress time; the charge snaps back onto the (rescaled) stress
        curve, modelling near-immediate refill of the recently emptied
        traps.
        """
        n = self.params.stress_exponent
        t_frozen = self._equivalent_stress_hours
        lost = REFILL_PENALTY * self._recovery_wall_hours
        t_new = max(t_frozen - lost, 0.0)
        if t_frozen > 0.0 and t_new > 0.0:
            refilled = self._charge_at_release_ps * _pow(t_new / t_frozen, n)
            # Never refill below the surviving (decayed) charge.
            self._charge_ps = max(refilled, self._charge_ps)
        elif t_new == 0.0:
            # The whole accumulation was refunded; keep the decayed
            # remainder and restart the curve from the time it implies.
            rate = self._rate_amplitude()
            if rate > 0.0 and self._charge_ps > 0.0:
                t_new = _pow(self._charge_ps / rate, 1.0 / n)
        self._equivalent_stress_hours = t_new
        self._recovering = False
        self._recovery_elapsed_hours = 0.0
        self._recovery_wall_hours = 0.0
        self._charge_at_release_ps = 0.0

    def preload(self, charge_ps: float) -> None:
        """Install residual charge from unobserved prior history.

        Used to initialise aged cloud devices with the faint imprints of
        previous tenants, and for Experiment 3's unobserved 200-hour
        victim burn.  The pool is placed on the stress curve at the
        equivalent time implied by the charge.
        """
        if charge_ps < 0.0:
            raise PhysicsError(f"preloaded charge must be >= 0, got {charge_ps}")
        self._charge_ps = charge_ps
        self._recovering = False
        self._recovery_elapsed_hours = 0.0
        self._charge_at_release_ps = 0.0
        self._reenter_stress_curve()
        self._recovering = False

    @staticmethod
    def _check_interval(duration_hours: float, temperature_k: float) -> None:
        if duration_hours < 0.0:
            raise PhysicsError(f"duration must be >= 0, got {duration_hours}")
        if temperature_k <= 0.0:
            raise PhysicsError(f"temperature must be > 0 K, got {temperature_k}")
