"""Delay composition: from trap charge to transition delays.

The TDC observes the propagation delay of rising and falling transitions
through a route.  Degradation of the pool stressed by logical 1 slows the
falling transition; degradation of the pool stressed by logical 0 slows
the rising transition, so the paper's observable::

    delta_ps = falling_delay - rising_delay

moves positive under burn-1 and negative under burn-0 (Figure 6).

Charge is already expressed in picoseconds because the alpha-power-law
delay model is linear in threshold-voltage shift for the small shifts BTI
produces: ``d ~ Vdd / (Vdd - Vth)**alpha`` gives
``delta_d / d ~ alpha * delta_Vth / (Vdd - Vth)`` to first order, so a
fixed ps-per-millivolt conversion can be folded into the pool amplitude.
:func:`alpha_power_delay_shift` exposes the underlying relation for tests
and for users who want to reason in millivolts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PhysicsError

#: Nominal UltraScale+ core supply (VCCINT), volts.
NOMINAL_VDD = 0.85
#: Nominal FinFET threshold voltage, volts.
NOMINAL_VTH = 0.32
#: Velocity-saturation exponent of the alpha-power-law MOSFET model.
ALPHA_POWER_EXPONENT = 1.3


def alpha_power_delay_shift(
    nominal_delay_ps: float,
    delta_vth_mv: float,
    vdd: float = NOMINAL_VDD,
    vth: float = NOMINAL_VTH,
    alpha: float = ALPHA_POWER_EXPONENT,
) -> float:
    """First-order delay increase (ps) from a threshold-voltage shift.

    ``delta_d = d * alpha * delta_Vth / (Vdd - Vth)``.  Used to document
    and test the linearisation that lets the kinetics work directly in
    picoseconds.
    """
    if nominal_delay_ps < 0.0:
        raise PhysicsError(f"nominal delay must be >= 0, got {nominal_delay_ps}")
    overdrive = vdd - vth
    if overdrive <= 0.0:
        raise PhysicsError(f"Vdd ({vdd}) must exceed Vth ({vth})")
    return nominal_delay_ps * alpha * (delta_vth_mv / 1000.0) / overdrive


@dataclass(frozen=True)
class TransitionDelays:
    """Rising and falling propagation delays of a route, in picoseconds."""

    rising_ps: float
    falling_ps: float

    def __post_init__(self) -> None:
        if self.rising_ps < 0.0 or self.falling_ps < 0.0:
            raise PhysicsError(
                f"delays must be >= 0, got {self.rising_ps}, {self.falling_ps}"
            )

    @property
    def delta_ps(self) -> float:
        """The paper's observable: falling minus rising delay."""
        return self.falling_ps - self.rising_ps

    def __add__(self, other: "TransitionDelays") -> "TransitionDelays":
        return TransitionDelays(
            rising_ps=self.rising_ps + other.rising_ps,
            falling_ps=self.falling_ps + other.falling_ps,
        )

    @classmethod
    def zero(cls) -> "TransitionDelays":
        """A zero-delay pair (the additive identity)."""
        return cls(rising_ps=0.0, falling_ps=0.0)
