"""Process-variation models.

Every manufactured die differs: segment delays, rising/falling asymmetry
and per-switch BTI susceptibility all vary around their nominal values.
Variation matters for three reasons in this reproduction:

1. it is why sensor calibration (finding theta_init per route) exists;
2. it sets the static falling-minus-rising offset that the paper removes
   by centring each series at its first measurement;
3. it doubles as a **device fingerprint**: the vector of route delays is
   unique per die, which the attacker exploits to confirm re-acquisition
   of the victim's physical board (Assumption 2 / Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class VariationParams:
    """Magnitudes of manufacturing variation.

    Attributes:
        delay_sigma: lognormal sigma of per-segment delay multipliers.
        amplitude_sigma: lognormal sigma of per-segment BTI amplitude
            multipliers (trap-density variation).
        asymmetry_sigma_ps: gaussian sigma of the static falling-minus-
            rising offset per segment, in picoseconds.
    """

    delay_sigma: float = 0.008
    amplitude_sigma: float = 0.18
    asymmetry_sigma_ps: float = 1.5

    def __post_init__(self) -> None:
        for name in ("delay_sigma", "amplitude_sigma", "asymmetry_sigma_ps"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be >= 0")


DEFAULT_VARIATION = VariationParams()


class ProcessVariation:
    """Samples per-segment manufacturing variation for one die.

    All draws come from a die-specific random stream, so two devices
    built from different seeds have different (but individually
    reproducible) variation maps -- the basis of fingerprinting.
    """

    def __init__(
        self, seed: SeedLike = None, params: VariationParams = DEFAULT_VARIATION
    ) -> None:
        self.params = params
        self._rng = make_rng(seed)

    def delay_multiplier(self) -> float:
        """Multiplier applied to a segment's nominal delay."""
        return float(self._rng.lognormal(mean=0.0, sigma=self.params.delay_sigma))

    def amplitude_multiplier(self) -> float:
        """Multiplier applied to a segment's BTI amplitude."""
        return float(self._rng.lognormal(mean=0.0, sigma=self.params.amplitude_sigma))

    def asymmetry_ps(self) -> float:
        """Static falling-minus-rising delay offset for a segment."""
        return float(self._rng.normal(loc=0.0, scale=self.params.asymmetry_sigma_ps))

    def sample_segment(
        self, nominal_delay_ps: float, nominal_amplitude_ps: float
    ) -> tuple[float, float, float]:
        """Sample (rising_ps, falling_ps, amplitude_ps) for one segment."""
        if nominal_delay_ps <= 0.0:
            raise ConfigurationError(
                f"nominal delay must be positive, got {nominal_delay_ps}"
            )
        if nominal_amplitude_ps < 0.0:
            raise ConfigurationError(
                f"nominal amplitude must be >= 0, got {nominal_amplitude_ps}"
            )
        delay = nominal_delay_ps * self.delay_multiplier()
        asymmetry = self.asymmetry_ps()
        rising = max(delay - asymmetry / 2.0, 1.0)
        falling = max(delay + asymmetry / 2.0, 1.0)
        amplitude = nominal_amplitude_ps * self.amplitude_multiplier()
        return rising, falling, amplitude

    def spawn_rng(self) -> np.random.Generator:
        """A child generator for related per-die randomness."""
        return np.random.default_rng(self._rng.integers(0, 2**63))
