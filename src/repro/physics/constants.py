"""BTI mechanism parameters and calibration constants.

The paper measures the observable ``delta_ps = (falling - rising)
propagation delay``, centred at the first measurement.  Empirically
(Section 6, Figure 6):

* holding logical **1** on a route pushes ``delta_ps`` **positive**;
* holding logical **0** pushes it **negative**;
* the burn-1 imprint recovers quickly once the value is removed
  (30-50 hours after a 200-hour burn);
* the burn-0 imprint recovers very slowly (over 200 hours);
* magnitudes on a ~4-year-old cloud part are roughly an order of
  magnitude smaller than on a factory-new part.

Section 3 of the paper attributes the asymmetry to the differing NBTI and
PBTI trap physics (NBTI: hydrogen-passivated interface states, larger
shifts and faster recovery; PBTI: energetically deeper electron traps in
the gate dielectric, slower recovery), while noting that the exact
transistor-level attribution inside a programmable route is not resolved
("suggests a fundamental difference between the NBTI and PBTI effect on
the 16nm FinFET transistors").  We therefore name the two populations by
the *logic value that stresses them* rather than by transistor polarity:

* ``HIGH_POOL`` -- charged while the route holds 1; large amplitude, fast
  (NBTI-like) recovery; its charge slows the falling transition, so it
  contributes with **positive** sign to ``delta_ps``.
* ``LOW_POOL`` -- charged while the route holds 0; slightly smaller
  amplitude, very slow (deep-trap, PBTI-like) recovery; its charge slows
  the rising transition, so it contributes with **negative** sign.

Functional forms
----------------

Stress follows the standard power law referenced to equivalent stress
time ``t_eq`` (hours at reference conditions)::

    Q(t_eq) = A_pool * t_eq ** n

with ``A_pool`` folding in the per-switch amplitude, process variation,
the Arrhenius temperature factor and the device-age suppression.  Recovery
follows a stretched exponential relative to the charge at stress removal::

    Q(t_rec) = Q_peak * exp(-(t_rec / tau) ** beta)

Re-stress after partial recovery re-enters the power law at the
equivalent time implied by the current charge (standard effective-time
construction), which makes arbitrary piecewise hold/release schedules
well defined.

Device-lifetime saturation is modelled as a multiplicative suppression of
*incremental* stress::

    suppress(age) = (1 + age / AGE_SUPPRESSION_HOURS) ** -AGE_SUPPRESSION_EXPONENT

calibrated so that a part with ~4000 effective prior stress hours (a
several-year-old cloud FPGA at realistic duty cycle) shows ~10x smaller
incremental burn-in, matching the Experiment 1 vs Experiment 2 magnitude
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import celsius_to_kelvin

#: Reference junction temperature for the calibrated amplitudes: the 60 C
#: oven of Experiment 1 plus ~7 C of self-heating from the Target
#: design's arithmetic-heavy heater circuits (the calibration anchors --
#: the Figure 6 magnitude bands -- were measured under exactly these
#: conditions, so the junction temperature during Experiment 1's
#: condition phase is by construction the unit-acceleration point).
REFERENCE_TEMPERATURE_K = celsius_to_kelvin(67.0)

#: Reference stress duration: the paper's 200-hour burn-in period.
REFERENCE_STRESS_HOURS = 200.0

#: Calibrated delta-ps contribution of a single routing switch (PIP)
#: after REFERENCE_STRESS_HOURS of constant-1 hold at the reference
#: temperature on a factory-new device.  Together with the segment
#: library's switch counts this reproduces the Figure 6 magnitude bands
#: (1000 ps route -> 1-2 ps, ..., 10000 ps route -> 10-11 ps at 200 h).
PS_PER_SWITCH_AT_REFERENCE = 0.27

#: Device-age suppression parameters (see module docstring).
AGE_SUPPRESSION_HOURS = 500.0
AGE_SUPPRESSION_EXPONENT = 1.05

#: Nominal UltraScale+ core supply (VCCINT), volts -- the calibration
#: reference for voltage acceleration.
REFERENCE_VOLTAGE_V = 0.85

#: Exponential voltage-acceleration coefficient of BTI trap generation,
#: per volt of gate overdrive change (typical FinFET BTI values sit
#: around 8-10/V): undervolting by 50 mV roughly halves the burn-in
#: rate, which is the Section 8.2/8.3 provider/manufacturer mitigation.
VOLTAGE_GAMMA_PER_V = 9.0


def voltage_acceleration(voltage_v: float) -> float:
    """Stress-rate multiplier at a core voltage vs. the 0.85 V nominal."""
    if voltage_v <= 0.0:
        raise ConfigurationError(f"voltage must be positive, got {voltage_v}")
    import math

    return math.exp(VOLTAGE_GAMMA_PER_V * (voltage_v - REFERENCE_VOLTAGE_V))


def age_suppression(age_hours: float) -> float:
    """Suppression of incremental BTI on a device with prior wear.

    Returns the multiplicative factor applied to newly accumulated stress
    for a device with ``age_hours`` of effective prior stress.  A new part
    returns 1.0; a ~4000-hour part returns ~0.1.
    """
    if age_hours < 0:
        raise ConfigurationError(f"age_hours must be >= 0, got {age_hours}")
    base = 1.0 + age_hours / AGE_SUPPRESSION_HOURS
    return base ** (-AGE_SUPPRESSION_EXPONENT)


@dataclass(frozen=True)
class MechanismParams:
    """Kinetic parameters of one trap population.

    Attributes:
        name: human-readable mechanism label.
        stress_exponent: power-law exponent ``n`` of charge build-up.
        amplitude_scale: relative amplitude of this mechanism (the high
            pool defines 1.0).
        recovery_tau_hours: stretched-exponential recovery time constant.
        recovery_beta: stretched-exponential shape parameter (0 < beta <= 1).
        ea_stress_ev: Arrhenius activation energy of stress build-up.
        ea_recovery_ev: Arrhenius activation energy of recovery.
    """

    name: str
    stress_exponent: float
    amplitude_scale: float
    recovery_tau_hours: float
    recovery_beta: float
    ea_stress_ev: float
    ea_recovery_ev: float

    def __post_init__(self) -> None:
        if not 0.0 < self.stress_exponent < 1.0:
            raise ConfigurationError(
                f"stress_exponent must be in (0, 1), got {self.stress_exponent}"
            )
        if self.amplitude_scale <= 0.0:
            raise ConfigurationError(
                f"amplitude_scale must be > 0, got {self.amplitude_scale}"
            )
        if self.recovery_tau_hours <= 0.0:
            raise ConfigurationError(
                f"recovery_tau_hours must be > 0, got {self.recovery_tau_hours}"
            )
        if not 0.0 < self.recovery_beta <= 1.0:
            raise ConfigurationError(
                f"recovery_beta must be in (0, 1], got {self.recovery_beta}"
            )


#: Population stressed by holding logical 1.  Fast, NBTI-like recovery:
#: a 200-hour imprint decays through zero observable difference within
#: roughly 30-50 hours once the complement value is applied (Figure 6).
HIGH_POOL = MechanismParams(
    name="high-pool (stressed by logic 1, fast recovery)",
    stress_exponent=0.35,
    amplitude_scale=1.0,
    recovery_tau_hours=32.0,
    recovery_beta=0.55,
    ea_stress_ev=0.50,
    ea_recovery_ev=0.20,
)

#: Population stressed by holding logical 0.  Deep-trap, PBTI-like slow
#: recovery: a 200-hour imprint is still clearly visible 200 hours after
#: the stress is removed (Figure 6).
LOW_POOL = MechanismParams(
    name="low-pool (stressed by logic 0, slow recovery)",
    stress_exponent=0.35,
    amplitude_scale=0.93,
    recovery_tau_hours=20000.0,
    recovery_beta=0.40,
    ea_stress_ev=0.50,
    ea_recovery_ev=0.20,
)
