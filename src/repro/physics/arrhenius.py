"""Arrhenius temperature acceleration of BTI stress and recovery.

Both BTI trap generation and trap annealing are thermally activated.  The
model normalises to :data:`~repro.physics.constants.REFERENCE_TEMPERATURE_K`
(the 60 C oven of Experiment 1), so an acceleration factor of 1.0 means
"the calibrated reference rate".
"""

from __future__ import annotations

import math

from repro.errors import PhysicsError
from repro.physics.constants import REFERENCE_TEMPERATURE_K, MechanismParams
from repro.units import BOLTZMANN_EV_PER_K


def arrhenius_factor(
    temperature_k: float,
    activation_energy_ev: float,
    reference_k: float = REFERENCE_TEMPERATURE_K,
) -> float:
    """Generic Arrhenius acceleration factor relative to a reference.

    Returns ``exp(Ea/k * (1/T_ref - 1/T))``: > 1 above the reference
    temperature, < 1 below it, exactly 1 at the reference.
    """
    if temperature_k <= 0.0:
        raise PhysicsError(f"temperature must be positive kelvin, got {temperature_k}")
    if reference_k <= 0.0:
        raise PhysicsError(f"reference must be positive kelvin, got {reference_k}")
    exponent = (activation_energy_ev / BOLTZMANN_EV_PER_K) * (
        1.0 / reference_k - 1.0 / temperature_k
    )
    return math.exp(exponent)


def stress_acceleration(params: MechanismParams, temperature_k: float) -> float:
    """Acceleration of stress build-up at ``temperature_k`` for a mechanism."""
    return arrhenius_factor(temperature_k, params.ea_stress_ev)


def recovery_acceleration(params: MechanismParams, temperature_k: float) -> float:
    """Acceleration of trap annealing at ``temperature_k`` for a mechanism."""
    return arrhenius_factor(temperature_k, params.ea_recovery_ev)
