"""Persistent per-segment BTI state.

A :class:`SegmentBti` is the analog memory of one routing segment.  It
owns two opposing :class:`~repro.physics.kinetics.TrapPool` populations
and the segment's static (process-determined) rising/falling delays, and
exposes the hold/toggle/idle schedule operations that designs apply while
loaded.

This object lives on the :class:`~repro.fabric.device.FpgaDevice`, *not*
on any design: wiping the device destroys logical state but leaves these
objects untouched, which is precisely the vulnerability the paper
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import PhysicsError
from repro.physics.constants import HIGH_POOL, LOW_POOL
from repro.physics.delay import TransitionDelays
from repro.physics.kinetics import TrapPool


@dataclass(frozen=True)
class SegmentTraits:
    """Static, manufacturing-determined properties of a routing segment."""

    #: Nominal rising-transition delay, ps (includes process variation).
    rising_delay_ps: float
    #: Nominal falling-transition delay, ps.
    falling_delay_ps: float
    #: Delta-ps this segment contributes after one reference burn-1
    #: (fresh device, reference temperature); scales with the number of
    #: stressed switch transistors.
    burn_amplitude_ps: float

    def __post_init__(self) -> None:
        if self.rising_delay_ps <= 0.0 or self.falling_delay_ps <= 0.0:
            raise PhysicsError("segment delays must be positive")
        if self.burn_amplitude_ps < 0.0:
            raise PhysicsError("burn amplitude must be >= 0")


class SegmentBti:
    """Analog state of one routing segment: two trap pools plus traits."""

    def __init__(self, traits: SegmentTraits) -> None:
        self.traits = traits
        self.high_pool = TrapPool(
            params=HIGH_POOL,
            amplitude_ps=traits.burn_amplitude_ps * HIGH_POOL.amplitude_scale,
        )
        self.low_pool = TrapPool(
            params=LOW_POOL,
            amplitude_ps=traits.burn_amplitude_ps * LOW_POOL.amplitude_scale,
        )

    def hold(
        self,
        value: int,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Hold a constant logic value on the segment for a duration.

        Stresses the pool matching ``value`` (at the given core voltage)
        and lets the other recover.
        """
        if value not in (0, 1):
            raise PhysicsError(f"logic value must be 0 or 1, got {value!r}")
        if value == 1:
            self.high_pool.stress(
                duration_hours, temperature_k, device_age_hours,
                voltage_v=voltage_v,
            )
            self.low_pool.release(duration_hours, temperature_k)
        else:
            self.low_pool.stress(
                duration_hours, temperature_k, device_age_hours,
                voltage_v=voltage_v,
            )
            self.high_pool.release(duration_hours, temperature_k)

    def toggle(
        self,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty_high: float = 0.5,
        ac_factor: float = 0.5,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Drive the segment with switching activity.

        Each pool is stressed for its duty fraction; the ``ac_factor``
        captures the reduced net build-up of AC relative to DC stress
        (on-the-fly recovery between transitions).
        """
        if not 0.0 <= duty_high <= 1.0:
            raise PhysicsError(f"duty_high must be in [0, 1], got {duty_high}")
        if not 0.0 <= ac_factor <= 1.0:
            raise PhysicsError(f"ac_factor must be in [0, 1], got {ac_factor}")
        self.high_pool.stress(
            duration_hours, temperature_k, device_age_hours,
            duty=duty_high * ac_factor, voltage_v=voltage_v,
        )
        self.low_pool.stress(
            duration_hours,
            temperature_k,
            device_age_hours,
            duty=(1.0 - duty_high) * ac_factor,
            voltage_v=voltage_v,
        )

    def idle(self, duration_hours: float, temperature_k: float) -> None:
        """Leave the segment unconfigured/undriven: both pools recover."""
        self.high_pool.release(duration_hours, temperature_k)
        self.low_pool.release(duration_hours, temperature_k)

    @property
    def delta_ps(self) -> float:
        """Current BTI contribution to (falling - rising) delay."""
        return self.high_pool.charge_ps - self.low_pool.charge_ps

    def transition_delays(self) -> TransitionDelays:
        """Current absolute rising/falling delays including degradation."""
        return TransitionDelays(
            rising_ps=self.traits.rising_delay_ps + self.low_pool.charge_ps,
            falling_ps=self.traits.falling_delay_ps + self.high_pool.charge_ps,
        )

    def preload_imprint(
        self, high_charge_ps: float = 0.0, low_charge_ps: float = 0.0
    ) -> None:
        """Install residual charge from unobserved prior usage."""
        self.high_pool.preload(high_charge_ps)
        self.low_pool.preload(low_charge_ps)

    def snapshot(self) -> "SegmentSnapshot":
        """Immutable copy of the current analog state (for analysis)."""
        return SegmentSnapshot(
            high_charge_ps=self.high_pool.charge_ps,
            low_charge_ps=self.low_pool.charge_ps,
            delta_ps=self.delta_ps,
        )


@dataclass(frozen=True)
class SegmentSnapshot:
    """Point-in-time view of a segment's analog state."""

    high_charge_ps: float
    low_charge_ps: float
    delta_ps: float


def aggregate_delays(segments: Iterable[SegmentBti]) -> TransitionDelays:
    """Total rising/falling delay of a chain of segments.

    ``segments`` is an iterable of :class:`SegmentBti`; a route's delay is
    the sum of its constituent segment delays.
    """
    total = TransitionDelays.zero()
    for segment in segments:
        total = total + segment.transition_delays()
    return total


def aggregate_delta_ps(segments: Iterable[SegmentBti]) -> float:
    """Total BTI delta-ps over a chain of segments."""
    return float(sum(segment.delta_ps for segment in segments))
