"""Device wear profiles: factory-new lab boards vs. aged cloud FPGAs.

Experiment 1 uses a factory-new ZCU102 ("it will experience the largest
BTI effects since no degradation has occurred").  Experiments 2 and 3 use
AWS F1 devices that have been deployed for years, which the paper notes
makes burn-in roughly an order of magnitude harder to observe.

A :class:`WearProfile` captures that history:

* ``effective_age_hours`` -- the equivalent prior DC-stress hours, which
  enters the kinetics as the age-suppression factor (a four-year-old
  device at realistic stress duty has a few thousand effective hours);
* residual-imprint statistics -- the faint pentimenti of *previous*
  tenants still present when a device is handed to a new one, which act
  as route-to-route noise on cloud devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class WearProfile:
    """Statistical description of a device population's prior wear."""

    name: str
    #: Mean effective prior stress, hours (0 for a factory-new part).
    age_mean_hours: float
    #: Spread of effective prior stress across the fleet, hours.
    age_sigma_hours: float
    #: Scale of residual per-segment imprints from prior tenants,
    #: expressed as a fraction of the segment's reference burn amplitude.
    residual_imprint_fraction: float

    def __post_init__(self) -> None:
        if self.age_mean_hours < 0.0 or self.age_sigma_hours < 0.0:
            raise ConfigurationError("age statistics must be >= 0")
        if not 0.0 <= self.residual_imprint_fraction <= 1.0:
            raise ConfigurationError("residual_imprint_fraction must be in [0, 1]")

    def sample_age_hours(self, seed: SeedLike = None) -> float:
        """Draw one device's effective prior stress age."""
        rng = make_rng(seed)
        if self.age_sigma_hours == 0.0:
            return self.age_mean_hours
        age = rng.normal(self.age_mean_hours, self.age_sigma_hours)
        return float(np.clip(age, 0.0, None))

    def sample_residual_imprints(
        self, burn_amplitude_ps: float, seed: SeedLike = None
    ) -> tuple[float, float]:
        """Draw residual (high, low) pool charges for one segment.

        Prior tenants held unknown values; the residue left after the
        provider's holding time is small and roughly symmetric between
        pools, so each pool gets an independent half-normal charge.
        """
        rng = make_rng(seed)
        scale = self.residual_imprint_fraction * burn_amplitude_ps
        if scale == 0.0:
            return 0.0, 0.0
        high = abs(float(rng.normal(0.0, scale)))
        low = abs(float(rng.normal(0.0, scale)))
        return high, low


#: A factory-new development board (Experiment 1's ZCU102).
NEW_PART = WearProfile(
    name="factory-new",
    age_mean_hours=0.0,
    age_sigma_hours=0.0,
    residual_imprint_fraction=0.0,
)

#: A multi-year-deployed cloud FPGA (Experiments 2 and 3; the paper's
#: eu-west-2 devices carry "potentially four years of wear").  The mean
#: effective age yields the ~10x incremental-burn-in suppression the
#: paper observed between the new ZCU102 and AWS F1.
CLOUD_PART = WearProfile(
    name="cloud-aged",
    age_mean_hours=4000.0,
    age_sigma_hours=900.0,
    residual_imprint_fraction=0.06,
)
