"""Structure-of-arrays BTI aging engine for whole-device time advance.

:class:`TrapPoolArray` holds the state of *every* pool of one mechanism
on a device in contiguous float64 arrays (``charge_ps``,
``equivalent_stress_hours``, recovery bookkeeping, amplitudes) and
applies the :class:`~repro.physics.kinetics.TrapPool` integration rules
as vectorised kernels over index sets.  :class:`SegmentBtiArray` pairs a
high- and a low-mechanism array into the per-segment store the
:class:`~repro.fabric.device.FpgaDevice` registers routing segments
into, so one simulated interval becomes a handful of masked array
updates instead of O(segments) Python calls.

Bit-identity with the scalar reference
--------------------------------------

The kernels reproduce ``TrapPool``'s formulas element-for-element:

* exactly-rounded IEEE operations (add, subtract, multiply, divide,
  maximum) are identical between numpy and Python by definition;
* the transcendentals (``exp``, ``pow``) are implementation-defined, so
  both paths call the *same* numpy float64 ufuncs -- numpy's SIMD
  kernels agree exactly between length-1 and vectorised invocations
  (``kinetics._pow`` / ``kinetics._exp`` on the scalar side);
* the per-interval Arrhenius, voltage-acceleration and age-suppression
  factors are scalars shared by every element of an interval; they are
  computed once per interval with the very functions the scalar path
  calls (and memoised, since junction temperature and core voltage
  rarely change between intervals).

``tests/physics/test_pool_array.py`` pins the equivalence across
randomised stress/release/re-stress/preload schedule sweeps.

Kernel selection
----------------

Mirroring the PR 2 capture-kernel switch: ``"array"`` (this module) is
the production default, ``"scalar"`` the per-object reference path.
Select per process with :func:`set_aging_kernel`, temporarily with the
:func:`aging_kernel` context manager, or at import time with the
``REPRO_AGING_KERNEL`` environment variable.  Devices resolve the
default when they are constructed (their state layout depends on it).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import PhysicsError
from repro.observability.metrics import registry
from repro.physics.arrhenius import recovery_acceleration, stress_acceleration
from repro.physics.bti import SegmentSnapshot, SegmentTraits
from repro.physics.constants import (
    HIGH_POOL,
    LOW_POOL,
    REFERENCE_STRESS_HOURS,
    REFERENCE_VOLTAGE_V,
    MechanismParams,
    age_suppression,
    voltage_acceleration,
)
from repro.physics.delay import TransitionDelays
from repro.physics.kinetics import REFILL_PENALTY

#: Aging kernels: the vectorised array engine is the production path;
#: the per-object scalar loop stays as the reference implementation the
#: equivalence tests pin the array kernel against.
AGING_KERNELS = ("array", "scalar")

_default_kernel = os.environ.get("REPRO_AGING_KERNEL", "array")
if _default_kernel not in AGING_KERNELS:
    _default_kernel = "array"


def _check_kernel(kernel: str) -> str:
    if kernel not in AGING_KERNELS:
        raise PhysicsError(
            f"unknown aging kernel {kernel!r}; choose from {AGING_KERNELS}"
        )
    return kernel


def get_aging_kernel() -> str:
    """The process-wide default aging kernel."""
    return _default_kernel


def set_aging_kernel(kernel: str) -> str:
    """Select the process-wide default aging kernel.

    Returns the previous default so callers can restore it.  Devices
    read the default at construction time, so switch *before* building
    the device (benchmarks and the equivalence suite use
    :func:`aging_kernel`).
    """
    global _default_kernel
    previous = _default_kernel
    _default_kernel = _check_kernel(kernel)
    return previous


@contextmanager
def aging_kernel(kernel: str) -> Iterator[str]:
    """Temporarily make every new device use one aging kernel."""
    previous = set_aging_kernel(kernel)
    try:
        yield kernel
    finally:
        set_aging_kernel(previous)


@lru_cache(maxsize=256)
def _stress_factor(
    params: MechanismParams, temperature_k: float, voltage_v: float
) -> float:
    """Per-interval stress acceleration: Arrhenius times voltage.

    Constant across every segment of an interval, so computed once with
    the same scalar functions the reference path calls.
    """
    return stress_acceleration(params, temperature_k) * voltage_acceleration(
        voltage_v
    )


@lru_cache(maxsize=256)
def _recovery_factor(params: MechanismParams, temperature_k: float) -> float:
    """Per-interval recovery acceleration (Arrhenius, cached)."""
    return recovery_acceleration(params, temperature_k)


@lru_cache(maxsize=1024)
def _suppression_factor(device_age_hours: float) -> float:
    """Per-interval age suppression of incremental charge (cached)."""
    return age_suppression(device_age_hours)


IndexArray = Union[np.ndarray, list, tuple]


class TrapPoolArray:
    """All pools of one mechanism, as a structure of arrays.

    Each slot is one :class:`~repro.physics.kinetics.TrapPool`
    (amplitude plus persistent stress/recovery state); the kernels apply
    the scalar integration rules to whole index sets at once.
    """

    def __init__(self, params: MechanismParams, capacity: int = 256) -> None:
        if capacity < 1:
            raise PhysicsError(f"capacity must be >= 1, got {capacity}")
        self.params = params
        self._count = 0
        self._alloc(capacity)
        # The power-law denominator is a per-mechanism scalar; computed
        # once, with Python's pow exactly like TrapPool._rate_amplitude.
        self._rate_denominator = REFERENCE_STRESS_HOURS**params.stress_exponent

    def _alloc(self, capacity: int) -> None:
        self.amplitude_ps = np.zeros(capacity)
        self.charge_ps = np.zeros(capacity)
        self.equivalent_stress_hours = np.zeros(capacity)
        self.recovery_elapsed_hours = np.zeros(capacity)
        self.recovery_wall_hours = np.zeros(capacity)
        self.charge_at_release_ps = np.zeros(capacity)
        self.recovering = np.zeros(capacity, dtype=bool)

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Allocated slots (grows by doubling)."""
        return self.amplitude_ps.shape[0]

    def _grow(self, minimum: int) -> None:
        capacity = self.capacity
        while capacity < minimum:
            capacity *= 2
        for name in (
            "amplitude_ps",
            "charge_ps",
            "equivalent_stress_hours",
            "recovery_elapsed_hours",
            "recovery_wall_hours",
            "charge_at_release_ps",
            "recovering",
        ):
            old = getattr(self, name)
            fresh = np.zeros(capacity, dtype=old.dtype)
            fresh[: self._count] = old[: self._count]
            setattr(self, name, fresh)

    def add_pool(self, amplitude_ps: float) -> int:
        """Register one pool; returns its index."""
        if amplitude_ps < 0.0:
            raise PhysicsError(f"amplitude_ps must be >= 0, got {amplitude_ps}")
        if self._count == self.capacity:
            self._grow(self._count + 1)
        index = self._count
        self.amplitude_ps[index] = amplitude_ps
        self._count += 1
        return index

    # ------------------------------------------------------------------
    # Vectorised kernels (element-for-element TrapPool semantics)
    # ------------------------------------------------------------------

    @staticmethod
    def _check_interval(duration_hours: float, temperature_k: float) -> None:
        if duration_hours < 0.0:
            raise PhysicsError(f"duration must be >= 0, got {duration_hours}")
        if temperature_k <= 0.0:
            raise PhysicsError(f"temperature must be > 0 K, got {temperature_k}")

    def stress(
        self,
        indices: IndexArray,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty: Union[float, np.ndarray] = 1.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Apply stress to every indexed pool (``TrapPool.stress``).

        ``duty`` is a scalar or a per-index array; elements with zero
        duty are skipped entirely (no re-entry, no time advance),
        matching the scalar early return.
        """
        self._check_interval(duration_hours, temperature_k)
        idx = np.asarray(indices, dtype=np.intp)
        duty_arr = np.broadcast_to(
            np.asarray(duty, dtype=float), idx.shape
        )
        if np.any(duty_arr < 0.0) or np.any(duty_arr > 1.0):
            raise PhysicsError("duty must be in [0, 1]")
        if duration_hours == 0.0 or idx.size == 0:
            return
        active = duty_arr > 0.0
        if not active.all():
            idx = idx[active]
            duty_arr = duty_arr[active]
            if idx.size == 0:
                return
        reentering = idx[self.recovering[idx]]
        if reentering.size:
            self._reenter_stress_curve(reentering)
        n = self.params.stress_exponent
        if voltage_v is None:
            voltage_v = REFERENCE_VOLTAGE_V
        acceleration = _stress_factor(self.params, temperature_k, voltage_v)
        suppression = _suppression_factor(device_age_hours)
        rate = self.amplitude_ps[idx] / self._rate_denominator
        effective_hours = duration_hours * duty_arr * acceleration
        t_old = self.equivalent_stress_hours[idx]
        t_new = t_old + effective_hours
        increment = rate * (np.power(t_new, n) - np.power(t_old, n))
        self.charge_ps[idx] += suppression * increment
        self.equivalent_stress_hours[idx] = t_new

    def release(
        self, indices: IndexArray, duration_hours: float, temperature_k: float
    ) -> None:
        """Remove stress from every indexed pool (``TrapPool.release``)."""
        self._check_interval(duration_hours, temperature_k)
        idx = np.asarray(indices, dtype=np.intp)
        if duration_hours == 0.0 or idx.size == 0:
            return
        idx = idx[self.charge_ps[idx] != 0.0]
        if idx.size == 0:
            return
        newly = idx[~self.recovering[idx]]
        if newly.size:
            self.recovering[newly] = True
            self.recovery_elapsed_hours[newly] = 0.0
            self.recovery_wall_hours[newly] = 0.0
            self.charge_at_release_ps[newly] = self.charge_ps[newly]
        acceleration = _recovery_factor(self.params, temperature_k)
        self.recovery_elapsed_hours[idx] += duration_hours * acceleration
        self.recovery_wall_hours[idx] += duration_hours
        ratio = self.recovery_elapsed_hours[idx] / self.params.recovery_tau_hours
        fraction = np.exp(-np.power(ratio, self.params.recovery_beta))
        self.charge_ps[idx] = self.charge_at_release_ps[idx] * fraction

    def _reenter_stress_curve(self, idx: np.ndarray) -> None:
        """Resume stress after a recovery gap (``_reenter_stress_curve``)."""
        n = self.params.stress_exponent
        t_frozen = self.equivalent_stress_hours[idx]
        lost = REFILL_PENALTY * self.recovery_wall_hours[idx]
        t_new = np.maximum(t_frozen - lost, 0.0)
        charge = self.charge_ps[idx].copy()
        refill = (t_frozen > 0.0) & (t_new > 0.0)
        if refill.any():
            refilled = self.charge_at_release_ps[idx][refill] * np.power(
                t_new[refill] / t_frozen[refill], n
            )
            # Never refill below the surviving (decayed) charge.
            charge[refill] = np.maximum(refilled, charge[refill])
        refunded = t_new == 0.0
        if refunded.any():
            # The whole accumulation was refunded; keep the decayed
            # remainder and restart the curve from the time it implies.
            rate = self.amplitude_ps[idx][refunded] / self._rate_denominator
            remainder = charge[refunded]
            restart = (rate > 0.0) & (remainder > 0.0)
            implied = t_new[refunded]
            implied[restart] = np.power(
                remainder[restart] / rate[restart], 1.0 / n
            )
            t_new[refunded] = implied
        self.charge_ps[idx] = charge
        self.equivalent_stress_hours[idx] = t_new
        self.recovering[idx] = False
        self.recovery_elapsed_hours[idx] = 0.0
        self.recovery_wall_hours[idx] = 0.0
        self.charge_at_release_ps[idx] = 0.0

    def preload(
        self, indices: IndexArray, charge_ps: Union[float, np.ndarray]
    ) -> None:
        """Install residual charge in every indexed pool (``preload``)."""
        idx = np.asarray(indices, dtype=np.intp)
        charges = np.broadcast_to(np.asarray(charge_ps, dtype=float), idx.shape)
        if np.any(charges < 0.0):
            raise PhysicsError("preloaded charge must be >= 0")
        if idx.size == 0:
            return
        self.charge_ps[idx] = charges
        self.recovering[idx] = False
        self.recovery_elapsed_hours[idx] = 0.0
        self.charge_at_release_ps[idx] = 0.0
        # Recovery *wall* hours are deliberately left untouched before
        # re-entry, exactly like the scalar preload.
        self._reenter_stress_curve(idx)

    def view(self, index: int) -> "TrapPoolSlot":
        """A scalar-shaped view of one pool (``TrapPool`` surface)."""
        if not 0 <= index < self._count:
            raise PhysicsError(f"no pool at index {index}")
        return TrapPoolSlot(self, index)


class TrapPoolSlot:
    """One slot of a :class:`TrapPoolArray`, duck-typing ``TrapPool``.

    The mutating operations route through the vectorised kernels on a
    single-element index set, so a slot behaves bit-identically to a
    scalar :class:`~repro.physics.kinetics.TrapPool` with the same
    history.
    """

    __slots__ = ("_array", "_index")

    def __init__(self, array: TrapPoolArray, index: int) -> None:
        self._array = array
        self._index = index

    @property
    def params(self) -> MechanismParams:
        return self._array.params

    @property
    def amplitude_ps(self) -> float:
        return float(self._array.amplitude_ps[self._index])

    @property
    def charge_ps(self) -> float:
        """Current charge of the pool, in picoseconds of delay shift."""
        return float(self._array.charge_ps[self._index])

    @property
    def equivalent_stress_hours(self) -> float:
        """Equivalent cumulative stress time at reference conditions."""
        return float(self._array.equivalent_stress_hours[self._index])

    def stress(
        self,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty: float = 1.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        self._array.stress(
            [self._index], duration_hours, temperature_k,
            device_age_hours=device_age_hours, duty=duty, voltage_v=voltage_v,
        )

    def release(self, duration_hours: float, temperature_k: float) -> None:
        self._array.release([self._index], duration_hours, temperature_k)

    def preload(self, charge_ps: float) -> None:
        self._array.preload([self._index], charge_ps)


class SegmentBtiArray:
    """SoA store of every registered segment's analog state.

    Two :class:`TrapPoolArray` instances (the opposing high/low
    mechanisms) plus the per-segment static traits, with segment-level
    vectorised schedule operations.  Segment *i* occupies slot *i* of
    both pool arrays.
    """

    #: Reduced net AC build-up relative to DC stress (matches the
    #: ``SegmentBti.toggle`` default).
    AC_FACTOR = 0.5

    def __init__(self) -> None:
        self.high = TrapPoolArray(HIGH_POOL)
        self.low = TrapPoolArray(LOW_POOL)
        self._traits: list[SegmentTraits] = []
        self._rising_delay_ps = np.zeros(0)
        self._falling_delay_ps = np.zeros(0)

    def __len__(self) -> int:
        return len(self._traits)

    def register(self, traits: SegmentTraits) -> int:
        """Add one segment; returns its index in the arrays."""
        index = self.high.add_pool(
            traits.burn_amplitude_ps * HIGH_POOL.amplitude_scale
        )
        low_index = self.low.add_pool(
            traits.burn_amplitude_ps * LOW_POOL.amplitude_scale
        )
        assert index == low_index == len(self._traits)
        self._traits.append(traits)
        if index >= self._rising_delay_ps.shape[0]:
            grown = max(16, 2 * self._rising_delay_ps.shape[0], index + 1)
            for name in ("_rising_delay_ps", "_falling_delay_ps"):
                old = getattr(self, name)
                fresh = np.zeros(grown)
                fresh[: old.shape[0]] = old
                setattr(self, name, fresh)
        self._rising_delay_ps[index] = traits.rising_delay_ps
        self._falling_delay_ps[index] = traits.falling_delay_ps
        return index

    def traits(self, index: int) -> SegmentTraits:
        """Static traits of one registered segment."""
        return self._traits[index]

    # ------------------------------------------------------------------
    # Vectorised schedule operations (SegmentBti semantics per element)
    # ------------------------------------------------------------------

    @staticmethod
    def _count_updates(indices: IndexArray) -> None:
        # One increment per vectorised call, sized in segments: O(1)
        # cost per interval regardless of how many segments it touches.
        registry.counter(
            "aging_segment_updates_total",
            "segment state updates applied by the array aging kernel",
        ).inc(int(np.asarray(indices).size))

    def hold(
        self,
        indices: IndexArray,
        value: int,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Hold one constant logic value on every indexed segment."""
        if value not in (0, 1):
            raise PhysicsError(f"logic value must be 0 or 1, got {value!r}")
        self._count_updates(indices)
        stressed, recovering = (
            (self.high, self.low) if value == 1 else (self.low, self.high)
        )
        stressed.stress(
            indices, duration_hours, temperature_k,
            device_age_hours=device_age_hours, voltage_v=voltage_v,
        )
        recovering.release(indices, duration_hours, temperature_k)

    def toggle(
        self,
        indices: IndexArray,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty_high: Union[float, np.ndarray] = 0.5,
        ac_factor: float = AC_FACTOR,
        voltage_v: Optional[float] = None,
    ) -> None:
        """Drive every indexed segment with switching activity.

        ``duty_high`` may be a per-index array (nets of one device
        toggle with different duty cycles).
        """
        duty = np.asarray(duty_high, dtype=float)
        if np.any(duty < 0.0) or np.any(duty > 1.0):
            raise PhysicsError("duty_high must be in [0, 1]")
        if not 0.0 <= ac_factor <= 1.0:
            raise PhysicsError(f"ac_factor must be in [0, 1], got {ac_factor}")
        self._count_updates(indices)
        self.high.stress(
            indices, duration_hours, temperature_k,
            device_age_hours=device_age_hours,
            duty=duty * ac_factor, voltage_v=voltage_v,
        )
        self.low.stress(
            indices, duration_hours, temperature_k,
            device_age_hours=device_age_hours,
            duty=(1.0 - duty) * ac_factor, voltage_v=voltage_v,
        )

    def idle(
        self, indices: IndexArray, duration_hours: float, temperature_k: float
    ) -> None:
        """Leave every indexed segment undriven: both pools recover."""
        self._count_updates(indices)
        self.high.release(indices, duration_hours, temperature_k)
        self.low.release(indices, duration_hours, temperature_k)

    def preload_imprint(
        self,
        indices: IndexArray,
        high_charge_ps: Union[float, np.ndarray] = 0.0,
        low_charge_ps: Union[float, np.ndarray] = 0.0,
    ) -> None:
        """Install residual charge from unobserved prior usage."""
        self.high.preload(indices, high_charge_ps)
        self.low.preload(indices, low_charge_ps)

    # ------------------------------------------------------------------
    # Delay queries (vectorised gathers)
    # ------------------------------------------------------------------

    def delta_ps(self, indices: IndexArray) -> np.ndarray:
        """Per-segment BTI contribution to (falling - rising) delay."""
        idx = np.asarray(indices, dtype=np.intp)
        return self.high.charge_ps[idx] - self.low.charge_ps[idx]

    def rising_delay_ps(self, indices: IndexArray) -> np.ndarray:
        """Per-segment absolute rising delay including degradation."""
        idx = np.asarray(indices, dtype=np.intp)
        return self._rising_delay_ps[idx] + self.low.charge_ps[idx]

    def falling_delay_ps(self, indices: IndexArray) -> np.ndarray:
        """Per-segment absolute falling delay including degradation."""
        idx = np.asarray(indices, dtype=np.intp)
        return self._falling_delay_ps[idx] + self.high.charge_ps[idx]

    def view(self, index: int) -> "SegmentBtiSlot":
        """A scalar-shaped view of one segment (``SegmentBti`` surface)."""
        if not 0 <= index < len(self._traits):
            raise PhysicsError(f"no segment at index {index}")
        return SegmentBtiSlot(self, index)


class FleetAgingArray:
    """Cross-*device* bulk aging over one shared :class:`SegmentBtiArray`.

    When a fleet of devices registers its segments into a single
    backing store (``FpgaDevice(bti_store=...)``), each device owns a
    disjoint block of slots.  Catching a group of idle devices up over
    the same pending intervals then collapses to one masked array
    update per interval covering *every* device's slots at once --
    instead of devices x intervals separate kernel calls.

    The kernels are elementwise over the index set and the per-interval
    acceleration factors are scalars, so the union-of-indices update is
    bit-identical to advancing each device separately (pinned by the
    lazy-aging equivalence suite).
    """

    def __init__(self, store: SegmentBtiArray) -> None:
        self.store = store

    def catch_up_idle(
        self,
        index_groups: list,
        intervals: list,
    ) -> None:
        """Anneal every device's slots through a shared interval list.

        ``index_groups`` holds one index array per device (disjoint
        slot blocks of the shared store); ``intervals`` is a sequence
        of ``(duration_hours, temperature_k)`` pairs, oldest first.
        Devices must be unpowered (idle) across the whole span -- a
        device with a loaded design has per-design junction
        temperatures and must sync individually.
        """
        groups = [
            np.asarray(g, dtype=np.intp) for g in index_groups
            if np.asarray(g).size
        ]
        if not groups or not intervals:
            return
        indices = np.concatenate(groups) if len(groups) > 1 else groups[0]
        for duration_hours, temperature_k in intervals:
            self.store.idle(indices, duration_hours, temperature_k)


class SegmentBtiSlot:
    """One segment of a :class:`SegmentBtiArray`, duck-typing ``SegmentBti``.

    ``FpgaDevice.segment_state`` hands these out under the array kernel;
    they are thin views -- all state lives in the arrays.
    """

    __slots__ = ("_array", "_index")

    def __init__(self, array: SegmentBtiArray, index: int) -> None:
        self._array = array
        self._index = index

    @property
    def index(self) -> int:
        """Slot of this segment in the device's arrays."""
        return self._index

    @property
    def traits(self) -> SegmentTraits:
        return self._array.traits(self._index)

    @property
    def high_pool(self) -> TrapPoolSlot:
        return self._array.high.view(self._index)

    @property
    def low_pool(self) -> TrapPoolSlot:
        return self._array.low.view(self._index)

    def hold(
        self,
        value: int,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        voltage_v: Optional[float] = None,
    ) -> None:
        self._array.hold(
            [self._index], value, duration_hours, temperature_k,
            device_age_hours=device_age_hours, voltage_v=voltage_v,
        )

    def toggle(
        self,
        duration_hours: float,
        temperature_k: float,
        device_age_hours: float = 0.0,
        duty_high: float = 0.5,
        ac_factor: float = SegmentBtiArray.AC_FACTOR,
        voltage_v: Optional[float] = None,
    ) -> None:
        self._array.toggle(
            [self._index], duration_hours, temperature_k,
            device_age_hours=device_age_hours, duty_high=duty_high,
            ac_factor=ac_factor, voltage_v=voltage_v,
        )

    def idle(self, duration_hours: float, temperature_k: float) -> None:
        self._array.idle([self._index], duration_hours, temperature_k)

    @property
    def delta_ps(self) -> float:
        """Current BTI contribution to (falling - rising) delay."""
        return float(self._array.delta_ps([self._index])[0])

    def transition_delays(self) -> TransitionDelays:
        """Current absolute rising/falling delays including degradation."""
        return TransitionDelays(
            rising_ps=float(self._array.rising_delay_ps([self._index])[0]),
            falling_ps=float(self._array.falling_delay_ps([self._index])[0]),
        )

    def preload_imprint(
        self, high_charge_ps: float = 0.0, low_charge_ps: float = 0.0
    ) -> None:
        """Install residual charge from unobserved prior usage."""
        self._array.preload_imprint(
            [self._index], high_charge_ps=high_charge_ps,
            low_charge_ps=low_charge_ps,
        )

    def snapshot(self) -> SegmentSnapshot:
        """Immutable copy of the current analog state (for analysis)."""
        return SegmentSnapshot(
            high_charge_ps=self.high_pool.charge_ps,
            low_charge_ps=self.low_pool.charge_ps,
            delta_ps=self.delta_ps,
        )
