"""Condition schedules: how a defended design drives its secret routes.

A :class:`ConditionSchedule` yields the Target bitstream to load for
each conditioning epoch.  The unmitigated baseline
(:class:`StaticSchedule`) returns the same image forever -- the secret
sits unchanged, exactly the behaviour the attack exploits.  Each
mitigation perturbs that pattern while preserving the application's
ability to recover its own data (inversion and shuffling are
deterministic and reversible at the receiver; rotation is a protocol-
level key change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.designs.target import TargetDesign, build_target_design
from repro.fabric.bitstream import Bitstream
from repro.fabric.parts import PartDescriptor
from repro.fabric.routing import Route
from repro.rng import SeedLike


class ConditionSchedule:
    """Base: maps a conditioning epoch to the Target image to load."""

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Human-readable schedule name."""
        return type(self).__name__


@dataclass
class StaticSchedule(ConditionSchedule):
    """No mitigation: the same values sit on the same routes forever."""

    design: TargetDesign

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        return self.design.bitstream


@dataclass
class PeriodicInversionSchedule(ConditionSchedule):
    """Invert the data every ``period_epochs`` epochs.

    Both trap pools of every route receive ~50% duty, so the
    differential imprint largely cancels.
    """

    part: PartDescriptor
    routes: Sequence[Route]
    values: Sequence[int]
    period_epochs: int = 1
    heater_dsps: int = 0

    def __post_init__(self) -> None:
        if self.period_epochs <= 0:
            raise ConfigurationError("period_epochs must be positive")
        self._plain = build_target_design(
            self.part, self.routes, self.values,
            heater_dsps=self.heater_dsps, name="mitigated-plain",
        ).bitstream
        self._inverted = build_target_design(
            self.part, self.routes, [1 - v for v in self.values],
            heater_dsps=self.heater_dsps, name="mitigated-inverted",
        ).bitstream

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        phase = (epoch // self.period_epochs) % 2
        return self._inverted if phase else self._plain


@dataclass
class ShufflingSchedule(ConditionSchedule):
    """Deterministically permute the bits across routes each epoch.

    The receiver knows the permutation sequence and unshuffles; the
    routes see a pseudorandom bit stream whose long-run duty approaches
    the key's Hamming weight on every route.
    """

    part: PartDescriptor
    routes: Sequence[Route]
    values: Sequence[int]
    seed: SeedLike = 0
    heater_dsps: int = 0
    _cache: dict = field(default_factory=dict)

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        if epoch not in self._cache:
            # Deterministic per-epoch permutation from the shared seed.
            seed_value = self.seed if isinstance(self.seed, int) else 0
            rng = np.random.default_rng((seed_value, epoch))
            order = rng.permutation(len(self.values))
            shuffled = [int(self.values[i]) for i in order]
            self._cache[epoch] = build_target_design(
                self.part, self.routes, shuffled,
                heater_dsps=self.heater_dsps,
                name=f"mitigated-shuffle-{epoch}",
            ).bitstream
        return self._cache[epoch]


@dataclass
class KeyRotationSchedule(ConditionSchedule):
    """Replace the secret with a fresh random key every period.

    The attacker at best recovers the *latest* key's imprint mixed with
    all previous ones; the paper notes rotation "is not always
    possible", e.g. for netlist constants.
    """

    part: PartDescriptor
    routes: Sequence[Route]
    initial_values: Sequence[int]
    period_epochs: int = 24
    seed: SeedLike = 0
    heater_dsps: int = 0
    _cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period_epochs <= 0:
            raise ConfigurationError("period_epochs must be positive")

    def key_for_period(self, period: int) -> list[int]:
        """The key in force during a rotation period."""
        if period == 0:
            return [int(v) for v in self.initial_values]
        seed_value = self.seed if isinstance(self.seed, int) else 0
        rng = np.random.default_rng((seed_value, period))
        return [int(b) for b in rng.integers(0, 2, len(self.initial_values))]

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        period = epoch // self.period_epochs
        if period not in self._cache:
            self._cache[period] = build_target_design(
                self.part, self.routes, self.key_for_period(period),
                heater_dsps=self.heater_dsps,
                name=f"mitigated-rotation-{period}",
            ).bitstream
        return self._cache[period]
