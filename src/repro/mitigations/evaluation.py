"""Mitigation-effectiveness harness.

For each schedule, run the victim's mitigated conditioning on a lab
bench while the attacker executes the standard Threat Model 1
measurement interleave against the primary route bank, then score the
attacker's recovery.  An unmitigated victim yields BER ~0; a perfect
mitigation drives BER towards 0.5 (coin flipping).

Provider-side hold-back is evaluated separately
(:func:`evaluate_holdback`): it attacks the Threat Model 2 timeline by
letting the imprint anneal while the device rests in quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.timeseries import SeriesBundle
from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.core.metrics import RecoveryScore, score_recovery
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import build_measure_design, build_route_bank
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS, PartDescriptor
from repro.fabric.routing import Route
from repro.mitigations.schedules import ConditionSchedule
from repro.physics.aging import NEW_PART
from repro.rng import RngFactory


@dataclass(frozen=True)
class MitigationReport:
    """Attack outcome against one mitigation schedule."""

    schedule_name: str
    score: RecoveryScore
    bundle: SeriesBundle

    @property
    def attacker_ber(self) -> float:
        """The attacker's bit-error rate against this schedule."""
        return self.score.bit_error_rate

    def __str__(self) -> str:
        return (
            f"{self.schedule_name}: attacker BER "
            f"{self.attacker_ber:.3f} ({self.score.correct_bits}/"
            f"{self.score.total_bits} bits recovered)"
        )


def evaluate_schedule(
    schedule: ConditionSchedule,
    routes: Sequence[Route],
    true_values: Sequence[int],
    part: PartDescriptor = ZYNQ_ULTRASCALE_PLUS,
    burn_hours: int = 48,
    measure_every_hours: float = 2.0,
    seed: Optional[int] = 11,
) -> MitigationReport:
    """Attack a mitigated victim and report the attacker's BER.

    The attacker runs the standard burn-trend extraction against the
    primary routes; the victim conditions per the schedule.
    """
    rng = RngFactory(seed)
    device = FpgaDevice(part, wear=NEW_PART, seed=rng.stream("device"))
    bench = LabBench(device)
    measure = build_measure_design(part, routes)
    protocol = ConditionMeasureProtocol(
        environment=bench,
        target_bitstream=schedule.bitstream_for_epoch(0),
        measure_design=measure,
        routes=routes,
        condition_hours_per_cycle=measure_every_hours,
    )
    protocol.calibration.seed = rng.stream("sensors")
    protocol.calibrate()
    cycles = int(burn_hours / measure_every_hours)
    bundle = protocol.run_cycles(
        cycles, target_for_cycle=schedule.bitstream_for_epoch
    )
    recovered = BurnTrendClassifier().classify_many(list(bundle))
    truth = {route.name: int(v) for route, v in zip(routes, true_values)}
    for name, series in bundle.series.items():
        series.burn_value = truth[name]
    return MitigationReport(
        schedule_name=schedule.name,
        score=score_recovery(recovered, truth),
        bundle=bundle,
    )


def default_evaluation_routes(
    part: PartDescriptor = ZYNQ_ULTRASCALE_PLUS,
    lengths: Sequence[float] = (5000.0,) * 8 + (10000.0,) * 8,
) -> list[Route]:
    """A compact route bank for mitigation studies (long routes: the
    attacker's best case, hence the hardest test for a mitigation)."""
    return build_route_bank(part.make_grid(), lengths)


def evaluate_holdback(
    holdback_hours: float,
    routes: Sequence[Route],
    true_values: Sequence[int],
    victim_burn_hours: int = 100,
    recovery_hours: int = 25,
    seed: Optional[int] = 13,
) -> MitigationReport:
    """Provider launch-rate control against the Threat Model 2 timeline.

    The victim burns in, releases, and the provider quarantines the
    board for ``holdback_hours`` before the attacker can rent it.  The
    burn-1 transient decays during quarantine, shrinking the attacker's
    recovery signal.
    """
    from repro.cloud.allocation import AllocationPolicy
    from repro.cloud.fleet import build_fleet
    from repro.cloud.provider import CloudProvider
    from repro.core.phases import CalibrationPhase
    from repro.core.threat_model2 import ThreatModel2Attack
    from repro.designs.target import build_target_design
    from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
    from repro.physics.aging import CLOUD_PART

    rng = RngFactory(seed)
    provider = CloudProvider(seed=rng.stream("provider"))
    fleet = build_fleet(
        VIRTEX_ULTRASCALE_PLUS, size=2, wear=CLOUD_PART, seed=rng.stream("fleet")
    )
    provider.create_region(
        "quarantined",
        fleet,
        policy=AllocationPolicy(holdback_hours=holdback_hours),
    )
    part = VIRTEX_ULTRASCALE_PLUS
    measure = build_measure_design(part, routes)

    calibration_instance = provider.rent("quarantined", "attacker-calib")
    calibration = CalibrationPhase(measure, seed=rng.stream("calib"))
    theta_init = dict(
        calibration.run(calibration_instance).theta_init
    )
    provider.release(calibration_instance)
    provider.advance(max(holdback_hours, 0.0) + 1.0)

    victim_design = build_target_design(
        part, routes, true_values, heater_dsps=0, name="victim"
    )
    victim = provider.rent("quarantined", "victim")
    victim.load_image(victim_design.bitstream)
    provider.advance(victim_burn_hours)
    provider.release(victim)

    # The quarantine: the attacker cannot rent until it elapses.
    provider.advance(holdback_hours)

    attack = ThreatModel2Attack(
        provider=provider,
        region="quarantined",
        routes=routes,
        theta_init=theta_init,
        seed=seed,
    )
    result = attack.run(recovery_hours=recovery_hours)
    truth = {route.name: int(v) for route, v in zip(routes, true_values)}
    for name, series in result.bundle.series.items():
        series.burn_value = truth[name]
    return MitigationReport(
        schedule_name=f"holdback-{holdback_hours:.0f}h",
        score=score_recovery(result.recovered_bits, truth),
        bundle=result.bundle,
    )
