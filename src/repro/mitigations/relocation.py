"""Relocation / wear-levelling via partial reconfiguration.

The design periodically moves its sensitive storage to a different
physical route bank ("use partial reconfiguration to move the sensitive
information ... to different locations of the chip").  Each bank
receives only a fraction of the total burn time, so the imprint at any
one location is proportionally weaker -- at the cost, the paper warns,
of spreading (weaker) imprints over more area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.designs.routes import build_route_bank
from repro.designs.target import build_target_design
from repro.fabric.bitstream import Bitstream
from repro.fabric.geometry import FabricGrid
from repro.fabric.parts import PartDescriptor
from repro.fabric.routing import Route
from repro.mitigations.schedules import ConditionSchedule


def build_relocation_banks(
    grid: FabricGrid,
    lengths_ps: Sequence[float],
    bank_count: int,
    tracks_per_class: int = 12,
) -> list[list[Route]]:
    """``bank_count`` physically disjoint route banks of the same shape.

    Banks share a track allocator, so every bank's routes are disjoint
    from every other bank's.
    """
    if bank_count <= 0:
        raise ConfigurationError("bank_count must be positive")
    banks = []
    from repro.fabric.router import DelayTargetRouter

    router = DelayTargetRouter(grid, tracks_per_class=tracks_per_class)
    n_anchor_cols = min(max((grid.columns - 4) // 2, 1), 16)
    from repro.fabric.geometry import Coordinate

    for bank in range(bank_count):
        order = sorted(range(len(lengths_ps)), key=lambda i: -lengths_ps[i])
        routes: list = [None] * len(lengths_ps)
        for rank, index in enumerate(order):
            anchor = Coordinate((rank % n_anchor_cols) * 2, grid.shell_rows)
            routes[index] = router.route(
                f"bank{bank}-rut[{index}]", anchor, float(lengths_ps[index])
            )
        banks.append(routes)
    return banks


@dataclass
class RelocationSchedule(ConditionSchedule):
    """Rotate the secret between route banks every period."""

    part: PartDescriptor
    banks: Sequence[Sequence[Route]]
    values: Sequence[int]
    period_epochs: int = 24
    heater_dsps: int = 0
    _cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period_epochs <= 0:
            raise ConfigurationError("period_epochs must be positive")
        if not self.banks:
            raise ConfigurationError("need at least one route bank")
        widths = {len(bank) for bank in self.banks}
        if widths != {len(self.values)}:
            raise ConfigurationError(
                "every bank must match the secret's width"
            )

    def bank_for_epoch(self, epoch: int) -> int:
        """Which route bank hosts the secret during an epoch."""
        return (epoch // self.period_epochs) % len(self.banks)

    def bitstream_for_epoch(self, epoch: int) -> Bitstream:
        """The Target image for one conditioning epoch."""
        bank = self.bank_for_epoch(epoch)
        if bank not in self._cache:
            self._cache[bank] = build_target_design(
                self.part,
                self.banks[bank],
                self.values,
                heater_dsps=self.heater_dsps,
                name=f"mitigated-relocation-{bank}",
            ).bitstream
        return self._cache[bank]
