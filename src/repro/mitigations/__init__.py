"""Mitigations against pentimento attacks (Section 8 of the paper).

User-side mitigations transform *when and where* sensitive values sit on
routes, expressed as condition schedules
(:class:`~repro.mitigations.schedules.ConditionSchedule`):

* periodic inversion -- "the data could be inverted at predetermined
  periods (e.g. every hour)";
* deterministic shuffling -- permute bits across routes each epoch;
* key rotation -- replace the secret on a schedule;
* relocation / wear-levelling -- move the secret between route banks
  (partial reconfiguration);
* short routes -- a placement-time mitigation, evaluated by the
  route-length ablation benchmark.

Provider-side mitigation: launch-rate control
(:class:`~repro.cloud.allocation.AllocationPolicy` hold-back), evaluated
by :func:`~repro.mitigations.evaluation.evaluate_holdback`.

:mod:`repro.mitigations.evaluation` measures every schedule's
effectiveness: it runs the Threat Model 1 extraction against a
mitigated victim and reports the attacker's bit-error rate (0.5 =
perfect mitigation, 0.0 = no protection).
"""

from repro.mitigations.schedules import (
    ConditionSchedule,
    KeyRotationSchedule,
    PeriodicInversionSchedule,
    ShufflingSchedule,
    StaticSchedule,
)
from repro.mitigations.relocation import RelocationSchedule
from repro.mitigations.evaluation import (
    MitigationReport,
    evaluate_holdback,
    evaluate_schedule,
)

__all__ = [
    "ConditionSchedule",
    "KeyRotationSchedule",
    "MitigationReport",
    "PeriodicInversionSchedule",
    "RelocationSchedule",
    "ShufflingSchedule",
    "StaticSchedule",
    "evaluate_holdback",
    "evaluate_schedule",
]
