"""Exception hierarchy for the pentimento reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TransientError(Exception):
    """Mixin marking an error as *transient*: retrying may succeed.

    The fault-tolerance layer (:mod:`repro.reliability.retry`) retries
    exactly the errors that carry this mixin -- capacity misses,
    preemptions, evictions, calibration glitches, dropped captures --
    and lets everything else (programming errors, genuine analysis
    failures) propagate immediately.  It is a mixin (multiple
    inheritance alongside the domain hierarchy) so an error can stay
    in its family -- e.g. :class:`CapacityError` remains a
    :class:`CloudError` -- *and* be retryable via
    ``except TransientError``.
    """


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class PhysicsError(ReproError):
    """A physics-model invariant was violated (e.g. negative stress time)."""


class FabricError(ReproError):
    """The FPGA fabric model rejected an operation."""


class PlacementError(FabricError):
    """A cell or route could not be placed on the fabric."""


class RoutingError(FabricError):
    """The router could not realise a requested connection."""


class DesignRuleViolation(FabricError):
    """A design failed the cloud provider's design rule checks (DRC).

    Raised, for example, when a design contains a combinational loop
    (ring oscillator) or exceeds the platform power cap -- both checks
    that AWS F1 performs on submitted designs.
    """


class SensorError(ReproError):
    """The TDC sensor model was used incorrectly."""


class CalibrationError(SensorError):
    """Sensor calibration failed to find a usable phase offset."""


class CalibrationGlitchError(CalibrationError, TransientError):
    """A calibration sweep aborted for environmental reasons.

    Unlike its parent (a route that genuinely cannot be centred), a
    glitch is transient: re-running the sweep on the same route is
    expected to succeed.
    """


class CaptureDropError(SensorError, TransientError):
    """A capture trace was dropped or corrupted in flight (transient)."""


class CloudError(ReproError):
    """The simulated cloud platform rejected an operation."""


class CapacityError(CloudError, TransientError):
    """No FPGA instances are available in the requested region.

    Capacity comes and goes with tenant churn, so allocation failures
    are the canonical transient cloud error -- AWS's own guidance for
    request-limit errors is to back off and retry.
    """


class PreemptionError(CloudError, TransientError):
    """The platform issued a preemption notice for a running instance.

    Models the spot-reclamation warning: the interval had not started
    when the notice arrived, so an orchestrator that backs off and
    retries the run call resumes exactly where it left off.
    """


class EvictionError(CloudError, TransientError):
    """A tenant was evicted while programming an image (transient)."""


class AccessError(CloudError):
    """A tenant attempted an operation it is not authorised to perform.

    Raised when, e.g., a marketplace customer tries to read the bitstream
    of a sealed AFI, mirroring the AWS guarantee that "no FPGA internal
    design code is exposed".
    """


class TenancyError(CloudError):
    """An operation was attempted on an instance the tenant does not hold."""


class AttackError(ReproError):
    """An attack orchestration step could not be carried out."""


class AnalysisError(ReproError):
    """A statistical analysis routine received unusable input."""


class PersistenceError(AnalysisError):
    """An archive or journal on disk is corrupt or unreadable.

    Raised (naming the offending file) when persistence-layer JSON is
    truncated, malformed or missing required keys.  Subclasses
    :class:`AnalysisError` so existing callers that treat archive
    problems as analysis-input problems keep working, while new code
    can catch the precise class.
    """
