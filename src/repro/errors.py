"""Exception hierarchy for the pentimento reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class PhysicsError(ReproError):
    """A physics-model invariant was violated (e.g. negative stress time)."""


class FabricError(ReproError):
    """The FPGA fabric model rejected an operation."""


class PlacementError(FabricError):
    """A cell or route could not be placed on the fabric."""


class RoutingError(FabricError):
    """The router could not realise a requested connection."""


class DesignRuleViolation(FabricError):
    """A design failed the cloud provider's design rule checks (DRC).

    Raised, for example, when a design contains a combinational loop
    (ring oscillator) or exceeds the platform power cap -- both checks
    that AWS F1 performs on submitted designs.
    """


class SensorError(ReproError):
    """The TDC sensor model was used incorrectly."""


class CalibrationError(SensorError):
    """Sensor calibration failed to find a usable phase offset."""


class CloudError(ReproError):
    """The simulated cloud platform rejected an operation."""


class CapacityError(CloudError):
    """No FPGA instances are available in the requested region."""


class AccessError(CloudError):
    """A tenant attempted an operation it is not authorised to perform.

    Raised when, e.g., a marketplace customer tries to read the bitstream
    of a sealed AFI, mirroring the AWS guarantee that "no FPGA internal
    design code is exposed".
    """


class TenancyError(CloudError):
    """An operation was attempted on an instance the tenant does not hold."""


class AttackError(ReproError):
    """An attack orchestration step could not be carried out."""


class AnalysisError(ReproError):
    """A statistical analysis routine received unusable input."""
