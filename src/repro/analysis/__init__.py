"""Statistical analysis utilities.

* :mod:`repro.analysis.kernel_regression` -- Nadaraya-Watson and
  local-linear kernel regression (the paper smooths its figures with
  statsmodels' nonparametric kernel regression in continuous mode with a
  local linear estimator; statsmodels is not available offline, so this
  is a from-scratch equivalent);
* :mod:`repro.analysis.timeseries` -- containers for the per-route
  delta-ps series the experiments produce;
* :mod:`repro.analysis.stats` -- summary statistics (the Table 1
  columns), robust slopes, and simple significance tests;
* :mod:`repro.analysis.report` -- plain-text renderers for the paper's
  tables and figures.
"""

from repro.analysis.kernel_regression import (
    KernelRegression,
    local_linear_smooth,
    nadaraya_watson_smooth,
)
from repro.analysis.stats import (
    RouteLengthStats,
    ols_slope,
    route_length_stats,
    theil_sen_slope,
)
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle

__all__ = [
    "DeltaPsSeries",
    "KernelRegression",
    "RouteLengthStats",
    "SeriesBundle",
    "local_linear_smooth",
    "nadaraya_watson_smooth",
    "ols_slope",
    "route_length_stats",
    "theil_sen_slope",
]
