"""Containers for the experiments' delta-ps measurement series.

Each route under test yields one :class:`DeltaPsSeries`: hourly
falling-minus-rising delay estimates, centred at the first measurement
("we center the data to the point at hour zero; any deviation from zero
represents BTI degradation or recovery-induced variation").  A
:class:`SeriesBundle` groups the series of one experiment with their
(oracle) burn values and route lengths for scoring and rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import AnalysisError


@dataclass
class DeltaPsSeries:
    """One route's measurement series."""

    route_name: str
    nominal_delay_ps: float
    hours: list = field(default_factory=list)
    raw_delta_ps: list = field(default_factory=list)
    #: Oracle label for scoring (the true burn value); None if unknown.
    burn_value: Optional[int] = None

    def append(self, hour: float, delta_ps: float) -> None:
        """Record one measurement."""
        if self.hours and hour <= self.hours[-1]:
            raise AnalysisError(
                f"route {self.route_name!r}: measurements must be "
                f"time-ordered ({hour} after {self.hours[-1]})"
            )
        self.hours.append(float(hour))
        self.raw_delta_ps.append(float(delta_ps))

    def __len__(self) -> int:
        return len(self.hours)

    @property
    def hours_array(self) -> np.ndarray:
        """Measurement times as a numpy array."""
        return np.asarray(self.hours, dtype=float)

    @property
    def raw_array(self) -> np.ndarray:
        """Raw delta-ps values as a numpy array."""
        return np.asarray(self.raw_delta_ps, dtype=float)

    @property
    def centered(self) -> np.ndarray:
        """Series centred at its first measurement (the paper's delta-ps)."""
        raw = self.raw_array
        if raw.size == 0:
            raise AnalysisError(f"route {self.route_name!r} has no data")
        return raw - raw[0]

    def window(self, start_hour: float, end_hour: float) -> "DeltaPsSeries":
        """The sub-series with start_hour <= hour <= end_hour."""
        if end_hour < start_hour:
            raise AnalysisError("window end precedes start")
        selected = DeltaPsSeries(
            route_name=self.route_name,
            nominal_delay_ps=self.nominal_delay_ps,
            burn_value=self.burn_value,
        )
        for hour, value in zip(self.hours, self.raw_delta_ps):
            if start_hour <= hour <= end_hour:
                selected.hours.append(hour)
                selected.raw_delta_ps.append(value)
        return selected


#: The paper's studied route-delay classes, for grouping realised routes.
LENGTH_CLASSES_PS = (1000.0, 2000.0, 5000.0, 10000.0)


def length_class(nominal_delay_ps: float, tolerance: float = 0.1) -> float:
    """Collapse a realised nominal delay onto its target length class.

    The delay-targeting router achieves e.g. 1020 ps for the 1000 ps
    class; figures and statistics group by the class.  Values outside
    every class's tolerance band are returned unchanged.
    """
    for target in LENGTH_CLASSES_PS:
        if abs(nominal_delay_ps - target) / target < tolerance:
            return target
    return nominal_delay_ps


@dataclass
class SeriesBundle:
    """All series of one experiment run."""

    label: str
    series: dict[str, DeltaPsSeries] = field(default_factory=dict)

    def add(self, series: DeltaPsSeries) -> None:
        """Register a series; route names must be unique."""
        if series.route_name in self.series:
            raise AnalysisError(
                f"bundle already holds series for {series.route_name!r}"
            )
        self.series[series.route_name] = series

    def __iter__(self) -> Iterator[DeltaPsSeries]:
        return iter(self.series.values())

    def __len__(self) -> int:
        return len(self.series)

    def by_length(self) -> dict[float, list[DeltaPsSeries]]:
        """Series grouped by route length class (the figures' panels).

        Realised nominal delays (1020 ps, 4995 ps, ...) collapse onto
        their target classes via :func:`length_class`.
        """
        groups: dict[float, list[DeltaPsSeries]] = {}
        for series in self.series.values():
            groups.setdefault(length_class(series.nominal_delay_ps), []).append(
                series
            )
        return dict(sorted(groups.items()))

    def burn_values(self) -> dict[str, Optional[int]]:
        """Route name -> oracle burn value (None when unknown)."""
        return {name: s.burn_value for name, s in self.series.items()}
