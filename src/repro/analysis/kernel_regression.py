"""Nonparametric kernel regression.

The paper smooths its measurement series with "the Python statsmodels
package's nonparametric kernel regression class ... in continuous mode
with a local linear estimator".  statsmodels is unavailable in this
environment, so this module implements the two standard estimators from
scratch with a Gaussian kernel:

* **Nadaraya-Watson** (local constant): weighted mean of the responses;
* **local linear**: weighted least-squares line fit at every evaluation
  point, which removes the boundary bias that matters at the start and
  end of the burn/recovery periods.

Bandwidth defaults to least-squares (leave-one-out) cross-validation,
matching statsmodels' ``bw='cv_ls'`` behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError


def _as_clean_arrays(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size:
        raise AnalysisError(f"x has {x.size} points but y has {y.size}")
    if x.size < 3:
        raise AnalysisError("kernel regression needs at least 3 points")
    if not (np.isfinite(x).all() and np.isfinite(y).all()):
        raise AnalysisError("inputs must be finite")
    return x, y


def _gaussian_weights(x: np.ndarray, x0: float, bandwidth: float) -> np.ndarray:
    z = (x - x0) / bandwidth
    return np.exp(-0.5 * z * z)


def nadaraya_watson_smooth(
    x, y, eval_x=None, bandwidth: Optional[float] = None
) -> np.ndarray:
    """Local-constant (Nadaraya-Watson) kernel regression estimate."""
    x, y = _as_clean_arrays(x, y)
    if bandwidth is None:
        bandwidth = select_bandwidth_cv(x, y, estimator="nw")
    grid = x if eval_x is None else np.asarray(eval_x, dtype=float).ravel()
    result = np.empty(grid.size)
    for i, x0 in enumerate(grid):
        weights = _gaussian_weights(x, x0, bandwidth)
        total = weights.sum()
        if total <= 0.0:
            raise AnalysisError(f"no kernel mass at evaluation point {x0}")
        result[i] = float(np.dot(weights, y) / total)
    return result


def local_linear_smooth(
    x, y, eval_x=None, bandwidth: Optional[float] = None
) -> np.ndarray:
    """Local-linear kernel regression estimate (the paper's estimator)."""
    x, y = _as_clean_arrays(x, y)
    if bandwidth is None:
        bandwidth = select_bandwidth_cv(x, y, estimator="ll")
    grid = x if eval_x is None else np.asarray(eval_x, dtype=float).ravel()
    result = np.empty(grid.size)
    for i, x0 in enumerate(grid):
        result[i] = _local_linear_point(x, y, x0, bandwidth)
    return result


def _local_linear_point(
    x: np.ndarray, y: np.ndarray, x0: float, bandwidth: float
) -> float:
    """Weighted least-squares line at x0, evaluated at x0.

    Uses the closed-form local-linear weights (Fan & Gijbels): with
    s_k = sum w_i (x_i - x0)^k, the estimate is
    sum w_i (s_2 - s_1 (x_i - x0)) y_i / (s_2 s_0 - s_1^2).
    """
    weights = _gaussian_weights(x, x0, bandwidth)
    dx = x - x0
    s0 = weights.sum()
    s1 = float(np.dot(weights, dx))
    s2 = float(np.dot(weights, dx * dx))
    denom = s2 * s0 - s1 * s1
    if abs(denom) < 1e-12 * max(s0, 1.0) ** 2:
        # Degenerate design (all mass at one x): fall back to the
        # local-constant estimate.
        if s0 <= 0.0:
            raise AnalysisError(f"no kernel mass at evaluation point {x0}")
        return float(np.dot(weights, y) / s0)
    effective = weights * (s2 - s1 * dx)
    return float(np.dot(effective, y) / denom)


def select_bandwidth_cv(
    x: np.ndarray,
    y: np.ndarray,
    estimator: str = "ll",
    candidates: Optional[np.ndarray] = None,
) -> float:
    """Least-squares leave-one-out cross-validated bandwidth.

    Scans a log-spaced candidate grid between twice the median point
    spacing and the full data span, scoring each by LOO prediction
    error.
    """
    x, y = _as_clean_arrays(x, y)
    if estimator not in ("nw", "ll"):
        raise AnalysisError(f"unknown estimator {estimator!r}")
    span = float(x.max() - x.min())
    if span <= 0.0:
        raise AnalysisError("x values are all identical")
    spacing = float(np.median(np.diff(np.sort(x))))
    if candidates is None:
        low = max(2.0 * spacing, span / 200.0)
        candidates = np.geomspace(low, span / 2.0, 12)
    best_bw, best_score = None, np.inf
    for bandwidth in candidates:
        score = _loo_score(x, y, float(bandwidth), estimator)
        if score < best_score:
            best_bw, best_score = float(bandwidth), score
    if best_bw is None:
        raise AnalysisError("bandwidth selection failed")
    return best_bw


def _loo_score(
    x: np.ndarray, y: np.ndarray, bandwidth: float, estimator: str
) -> float:
    error = 0.0
    mask = np.ones(x.size, dtype=bool)
    for i in range(x.size):
        mask[i] = False
        xi, yi = x[mask], y[mask]
        if estimator == "nw":
            weights = _gaussian_weights(xi, float(x[i]), bandwidth)
            total = weights.sum()
            prediction = (
                float(np.dot(weights, yi) / total) if total > 0 else float(yi.mean())
            )
        else:
            prediction = _local_linear_point(xi, yi, float(x[i]), bandwidth)
        error += (prediction - float(y[i])) ** 2
        mask[i] = True
    return error / x.size


@dataclass
class KernelRegression:
    """Object-style interface mirroring statsmodels' KernelReg.

    Example:
        >>> smoother = KernelRegression(estimator="ll")
        >>> fitted = smoother.fit(hours, delta_ps).predict(hours)
    """

    estimator: str = "ll"
    bandwidth: Optional[float] = None

    def fit(self, x, y) -> "KernelRegression":
        """Select the bandwidth (if unset) and store the training data."""
        self._x, self._y = _as_clean_arrays(x, y)
        if self.bandwidth is None:
            self.bandwidth = select_bandwidth_cv(
                self._x, self._y, estimator=self.estimator
            )
        return self

    def predict(self, eval_x) -> np.ndarray:
        """Evaluate the fitted regression at the given points."""
        if not hasattr(self, "_x"):
            raise AnalysisError("fit() must be called before predict()")
        if self.estimator == "nw":
            return nadaraya_watson_smooth(
                self._x, self._y, eval_x=eval_x, bandwidth=self.bandwidth
            )
        return local_linear_smooth(
            self._x, self._y, eval_x=eval_x, bandwidth=self.bandwidth
        )
