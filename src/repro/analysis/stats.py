"""Summary statistics and robust trend estimators.

:func:`route_length_stats` computes the Table 1 columns (MEAN, SD, MIN,
quartiles, MAX) over a set of route lengths.  The slope estimators feed
the Threat Model 2 classifiers: ordinary least squares for speed, and
Theil-Sen for robustness to the occasional metastability outlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RouteLengthStats:
    """The Table 1 statistics row for one asset."""

    count: int
    mean: float
    sd: float
    minimum: float
    p25: float
    p50: float
    p75: float
    maximum: float


def route_length_stats(lengths_ps) -> RouteLengthStats:
    """Distribution statistics of per-bit route lengths (Table 1 row)."""
    lengths = np.asarray(lengths_ps, dtype=float).ravel()
    if lengths.size == 0:
        raise AnalysisError("need at least one route length")
    if not np.isfinite(lengths).all():
        raise AnalysisError("route lengths must be finite")
    return RouteLengthStats(
        count=int(lengths.size),
        mean=float(np.mean(lengths)),
        sd=float(np.std(lengths, ddof=1)) if lengths.size > 1 else 0.0,
        minimum=float(np.min(lengths)),
        p25=float(np.percentile(lengths, 25)),
        p50=float(np.percentile(lengths, 50)),
        p75=float(np.percentile(lengths, 75)),
        maximum=float(np.max(lengths)),
    )


def ols_slope(x, y) -> float:
    """Ordinary-least-squares slope of y on x."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size or x.size < 2:
        raise AnalysisError("slope needs >= 2 aligned points")
    x_centred = x - x.mean()
    denominator = float(np.dot(x_centred, x_centred))
    if denominator == 0.0:
        raise AnalysisError("x values are all identical")
    return float(np.dot(x_centred, y - y.mean()) / denominator)


def theil_sen_slope(x, y, max_pairs: int = 20000) -> float:
    """Theil-Sen estimator: median of pairwise slopes.

    Robust to outliers; exact for small series, subsampled beyond
    ``max_pairs`` pairs.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size or x.size < 2:
        raise AnalysisError("slope needs >= 2 aligned points")
    pairs = list(combinations(range(x.size), 2))
    if len(pairs) > max_pairs:
        stride = len(pairs) // max_pairs + 1
        pairs = pairs[::stride]
    slopes = []
    for i, j in pairs:
        dx = x[j] - x[i]
        if dx != 0.0:
            slopes.append((y[j] - y[i]) / dx)
    if not slopes:
        raise AnalysisError("x values are all identical")
    return float(np.median(slopes))


def welch_t_statistic(a, b) -> float:
    """Welch's t statistic between two samples (unequal variances)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size < 2 or b.size < 2:
        raise AnalysisError("Welch's t needs >= 2 points per sample")
    var_a = float(np.var(a, ddof=1))
    var_b = float(np.var(b, ddof=1))
    denominator = (var_a / a.size + var_b / b.size) ** 0.5
    if denominator == 0.0:
        raise AnalysisError("both samples are constant")
    return float((a.mean() - b.mean()) / denominator)
