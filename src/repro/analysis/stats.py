"""Summary statistics and robust trend estimators.

:func:`route_length_stats` computes the Table 1 columns (MEAN, SD, MIN,
quartiles, MAX) over a set of route lengths.  The slope estimators feed
the Threat Model 2 classifiers: ordinary least squares for speed, and
Theil-Sen for robustness to the occasional metastability outlier.

The two-sample tools at the bottom back the cross-run analytics layer
(:mod:`repro.observability.analytics`): :func:`bootstrap_mean_diff_ci`
puts a seeded-bootstrap confidence interval on a difference of means
(recovery accuracy across seed sets), and :func:`rank_sum_test` is a
Wilcoxon-Mann-Whitney rank test with normal approximation and tie
correction (latency reservoirs are heavy-tailed; ranks are robust
where a t statistic is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RouteLengthStats:
    """The Table 1 statistics row for one asset."""

    count: int
    mean: float
    sd: float
    minimum: float
    p25: float
    p50: float
    p75: float
    maximum: float


def route_length_stats(lengths_ps) -> RouteLengthStats:
    """Distribution statistics of per-bit route lengths (Table 1 row)."""
    lengths = np.asarray(lengths_ps, dtype=float).ravel()
    if lengths.size == 0:
        raise AnalysisError("need at least one route length")
    if not np.isfinite(lengths).all():
        raise AnalysisError("route lengths must be finite")
    return RouteLengthStats(
        count=int(lengths.size),
        mean=float(np.mean(lengths)),
        sd=float(np.std(lengths, ddof=1)) if lengths.size > 1 else 0.0,
        minimum=float(np.min(lengths)),
        p25=float(np.percentile(lengths, 25)),
        p50=float(np.percentile(lengths, 50)),
        p75=float(np.percentile(lengths, 75)),
        maximum=float(np.max(lengths)),
    )


def ols_slope(x, y) -> float:
    """Ordinary-least-squares slope of y on x."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size or x.size < 2:
        raise AnalysisError("slope needs >= 2 aligned points")
    x_centred = x - x.mean()
    denominator = float(np.dot(x_centred, x_centred))
    if denominator == 0.0:
        raise AnalysisError("x values are all identical")
    return float(np.dot(x_centred, y - y.mean()) / denominator)


def theil_sen_slope(x, y, max_pairs: int = 20000) -> float:
    """Theil-Sen estimator: median of pairwise slopes.

    Robust to outliers; exact for small series, subsampled beyond
    ``max_pairs`` pairs.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size or x.size < 2:
        raise AnalysisError("slope needs >= 2 aligned points")
    pairs = list(combinations(range(x.size), 2))
    if len(pairs) > max_pairs:
        stride = len(pairs) // max_pairs + 1
        pairs = pairs[::stride]
    slopes = []
    for i, j in pairs:
        dx = x[j] - x[i]
        if dx != 0.0:
            slopes.append((y[j] - y[i]) / dx)
    if not slopes:
        raise AnalysisError("x values are all identical")
    return float(np.median(slopes))


def bootstrap_mean_diff_ci(
    a,
    b,
    coverage: float = 0.95,
    n_boot: int = 2000,
    seed: int = 7,
) -> tuple[float, float]:
    """Percentile-bootstrap CI on ``mean(b) - mean(a)``.

    Both samples are resampled independently with replacement
    ``n_boot`` times from a seeded generator, so the interval is
    reproducible run to run.  Degenerate (constant) samples collapse
    the interval to the point difference, which is exactly the right
    answer for them.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size < 1 or b.size < 1:
        raise AnalysisError("bootstrap needs >= 1 point per sample")
    if not 0.0 < coverage < 1.0:
        raise AnalysisError("coverage must be in (0, 1)")
    if n_boot < 10:
        raise AnalysisError(f"n_boot must be >= 10, got {n_boot}")
    rng = np.random.default_rng(seed)
    means_a = rng.choice(a, size=(n_boot, a.size), replace=True).mean(axis=1)
    means_b = rng.choice(b, size=(n_boot, b.size), replace=True).mean(axis=1)
    diffs = means_b - means_a
    tail = (1.0 - coverage) / 2.0 * 100.0
    lo, hi = np.percentile(diffs, [tail, 100.0 - tail])
    return float(lo), float(hi)


@dataclass(frozen=True)
class RankSumResult:
    """Wilcoxon-Mann-Whitney test outcome."""

    u_statistic: float
    z_score: float
    p_value: float  # two-sided, normal approximation
    n_a: int
    n_b: int


def rank_sum_test(a, b) -> RankSumResult:
    """Two-sided Mann-Whitney U via the normal approximation.

    Mid-ranks handle ties, and the variance carries the standard tie
    correction.  Samples that are entirely one constant value on both
    sides (zero variance) return ``p_value=1.0`` when equal and
    ``p_value=0.0`` on complete separation -- the limiting answers.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size < 1 or b.size < 1:
        raise AnalysisError("rank test needs >= 1 point per sample")
    n_a, n_b = int(a.size), int(b.size)
    combined = np.concatenate([a, b])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(combined.size, dtype=float)
    ranks[order] = np.arange(1, combined.size + 1, dtype=float)
    # Mid-ranks for ties.
    values, inverse, counts = np.unique(
        combined, return_inverse=True, return_counts=True
    )
    sums = np.zeros(values.size)
    np.add.at(sums, inverse, ranks)
    ranks = (sums / counts)[inverse]
    r_a = float(ranks[:n_a].sum())
    u_a = r_a - n_a * (n_a + 1) / 2.0
    mean_u = n_a * n_b / 2.0
    n = n_a + n_b
    tie_term = float(((counts**3 - counts).sum())) / (n * (n - 1)) if n > 1 else 0.0
    var_u = n_a * n_b / 12.0 * ((n + 1) - tie_term)
    if var_u <= 0.0:
        # Every observation identical: no evidence either way.
        return RankSumResult(u_statistic=float(u_a), z_score=0.0,
                             p_value=1.0, n_a=n_a, n_b=n_b)
    z = (u_a - mean_u) / var_u**0.5
    p = float(2.0 * _normal_sf(abs(z)))
    return RankSumResult(u_statistic=float(u_a), z_score=float(z),
                         p_value=min(p, 1.0), n_a=n_a, n_b=n_b)


def _normal_sf(z: float) -> float:
    """Standard normal survival function via the complementary erf."""
    from math import erfc, sqrt

    return 0.5 * erfc(z / sqrt(2.0))


def welch_t_statistic(a, b) -> float:
    """Welch's t statistic between two samples (unequal variances)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size < 2 or b.size < 2:
        raise AnalysisError("Welch's t needs >= 2 points per sample")
    var_a = float(np.var(a, ddof=1))
    var_b = float(np.var(b, ddof=1))
    denominator = (var_a / a.size + var_b / b.size) ** 0.5
    if denominator == 0.0:
        raise AnalysisError("both samples are constant")
    return float((a.mean() - b.mean()) / denominator)
