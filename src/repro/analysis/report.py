"""Plain-text renderers for the paper's tables and figures.

The benchmark harness prints the same rows and series the paper reports:
:func:`render_table` emits Table-1-style fixed-width tables and
:func:`render_series_chart` draws the Figure 6/7/8 panels as ASCII line
charts (one glyph per burn-value class, kernel-smoothed if requested).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.kernel_regression import local_linear_smooth
from repro.analysis.timeseries import DeltaPsSeries


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with right-aligned numeric columns."""
    if not headers:
        raise AnalysisError("table needs headers")
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def render_series_chart(
    series_list: Sequence[DeltaPsSeries],
    width: int = 78,
    height: int = 18,
    title: Optional[str] = None,
    smooth: bool = True,
    stress_change_hour: Optional[float] = None,
) -> str:
    """An ASCII panel of centred delta-ps series.

    Burn-1 routes plot as ``#`` (the paper's magenta), burn-0 routes as
    ``o`` (cyan), unlabelled routes as ``.``.  ``stress_change_hour``
    draws the burn-to-recovery boundary (the red/green transition).
    """
    if not series_list:
        raise AnalysisError("chart needs at least one series")
    curves = []
    for series in series_list:
        hours = series.hours_array
        values = series.centered
        if smooth and len(series) >= 8:
            values = local_linear_smooth(
                hours, values, bandwidth=max(8.0, float(np.ptp(hours)) / 12.0)
            )
        curves.append((series, hours, values))

    h_min = min(float(h.min()) for _, h, _ in curves)
    h_max = max(float(h.max()) for _, h, _ in curves)
    v_min = min(float(v.min()) for _, _, v in curves)
    v_max = max(float(v.max()) for _, _, v in curves)
    v_pad = 0.05 * max(v_max - v_min, 1e-9)
    v_min, v_max = v_min - v_pad, v_max + v_pad

    canvas = [[" "] * width for _ in range(height)]

    def column(hour: float) -> int:
        """Map an hour to a canvas column."""
        if h_max == h_min:
            return 0
        return min(int((hour - h_min) / (h_max - h_min) * (width - 1)), width - 1)

    def row(value: float) -> int:
        """Map a value to a canvas row."""
        fraction = (value - v_min) / (v_max - v_min)
        return min(int((1.0 - fraction) * (height - 1)), height - 1)

    if v_min < 0.0 < v_max:
        zero = row(0.0)
        for c in range(width):
            canvas[zero][c] = "-"
    if stress_change_hour is not None and h_min <= stress_change_hour <= h_max:
        boundary = column(stress_change_hour)
        for r in range(height):
            canvas[r][boundary] = "|"

    for series, hours, values in curves:
        glyph = {1: "#", 0: "o"}.get(series.burn_value, ".")
        for hour, value in zip(hours, values):
            canvas[row(float(value))][column(float(hour))] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{v_max:+8.2f} ps")
    lines.extend("".join(r) for r in canvas)
    lines.append(f"{v_min:+8.2f} ps")
    lines.append(
        f"hours {h_min:.0f} .. {h_max:.0f}   "
        f"(# = burn 1, o = burn 0, | = stress change)"
    )
    return "\n".join(lines)
