"""Table 1 regeneration: OpenTitan asset route-length distributions.

Builds the synthetic Earl Grey, computes each asset's per-bit
route-length statistics, sorts ascending by maximum (the paper's
ordering), and renders both the reproduced table and a side-by-side
comparison against the published rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.report import render_table
from repro.analysis.stats import RouteLengthStats, route_length_stats
from repro.opentitan.assets import TABLE1_ASSETS, SecurityAsset
from repro.opentitan.earlgrey import EarlGreyImplementation, implement_earl_grey


@dataclass(frozen=True)
class Table1Row:
    """One reproduced Table 1 row."""

    asset: SecurityAsset
    stats: RouteLengthStats


def build_table1(
    implementation: Optional[EarlGreyImplementation] = None,
    seed: Optional[int] = 1,
) -> list[Table1Row]:
    """Reproduce Table 1, sorted ascending by MAX route length."""
    implementation = implementation or implement_earl_grey(seed=seed)
    rows = [
        Table1Row(
            asset=asset,
            stats=route_length_stats(implementation.delays_for(asset)),
        )
        for asset in TABLE1_ASSETS
    ]
    rows.sort(key=lambda row: row.stats.maximum)
    return rows


def render_table1(rows: Sequence[Table1Row], compare: bool = False) -> str:
    """Render the reproduced table (optionally with published values).

    With ``compare=True`` each asset gets a second line holding the
    paper's published statistics, prefixed ``(paper)``.
    """
    headers = [
        "#", "Asset Paths", "Type", "Bus Width",
        "MEAN", "SD", "MIN", "25%", "50%", "75%", "MAX",
    ]
    table_rows = []
    for position, row in enumerate(rows, start=1):
        stats = row.stats
        table_rows.append([
            position, row.asset.path, row.asset.asset_class.value,
            row.asset.bus_width, stats.mean, stats.sd, stats.minimum,
            stats.p25, stats.p50, stats.p75, stats.maximum,
        ])
        if compare:
            published = row.asset.published
            table_rows.append([
                "", "  (paper)", "", "",
                published.mean, published.sd, published.minimum,
                published.p25, published.p50, published.p75,
                published.maximum,
            ])
    return render_table(
        headers,
        table_rows,
        title=(
            "Table 1: OpenTitan Earl Grey distribution of route lengths "
            "(ps) on a Virtex UltraScale+ (simulated implementation)"
        ),
    )


def vulnerability_ranking(rows: Sequence[Table1Row]) -> list[tuple[str, float]]:
    """Assets ranked by pentimento exposure.

    Exposure grows with route length (more stressed switches per bit);
    the paper's user mitigations (Section 8.1) recommend exactly this
    analysis: "verification tools could analyse the design ... for
    sensitive data residing on long routes".  The score is the mean
    route length weighted by the fraction of bits above 1000 ps.
    """
    ranking = []
    for row in rows:
        import numpy as np

        delays = np.asarray([row.stats.mean])
        long_fraction = float(
            row.stats.p75 >= 1000.0
        )  # quartile-based long-route indicator
        score = row.stats.mean * (0.5 + 0.5 * long_fraction)
        ranking.append((row.asset.path, float(score)))
    ranking.sort(key=lambda item: -item[1])
    return ranking
