"""The OpenTitan Earl Grey route-length study (Section 5.3, Table 1).

OpenTitan is the paper's realistic target: an open-source hardware root
of trust whose pre-built bitstream distribution makes Assumption 1 hold
for anyone.  The study implements a synthetic Earl Grey on the simulated
fabric -- the twenty security-critical assets of Table 1 with their
published types and bus widths, placed module-by-module and routed over
the interconnect -- and regenerates the per-asset route-length
distribution columns.

* :mod:`repro.opentitan.assets` -- the asset inventory (with the
  published statistics retained as reference data);
* :mod:`repro.opentitan.earlgrey` -- module floorplan, placement, and
  per-bit routing;
* :mod:`repro.opentitan.study` -- Table 1 regeneration and
  vulnerability ranking.
"""

from repro.opentitan.assets import (
    AssetClass,
    SecurityAsset,
    TABLE1_ASSETS,
)
from repro.opentitan.earlgrey import EarlGreyImplementation, implement_earl_grey
from repro.opentitan.study import Table1Row, build_table1, render_table1

__all__ = [
    "AssetClass",
    "EarlGreyImplementation",
    "SecurityAsset",
    "TABLE1_ASSETS",
    "Table1Row",
    "build_table1",
    "implement_earl_grey",
    "render_table1",
]
