"""A synthetic Earl Grey implementation on the simulated fabric.

The real study runs Vivado on the OpenTitan sources; offline we
reproduce its *physical character*: a module-level floorplan on the
VU9P-like grid, per-bit endpoint placement clustered around each
module's centroid (as a timing-driven placer produces), and greedy
longest-wire-first routing.  Each asset's per-bit route-length
distribution then falls out of geometry exactly as in the published
table: intra-module and neighbouring-module buses measure a few hundred
picoseconds; buses that cross the die (flash_ctrl's OTP keys, the
TL-UL crossbar links) reach several nanoseconds; wide mostly-local
buses (kmac_app_rsp) are short in the median with long stragglers.

Calibration: each asset's *typical* source-to-sink tile distance is
solved from its published median route length (we cannot run Vivado, so
the central tendency is anchored to the published implementation --
documented as a substitution in DESIGN.md).  Everything else -- the
spread, minimum, quartiles and maxima of each row -- emerges from the
per-bit endpoint jitter, congestion stragglers and pin-level variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS, PartDescriptor
from repro.fabric.router import compose_displacement
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import spec_for
from repro.opentitan.assets import TABLE1_ASSETS, SecurityAsset
from repro.rng import RngFactory

#: Module centroids on the 64x96 grid (user region starts at row 16).
MODULE_FLOORPLAN: dict[str, Coordinate] = {
    "xbar": Coordinate(32, 52),
    "otp_ctrl": Coordinate(20, 32),
    "lc_ctrl": Coordinate(17, 36),
    "keymgr": Coordinate(26, 44),
    "aes": Coordinate(31, 38),
    "kmac": Coordinate(22, 50),
    "otbn": Coordinate(35, 46),
    "csrng": Coordinate(52, 64),
    "flash_ctrl": Coordinate(48, 56),
    "rom_ctrl": Coordinate(23, 52),
}


@dataclass(frozen=True)
class AssetTuning:
    """Per-asset placement/routing character.

    Attributes:
        src_spread / dst_spread: gaussian tile spread of the endpoint
            clusters.
        straggler_fraction: fraction of bits whose sink spilled far from
            the cluster (wide buses overflow their region).
        straggler_scale: distance multiplier for spilled sinks.
    """

    src_spread: float = 1.5
    dst_spread: float = 1.5
    straggler_fraction: float = 0.0
    straggler_scale: float = 8.0


#: Per-asset spread character (indexes follow Table 1).  Relative SD in
#: the published rows drives the spread; wide buses with extreme maxima
#: (kmac_app_rsp, the OTP scramble anchors) carry stragglers.
_ASSET_TUNING: dict[int, AssetTuning] = {
    1: AssetTuning(src_spread=1.4, dst_spread=1.4),
    2: AssetTuning(src_spread=1.6, dst_spread=1.6),
    3: AssetTuning(src_spread=1.6, dst_spread=1.6),
    4: AssetTuning(src_spread=1.6, dst_spread=1.6, straggler_fraction=0.01,
                   straggler_scale=3.0),
    5: AssetTuning(src_spread=0.8, dst_spread=0.8),
    6: AssetTuning(src_spread=2.2, dst_spread=2.2, straggler_fraction=0.01,
                   straggler_scale=4.0),
    7: AssetTuning(src_spread=1.8, dst_spread=1.8, straggler_fraction=0.01,
                   straggler_scale=3.0),
    8: AssetTuning(src_spread=2.4, dst_spread=2.4, straggler_fraction=0.02,
                   straggler_scale=6.0),
    9: AssetTuning(src_spread=1.8, dst_spread=1.8, straggler_fraction=0.01,
                   straggler_scale=2.5),
    10: AssetTuning(src_spread=1.8, dst_spread=1.8, straggler_fraction=0.01,
                    straggler_scale=3.0),
    11: AssetTuning(src_spread=2.0, dst_spread=2.0, straggler_fraction=0.04,
                    straggler_scale=10.0),
    12: AssetTuning(src_spread=2.6, dst_spread=2.6, straggler_fraction=0.03,
                    straggler_scale=6.0),
    13: AssetTuning(src_spread=1.2, dst_spread=1.2),
    14: AssetTuning(src_spread=3.6, dst_spread=3.6),
    15: AssetTuning(src_spread=3.0, dst_spread=3.0),
    16: AssetTuning(src_spread=2.2, dst_spread=2.2),
    17: AssetTuning(src_spread=3.4, dst_spread=3.4, straggler_fraction=0.02,
                    straggler_scale=1.7),
    18: AssetTuning(src_spread=1.0, dst_spread=1.0, straggler_fraction=0.03,
                    straggler_scale=24.0),
    19: AssetTuning(src_spread=4.5, dst_spread=4.5, straggler_fraction=0.03,
                    straggler_scale=1.8),
    20: AssetTuning(src_spread=3.8, dst_spread=3.8),
}


def solve_distance_tiles(target_delay_ps: float, max_tiles: int = 400) -> int:
    """Tile distance whose routed delay best matches a target.

    Inverts the greedy wire composition (monotone in distance) by
    linear scan; used to anchor each asset's typical source-to-sink
    distance to its published median route length.
    """
    from repro.fabric.router import displacement_delay_ps

    best_d, best_err = 0, abs(displacement_delay_ps(0, 0) - target_delay_ps)
    for d in range(1, max_tiles + 1):
        err = abs(displacement_delay_ps(d, 0) - target_delay_ps)
        if err < best_err:
            best_d, best_err = d, err
    return best_d


@dataclass
class EarlGreyImplementation:
    """Placed-and-routed synthetic Earl Grey."""

    part: PartDescriptor
    #: Per-asset list of per-bit routed delays, ps.
    asset_delays: dict[int, np.ndarray] = field(default_factory=dict)
    #: Per-asset per-bit endpoint pairs (for building attack routes).
    asset_endpoints: dict[int, list] = field(default_factory=dict)

    def delays_for(self, asset: SecurityAsset) -> np.ndarray:
        """Per-bit routed delays of one asset."""
        if asset.index not in self.asset_delays:
            raise ConfigurationError(f"asset {asset.index} was not implemented")
        return self.asset_delays[asset.index]

    def routes_for(self, asset: SecurityAsset, limit: Optional[int] = None) -> list[Route]:
        """Physical routes of an asset's bits (for pentimento attacks).

        Builds one serpentine-free route per bit from the stored
        endpoint displacement; track indices enumerate bits (the study
        abstracts exact track assignment).
        """
        endpoints = self.asset_endpoints.get(asset.index)
        if endpoints is None:
            raise ConfigurationError(f"asset {asset.index} was not implemented")
        routes = []
        for bit, (src, dst) in enumerate(endpoints[: limit or len(endpoints)]):
            kinds = compose_displacement(dst.x - src.x, dst.y - src.y)
            segments = tuple(
                SegmentId(kind=kind, origin=src, track=bit * 8 + i)
                for i, kind in enumerate(kinds)
            )
            routes.append(
                Route(
                    name=f"{asset.path}[{bit}]",
                    segments=segments,
                )
            )
        return routes


def implement_earl_grey(
    part: PartDescriptor = VIRTEX_ULTRASCALE_PLUS,
    assets: tuple = TABLE1_ASSETS,
    seed: Optional[int] = 1,
) -> EarlGreyImplementation:
    """Place and route the synthetic Earl Grey; returns the implementation."""
    grid = part.make_grid()
    rng = RngFactory(seed)
    implementation = EarlGreyImplementation(part=part)
    for asset in assets:
        stream = rng.stream(f"asset-{asset.index}")
        delays, endpoints = _implement_asset(grid, asset, stream)
        implementation.asset_delays[asset.index] = delays
        implementation.asset_endpoints[asset.index] = endpoints
    return implementation


def _implement_asset(
    grid: FabricGrid, asset: SecurityAsset, rng
) -> tuple[np.ndarray, list]:
    if asset.source_module not in MODULE_FLOORPLAN:
        raise ConfigurationError(f"unknown module {asset.source_module!r}")
    if asset.dest_module not in MODULE_FLOORPLAN:
        raise ConfigurationError(f"unknown module {asset.dest_module!r}")
    tuning = _ASSET_TUNING.get(asset.index, AssetTuning())
    # The endpoint jitter folds at zero distance and inflates short
    # buses, so the distance/spread scale is trimmed by a short feedback
    # loop until the realised median lands on the published one.
    scale = 1.0
    delays, endpoints = None, None
    for _ in range(5):
        trial_rng = np.random.default_rng(rng.integers(0, 2**63))
        delays, endpoints = _generate_bits(grid, asset, tuning, scale, trial_rng)
        median = float(np.median(delays))
        error = abs(median - asset.published.p50) / max(asset.published.p50, 45.0)
        if error < 0.08:
            break
        adjustment = (asset.published.p50 / max(median, 1.0)) ** 0.7
        scale *= float(np.clip(adjustment, 0.4, 2.0))
    return delays, endpoints


def _generate_bits(
    grid: FabricGrid,
    asset: SecurityAsset,
    tuning: AssetTuning,
    scale: float,
    rng,
) -> tuple[np.ndarray, list]:
    src_centre = MODULE_FLOORPLAN[asset.source_module]
    dst_centre = MODULE_FLOORPLAN[asset.dest_module]
    typical_tiles = solve_distance_tiles(asset.published.p50) * scale
    straggler_tiles = solve_distance_tiles(asset.published.maximum)
    src_spread = max(tuning.src_spread * min(scale, 1.0), 0.3)
    dst_spread = max(tuning.dst_spread * min(scale, 1.0), 0.3)
    dx_c = dst_centre.x - src_centre.x
    dy_c = dst_centre.y - src_centre.y
    extent = abs(dx_c) + abs(dy_c)
    if extent:
        fx = abs(dx_c) / extent
        sign_x = 1 if dx_c >= 0 else -1
        sign_y = 1 if dy_c >= 0 else -1
    else:
        fx, sign_x, sign_y = 0.5, 1, 1
    delays = np.empty(asset.bus_width)
    endpoints = []
    for bit in range(asset.bus_width):
        src = _clamp(grid, _jitter(src_centre, src_spread, rng))
        distance = typical_tiles
        if tuning.straggler_fraction and rng.random() < tuning.straggler_fraction:
            # A spilled bit routes out to the overflow region; its reach
            # is anchored to the published row's maximum.
            distance = straggler_tiles * float(rng.uniform(0.6, 1.0))
        dx = sign_x * int(round(distance * fx))
        dy = sign_y * int(round(distance * (1.0 - fx)))
        dst = _clamp(grid, _jitter(src.offset(dx, dy), dst_spread, rng))
        kinds = compose_displacement(dst.x - src.x, dst.y - src.y)
        nominal = sum(spec_for(kind).delay_ps for kind in kinds)
        if src == dst:
            # Same-slice connection: a single pin hop.
            nominal = spec_for(kinds[0]).delay_ps
        # Per-bit realised delay varies with pin positions inside the
        # tile and switch choices.
        delays[bit] = max(nominal * float(rng.lognormal(0.0, 0.06)), 10.0)
        endpoints.append((src, dst))
    return delays, endpoints


def _jitter(centre: Coordinate, spread: float, rng) -> Coordinate:
    dx = int(round(rng.normal(0.0, max(spread, 1e-6))))
    dy = int(round(rng.normal(0.0, max(spread, 1e-6))))
    return centre.offset(dx, dy)


def _clamp(grid: FabricGrid, coord: Coordinate) -> Coordinate:
    x = min(max(coord.x, 0), grid.columns - 1)
    y = min(max(coord.y, grid.shell_rows), grid.rows - 1)
    return Coordinate(x, y)
