"""OpenTitan Earl Grey security-asset inventory.

The twenty assets of Table 1, with the paper's classification:

* **CK** -- cryptographic keys (OTP-stored keys, Key Manager sidecar
  buses to AES/KMAC/OTBN, scrambling keys);
* **SV/T** -- life-cycle state values and tokens held in OTP;
* **S** -- signals carrying sensitive data to/from security peripherals
  (TL-UL response data, OTP read data).

Each asset records its source and destination module (driving the
synthetic placement) and the row of statistics the paper published for
a Vivado Virtex UltraScale+ implementation, kept as *reference data*
so the benchmark can print paper-vs-reproduced side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AssetClass(enum.Enum):
    """Table 1's Type column."""

    CRYPTOGRAPHIC_KEY = "CK"
    STATE_VALUE_TOKEN = "SV/T"
    SIGNAL = "S"


@dataclass(frozen=True)
class PublishedStats:
    """The paper's Table 1 row (route lengths in ps)."""

    mean: float
    sd: float
    minimum: float
    p25: float
    p50: float
    p75: float
    maximum: float


@dataclass(frozen=True)
class SecurityAsset:
    """One security-critical asset: a bus between two modules."""

    index: int
    path: str
    asset_class: AssetClass
    bus_width: int
    source_module: str
    dest_module: str
    published: PublishedStats


TABLE1_ASSETS: tuple[SecurityAsset, ...] = (
    SecurityAsset(1, "/otp_ctrl_otp_lc_data[state]", AssetClass.STATE_VALUE_TOKEN, 320,
                  "otp_ctrl", "lc_ctrl",
                  PublishedStats(169.5, 98.1, 39, 95.5, 157.5, 228, 509)),
    SecurityAsset(2, "/u_otp_ctrl/otp_ctrl_otp_lc_data[test_exit_token]",
                  AssetClass.STATE_VALUE_TOKEN, 128, "otp_ctrl", "lc_ctrl",
                  PublishedStats(197.5, 115.4, 37, 114, 170, 242.2, 534)),
    SecurityAsset(3, "/otp_ctrl_otp_lc_data[rma_token]", AssetClass.STATE_VALUE_TOKEN, 101,
                  "otp_ctrl", "lc_ctrl",
                  PublishedStats(239.8, 122.8, 38, 148, 222, 325, 583)),
    SecurityAsset(4, "/otp_ctrl_otp_lc_data[test_unlock_token]",
                  AssetClass.STATE_VALUE_TOKEN, 128, "otp_ctrl", "lc_ctrl",
                  PublishedStats(207.9, 120.1, 38, 130.5, 178.5, 247.2, 609)),
    SecurityAsset(5, "/keymgr_aes_key[key][1]_282", AssetClass.CRYPTOGRAPHIC_KEY, 32,
                  "keymgr", "aes",
                  PublishedStats(538.3, 106.4, 380, 433.5, 551, 614, 738)),
    SecurityAsset(6, "/keymgr_otbn_key[key][0]_285", AssetClass.CRYPTOGRAPHIC_KEY, 384,
                  "keymgr", "otbn",
                  PublishedStats(219.8, 150.9, 41, 99, 167, 327.2, 919)),
    SecurityAsset(7, "/keymgr_kmac_key[key][0]_28", AssetClass.CRYPTOGRAPHIC_KEY, 256,
                  "keymgr", "kmac",
                  PublishedStats(317.6, 141.7, 49, 213.8, 291, 408, 1050)),
    SecurityAsset(8, "/otp_ctrl_otp_keymgr_key[key_share0]", AssetClass.CRYPTOGRAPHIC_KEY,
                  256, "otp_ctrl", "keymgr",
                  PublishedStats(187.3, 200.8, 37, 54, 109, 217, 1064)),
    SecurityAsset(9, "/u_otp_ctrl/part_scrmbl_rsp_data", AssetClass.CRYPTOGRAPHIC_KEY, 64,
                  "otp_ctrl", "otp_ctrl",
                  PublishedStats(353.4, 146.1, 116, 267.2, 348.5, 411.2, 1075)),
    SecurityAsset(10, "/keymgr_aes_key[key][0]_283", AssetClass.CRYPTOGRAPHIC_KEY, 256,
                  "keymgr", "aes",
                  PublishedStats(360.3, 154.2, 86, 270, 333, 412.2, 1311)),
    SecurityAsset(11, "/u_otp_ctrl/u_otp_ctrl_scrmbl/gen_anchor_keys",
                  AssetClass.CRYPTOGRAPHIC_KEY, 135, "otp_ctrl", "otp_ctrl",
                  PublishedStats(220.1, 358.7, 0, 57, 94, 162.5, 1333)),
    SecurityAsset(12, "/otp_ctrl_otp_keymgr_key[key_share1]", AssetClass.CRYPTOGRAPHIC_KEY,
                  256, "otp_ctrl", "keymgr",
                  PublishedStats(262.5, 273.4, 37, 51, 158, 335.5, 1381)),
    SecurityAsset(13, "/csrng_tl_rsp[d_data]", AssetClass.SIGNAL, 32,
                  "csrng", "xbar",
                  PublishedStats(1291.8, 105.7, 1031, 1244.8, 1323, 1359.8, 1432)),
    SecurityAsset(14, "/aes_tl_rsp[d_data]", AssetClass.SIGNAL, 32,
                  "aes", "xbar",
                  PublishedStats(1105.3, 411.4, 276, 1135.8, 1279, 1369.5, 1631)),
    SecurityAsset(15, "/keymgr_otbn_key[key][1]_284", AssetClass.CRYPTOGRAPHIC_KEY, 32,
                  "keymgr", "otbn",
                  PublishedStats(1062.7, 281.2, 480, 854, 1074.5, 1270, 1670)),
    SecurityAsset(16, "/u_otp_ctrl/part_otp_rdata", AssetClass.SIGNAL, 64,
                  "otp_ctrl", "xbar",
                  PublishedStats(1298.9, 213, 933, 1118.5, 1311.5, 1447.2, 1784)),
    SecurityAsset(17, "/flash_ctrl_otp_rsp[key]", AssetClass.CRYPTOGRAPHIC_KEY, 128,
                  "otp_ctrl", "flash_ctrl",
                  PublishedStats(1816.6, 404.6, 1215, 1503, 1717.5, 2010.2, 3245)),
    SecurityAsset(18, "/kmac_app_rsp", AssetClass.SIGNAL, 777,
                  "kmac", "rom_ctrl",
                  PublishedStats(94.2, 179.7, 15, 40, 58, 97, 3398)),
    SecurityAsset(19, "/flash_ctrl_otp_rsp[rand_key]", AssetClass.CRYPTOGRAPHIC_KEY, 128,
                  "otp_ctrl", "flash_ctrl",
                  PublishedStats(1908.1, 670.7, 553, 1337, 1882, 2308.8, 3706)),
    SecurityAsset(20, "/aes_tl_req[a_data]", AssetClass.SIGNAL, 32,
                  "xbar", "aes",
                  PublishedStats(2114.8, 471.8, 1455, 1805, 2079.5, 2337.2, 3946)),
)
