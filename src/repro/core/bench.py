"""The lab bench: local, fully-controlled experimentation.

Experiment 1 runs on a factory-new ZCU102 in a temperature-controlled
oven.  :class:`LabBench` provides the same execution interface as a
rented :class:`~repro.cloud.instance.F1Instance` (load, run, attach
sensors) so the protocol code is environment-agnostic -- with the
differences the paper highlights:

* no design rule checks (ring oscillators are allowed locally);
* a constant-temperature ambient;
* the experimenter owns the board, so there is no wipe between phases
  other than the ones the protocol itself performs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import FabricError
from repro.designs.measure import MeasureDesign, MeasureSession
from repro.fabric.bitstream import Bitstream, SealedBitstream, loadable
from repro.fabric.device import FpgaDevice
from repro.fabric.thermal import OvenAmbient
from repro.rng import SeedLike
from repro.sensor.noise import LAB_NOISE, NoiseModel


class LabBench:
    """A locally-owned device in a temperature-controlled oven."""

    def __init__(
        self, device: FpgaDevice, oven: Optional[OvenAmbient] = None
    ) -> None:
        self.device = device
        self.oven = oven or OvenAmbient(60.0)
        # The board sits in the oven from the start; delays (and hence
        # calibration) must see the oven temperature immediately.
        self.device.set_ambient(self.oven.at(0.0))

    @property
    def part_name(self) -> str:
        """FPGA part of the bench's device."""
        return self.device.part.name

    def load_image(self, image: Union[Bitstream, SealedBitstream]) -> None:
        """Program an image.  No provider DRC on a local board."""
        bitstream = loadable(image)
        if bitstream is None:
            raise FabricError(f"{image!r} is not a loadable image")
        if self.device.loaded_design is not None:
            self.device.wipe()
        self.device.load(bitstream)

    def clear(self) -> None:
        """Unload the current design."""
        self.device.wipe()

    def run_hours(self, hours: float) -> None:
        """Let the loaded design execute for ``hours``."""
        ambient = self.oven.at(self.device.sim_hours)
        self.device.advance_hours(hours, ambient)

    def attach_sensors(
        self,
        measure_design: MeasureDesign,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = None,
    ) -> MeasureSession:
        """Attach a sensing session to a loaded Measure design."""
        return measure_design.attach(
            self.device,
            noise=noise if noise is not None else LAB_NOISE,
            seed=seed,
        )
