"""Skeleton-free imprint localisation (the paper's future work).

Both threat models assume the attacker knows the victim design's route
skeleton (Assumption 1).  Section 2 closes with: "Loosening or removing
this assumption would strengthen the threat model, and we are
considering ways to expand the threat model without Assumption 1 in
future work."  This module implements the natural approach:

1. enumerate candidate wire segments in a suspected region of the die
   (:func:`candidate_segments`);
2. bind one single-segment probe route (and TDC) to every candidate;
3. run the Threat Model 2 recovery observation -- condition everything
   to 0, measure hourly -- and flag the segments whose delta-ps shows
   the burn-1 recovery transient (:class:`ImprintScanner`);
4. cluster flagged segments into route chains by physical adjacency
   (:func:`cluster_imprints`), reconstructing the skeleton of the
   victim's 1-carrying routes.

The per-segment signal is one route's imprint divided by its switch
count, so localisation needs longer observation or more measurement
averaging than the skeleton-aware attacks -- quantified by the
``scan_report`` the scanner returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.errors import AttackError
from repro.analysis.timeseries import DeltaPsSeries
from repro.core.classify import NullReferencedSlopeClassifier
from repro.designs.target import build_target_design
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import SegmentKind, spec_for
from repro.rng import SeedLike, make_rng
from repro.sensor.noise import CLOUD_NOISE, NoiseModel
from repro.sensor.tdc import TunableDualPolarityTdc
from repro.sensor.calibration import find_theta_init


def candidate_segments(
    grid: FabricGrid,
    columns: Iterable[int],
    kinds: Sequence[SegmentKind] = (SegmentKind.LONG,),
    tracks: int = 2,
) -> list[SegmentId]:
    """Enumerate scannable wire segments in a column window.

    Long lines are the natural first targets: they carry the bulk of any
    long route's imprint and there are few of them per tile.
    """
    candidates = []
    for x in sorted(set(columns)):
        for kind in kinds:
            span = max(spec_for(kind).span_tiles, 1)
            y = grid.shell_rows
            while y + span <= grid.rows:
                for track in range(tracks):
                    candidates.append(
                        SegmentId(kind=kind, origin=Coordinate(x, y), track=track)
                    )
                y += span
    if not candidates:
        raise AttackError("no candidate segments in the scan window")
    return candidates


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one imprint scan."""

    flagged: tuple[SegmentId, ...]
    series: dict[str, DeltaPsSeries]
    segment_for_probe: dict[str, SegmentId]

    @property
    def flagged_count(self) -> int:
        """Number of segments flagged as imprinted."""
        return len(self.flagged)


@dataclass
class ImprintScanner:
    """Scans candidate segments for burn-1 recovery transients.

    Operates on any environment exposing ``load_image`` / ``run_hours``
    (lab bench or rented instance).  Each candidate gets a one-segment
    probe route and TDC; the scan alternates hold-0 conditioning with
    measurement and flags segments whose series shows the recovery
    transient at ``z_threshold`` significance against the scan's own
    weakest-percentile null.
    """

    environment: object
    grid: FabricGrid
    noise: NoiseModel = field(default_factory=lambda: CLOUD_NOISE)
    seed: SeedLike = None
    measurement_passes: int = 4
    z_threshold: float = 2.0

    def scan(
        self,
        candidates: Sequence[SegmentId],
        observation_hours: int = 12,
    ) -> ScanResult:
        """Run the recovery scan over the candidates."""
        if observation_hours < 3:
            raise AttackError("need at least 3 hourly observations")
        if not candidates:
            raise AttackError("no candidates to scan")
        rng = make_rng(self.seed)
        device = getattr(self.environment, "device")
        probes = {
            f"probe[{i}]": Route(name=f"probe[{i}]", segments=(segment,))
            for i, segment in enumerate(candidates)
        }
        segment_for_probe = {
            name: route.segments[0] for name, route in probes.items()
        }
        hold = build_target_design(
            device.part,
            list(probes.values()),
            [0] * len(probes),
            heater_dsps=0,
            name="imprint-scan-hold",
        )
        tdcs = {
            name: TunableDualPolarityTdc(
                device=device, route=route, noise=self.noise, seed=rng
            )
            for name, route in probes.items()
        }
        # Probes must be configured (the hold design) while measuring;
        # loading it up-front also lets calibration see real conditions.
        self.environment.load_image(hold.bitstream)
        theta = {name: find_theta_init(tdc) for name, tdc in tdcs.items()}
        series = {
            name: DeltaPsSeries(
                route_name=name,
                nominal_delay_ps=probes[name].nominal_delay_ps,
            )
            for name in probes
        }
        clock = 0.0
        for _ in range(observation_hours):
            self._measure_all(tdcs, theta, series, clock)
            self.environment.load_image(hold.bitstream)
            self.environment.run_hours(1.0)
            clock += 1.0
        self._measure_all(tdcs, theta, series, clock)

        flagged = self._flag(series, segment_for_probe)
        return ScanResult(
            flagged=flagged,
            series=series,
            segment_for_probe=segment_for_probe,
        )

    def _measure_all(self, tdcs, theta, series, clock) -> None:
        for name, tdc in tdcs.items():
            total = 0.0
            for _ in range(max(self.measurement_passes, 1)):
                total += tdc.measure(theta[name]).delta_ps
            series[name].append(clock, total / max(self.measurement_passes, 1))

    def _flag(self, series, segment_for_probe) -> tuple:
        """Flag probes recovering significantly against the scan null.

        Most scanned segments never carried a 1, so the scan population
        itself provides the null: features are z-scored against the
        upper (non-recovering) half of the distribution.
        """
        classifier = NullReferencedSlopeClassifier(
            z_threshold=self.z_threshold
        )
        features = {
            name: classifier._slope(s) for name, s in series.items()
        }
        values = np.array(list(features.values()))
        # Robust null: most segments never carried a 1, so the median
        # estimates the clean centre.  Spread comes from the *upper*
        # (non-recovering) side only -- recovering probes all sit in the
        # negative tail, and folding them into a two-sided MAD inflates
        # the spread enough to hide their own significance.  For a
        # symmetric clean distribution the one-sided median deviation
        # equals the MAD, so the 1.4826 normal-consistency factor still
        # applies.
        centre = float(np.median(values))
        upper = values[values > centre] - centre
        mad = float(np.median(upper)) if upper.size else 0.0
        spread = max(1.4826 * mad, 1e-9)
        flagged = tuple(
            segment_for_probe[name]
            for name, feature in features.items()
            if (feature - centre) / spread < -self.z_threshold
        )
        return flagged


def cluster_imprints(
    flagged: Iterable[SegmentId], adjacency_tiles: int = 14
) -> list[list[SegmentId]]:
    """Group flagged segments into route chains by physical adjacency.

    Segments whose origins are within ``adjacency_tiles`` Manhattan
    distance are assumed to belong to one serpentine route; connected
    components reconstruct the victim skeleton's 1-routes.
    """
    segments = list(flagged)
    graph = nx.Graph()
    graph.add_nodes_from(range(len(segments)))
    for i, a in enumerate(segments):
        for j in range(i + 1, len(segments)):
            b = segments[j]
            if a.origin.manhattan_distance(b.origin) <= adjacency_tiles:
                graph.add_edge(i, j)
    return [
        sorted((segments[i] for i in component), key=lambda s: s.origin)
        for component in nx.connected_components(graph)
    ]
