"""The three experimental phases of Section 5.2.

Each phase is a small callable object over an *environment* -- anything
exposing ``load_image`` / ``run_hours`` / ``attach_sensors`` (both
:class:`~repro.core.bench.LabBench` and
:class:`~repro.cloud.instance.F1Instance` qualify):

* **Calibration** -- load the Measure design, find theta_init per route;
* **Condition** -- load the Target design and let it run (the burn);
* **Measurement** -- load the Measure design and take one measurement of
  every route (fast: "less than a minute").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AttackError, TransientError
from repro.designs.measure import MeasureDesign, MeasureSession
from repro.fabric.bitstream import Bitstream
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.retry import retry_call
from repro.rng import SeedLike
from repro.sensor.noise import NoiseModel
from repro.sensor.tdc import Measurement, get_capture_kernel

_log = get_logger("core.phases")


def measure_with_recovery(
    session: MeasureSession, kernel: Optional[str] = None
) -> tuple[dict[str, Measurement], list[str]]:
    """Measure every calibrated route, retrying transient drops.

    Returns ``(measurements, dropped)``: one measurement per route that
    succeeded, plus the names of the routes that stayed unmeasured --
    either never calibrated (an unrecovered glitch upstream) or dropped
    past the retry budget.  Callers degrade per-route: the failed
    routes simply contribute no point this pass.
    """
    if (kernel or get_capture_kernel()) != "scalar":
        # Whole-board stacked kernel: one capture call for the bank,
        # with the same per-route retry/degradation semantics.
        measurements, dropped = session.measure_bank(
            kernel=kernel, recover=True
        )
    else:
        measurements = {}
        dropped = []
        for name in session.route_names:
            if name not in session.theta_init:
                dropped.append(name)
                continue
            try:
                measurements[name] = retry_call(
                    session.measure_route, name, kernel=kernel,
                    label=f"sensor.capture:{name}",
                )
            except TransientError:
                dropped.append(name)
    if dropped:
        registry.counter(
            "route_measurements_unrecovered_total",
            "route measurements abandoned past the retry budget",
        ).inc(len(dropped))
        _log.warning("measurement_degraded", dropped=len(dropped),
                     measured=len(measurements))
    return measurements, dropped


@dataclass
class CalibrationPhase:
    """Find (or adopt) theta_init for every route under test.

    One session object persists across all loads of the same Measure
    image: the carry chains land on the same silicon every time, so
    their mismatch and calibration carry over -- "an offset of theta is
    consistent between sensor design loadings".
    """

    measure_design: MeasureDesign
    noise: Optional[NoiseModel] = None
    seed: SeedLike = None
    session: Optional[MeasureSession] = None

    def run(
        self, environment, theta_init: Optional[dict] = None
    ) -> MeasureSession:
        """Load the Measure design and calibrate (or replay theta_init)."""
        with trace.span(
            "phase.calibration",
            routes=len(self.measure_design.routes),
            replayed=theta_init is not None,
        ):
            retry_call(environment.load_image, self.measure_design.bitstream,
                       label="phase.calibration.load")
            self.session = environment.attach_sensors(
                self.measure_design, noise=self.noise, seed=self.seed
            )
            if theta_init is not None:
                self.session.use_theta_init(theta_init)
                registry.counter(
                    "theta_init_replays_total",
                    "calibrations replayed from a-priori theta_init",
                ).inc()
            else:
                self.session.calibrate()
        _log.info("calibration_phase_done",
                  routes=len(self.measure_design.routes),
                  replayed=theta_init is not None)
        return self.session


@dataclass(frozen=True)
class ConditionPhase:
    """Run the Target design for a stress interval."""

    target_bitstream: Bitstream
    hours: float = 1.0

    def run(self, environment) -> None:
        """Execute the phase against an environment."""
        with trace.span("phase.condition", hours=self.hours):
            retry_call(environment.load_image, self.target_bitstream,
                       label="phase.condition.load")
            retry_call(environment.run_hours, self.hours,
                       label="phase.condition.run")
        registry.counter(
            "condition_phases_total", "Condition (stress) phases executed"
        ).inc()
        registry.counter(
            "condition_hours_total", "simulated hours spent conditioning"
        ).inc(self.hours)


@dataclass
class MeasurementPhase:
    """Reload the Measure design and take one measurement of each route."""

    measure_design: MeasureDesign
    calibration: CalibrationPhase
    #: Completed measurement passes (bookkeeping for reports).
    passes: int = field(default=0)

    def run(self, environment) -> dict[str, Measurement]:
        """Execute the phase against an environment."""
        session = self.calibration.session
        if session is None or not session.theta_init:
            raise AttackError("measurement requires a completed calibration")
        with trace.span(
            "phase.measurement", routes=len(self.measure_design.routes)
        ):
            retry_call(environment.load_image, self.measure_design.bitstream,
                       label="phase.measurement.load")
            retry_call(environment.run_hours,
                       session.measurement_duration_hours(),
                       label="phase.measurement.run")
            self.passes += 1
            measurements, _ = measure_with_recovery(session)
        registry.counter(
            "measurement_phases_total", "Measurement phases executed"
        ).inc()
        return measurements
