"""Bit-recovery classifiers.

Turning a route's delta-ps series back into the bit it carried is a
one-dimensional decision problem, but the usable feature differs by
threat model:

* **Threat Model 1** (pre-burn baseline available): the centred series
  drifts *up* for burn 1 and *down* for burn 0, so the late-window mean
  sign recovers the bit (:class:`BurnTrendClassifier`).
* **Threat Model 2** (no baseline; recovery only): the attacker holds
  all routes at 0 and watches.  Former burn-1 routes show a strong
  downward recovery transient; former burn-0 routes stay flat.  The
  robust slope (:class:`RecoverySlopeClassifier`) or the correlation
  with the expected stretched-exponential transient
  (:class:`MatchedFilterClassifier`) separates them.

Thresholds are chosen *unsupervised* wherever the attacker has no
labelled data: :func:`two_means_split` clusters the feature values into
two groups (1-D 2-means, equivalent to Otsu), because a real attacker
knows roughly half the key bits are ones but not which.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.kernel_regression import local_linear_smooth
from repro.analysis.stats import theil_sen_slope
from repro.analysis.timeseries import DeltaPsSeries
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.observability.progress import note_event

_log = get_logger("core.classify")


def classify_tolerantly(
    series_list: Sequence[DeltaPsSeries],
    classify_bank: Callable[[Sequence[DeltaPsSeries]], dict],
    min_points: int,
    route_status: Optional[dict] = None,
    fallback_bit: int = 0,
) -> dict[str, int]:
    """Classify a route bank, degrading per-route instead of aborting.

    Series too short to yield a feature (measurements dropped past the
    retry budget) are excluded from ``classify_bank``; they -- and any
    route the bank itself could not decide -- fall back to
    ``fallback_bit`` (a guess, reported as such: ``route_status`` gets
    ``"unrecovered"`` for them and the ``routes_unrecovered_total``
    counter advances).  A bank-level :class:`AnalysisError` (e.g. too
    few classifiable routes to cluster) degrades the *whole* bank to
    guesses rather than killing the attack run.
    """
    usable = [s for s in series_list if len(s) >= min_points]
    bits: dict[str, int] = {}
    if usable:
        try:
            bits = dict(classify_bank(usable))
        except AnalysisError as exc:
            _log.warning("bank_classification_degraded", error=str(exc),
                         routes=len(usable))
            bits = {}
    for series in series_list:
        if series.route_name not in bits:
            bits[series.route_name] = fallback_bit
            if route_status is not None:
                route_status[series.route_name] = "unrecovered"
            note_event("degraded", route=series.route_name,
                       points=len(series))
            registry.counter(
                "routes_unrecovered_total",
                "routes whose bits fell back to the default guess",
            ).inc()
    return bits


def two_means_split(values: Sequence[float]) -> float:
    """Unsupervised 1-D threshold between two clusters (2-means).

    Returns the midpoint between the converged cluster centres.  With a
    single cluster (all features alike) the threshold degenerates to the
    mean, which downstream callers should treat as "no signal".
    """
    data = np.asarray(values, dtype=float).ravel()
    if data.size < 2:
        raise AnalysisError("two_means_split needs >= 2 values")
    lo, hi = float(data.min()), float(data.max())
    if lo == hi:
        return lo
    centre_a, centre_b = lo, hi
    for _ in range(64):
        boundary = (centre_a + centre_b) / 2.0
        group_a = data[data <= boundary]
        group_b = data[data > boundary]
        if group_a.size == 0 or group_b.size == 0:
            break
        new_a, new_b = float(group_a.mean()), float(group_b.mean())
        if math.isclose(new_a, centre_a) and math.isclose(new_b, centre_b):
            break
        centre_a, centre_b = new_a, new_b
    return (centre_a + centre_b) / 2.0


@dataclass(frozen=True)
class BurnTrendClassifier:
    """Threat Model 1: classify by the late-window centred mean.

    ``tail_fraction`` controls how much of the end of the series feeds
    the feature; smoothing suppresses per-measurement noise first.
    """

    tail_fraction: float = 0.25
    smooth: bool = True

    def feature(self, series: DeltaPsSeries) -> float:
        """The classifier's decision feature for one series."""
        if len(series) < 4:
            raise AnalysisError(
                f"route {series.route_name!r}: need >= 4 measurements"
            )
        hours = series.hours_array
        values = series.centered
        if self.smooth and len(series) >= 8:
            values = local_linear_smooth(
                hours, values, bandwidth=max(4.0, float(np.ptp(hours)) / 10.0)
            )
        tail = max(int(len(series) * self.tail_fraction), 1)
        return float(np.mean(values[-tail:]))

    def classify(self, series: DeltaPsSeries) -> int:
        """The recovered bit: positive late drift means burn 1."""
        return 1 if self.feature(series) > 0.0 else 0

    def classify_many(
        self, series_list: Sequence[DeltaPsSeries]
    ) -> dict[str, int]:
        """Recovered bit per route, keyed by route name."""
        return {s.route_name: self.classify(s) for s in series_list}


@dataclass(frozen=True)
class RecoverySlopeClassifier:
    """Threat Model 2: classify by the recovery-window slope.

    Former burn-1 routes recover (slope strongly negative when the
    attacker conditions to 0); former burn-0 routes drift negligibly.
    With ``per_length_groups`` the unsupervised threshold is computed
    within each route-length group, because the recovery magnitude
    scales with length.
    """

    robust: bool = True

    def feature(self, series: DeltaPsSeries) -> float:
        """The classifier's decision feature for one series."""
        if len(series) < 3:
            raise AnalysisError(
                f"route {series.route_name!r}: need >= 3 measurements"
            )
        hours = series.hours_array
        values = series.centered
        if self.robust:
            return theil_sen_slope(hours, values)
        from repro.analysis.stats import ols_slope

        return ols_slope(hours, values)

    def classify_many(
        self,
        series_list: Sequence[DeltaPsSeries],
        conditioned_to: int = 0,
    ) -> dict[str, int]:
        """Unsupervised classification of a bank of routes.

        ``conditioned_to`` is the value the attacker holds during
        recovery; routes whose previous value *differs* from it show the
        transient.  Slopes are normalised by route length before
        clustering so all lengths share one threshold.
        """
        if conditioned_to not in (0, 1):
            raise AnalysisError("conditioned_to must be 0 or 1")
        names = [s.route_name for s in series_list]
        slopes = np.array(
            [
                self.feature(s) / max(s.nominal_delay_ps / 1000.0, 1e-9)
                for s in series_list
            ]
        )
        threshold = two_means_split(slopes)
        # Conditioning to 0 makes former-1 routes fall (more-negative
        # slope cluster = bit 1); conditioning to 1 is the mirror image.
        if conditioned_to == 0:
            bits = [1 if slope <= threshold else 0 for slope in slopes]
        else:
            bits = [0 if slope >= threshold else 1 for slope in slopes]
        return dict(zip(names, bits))


@dataclass(frozen=True)
class NullReferencedSlopeClassifier:
    """Threat Model 2 with a measured null distribution.

    A flash attack leaves the attacker holding several boards, only one
    of which carried the victim.  The others are a gift: probing them
    with the *same* measure/condition interleave yields the exact null
    distribution of recovery-window slopes -- the attacker's own
    conditioning imprint plus measurement noise -- per route and length
    class.  A victim route is declared burn-1 when its slope falls
    ``z_threshold`` null standard deviations below the null mean (for
    conditioning-to-0; mirrored for conditioning-to-1).

    This sidesteps the two failure modes of unsupervised clustering:
    heavily unbalanced secrets (almost-all-zero keys) and noisy short
    routes dragging the global threshold around.
    """

    robust: bool = True
    z_threshold: float = 1.0
    matched_tau_hours: float = 32.0
    matched_beta: float = 0.55

    def _slope(self, series: DeltaPsSeries) -> float:
        """Matched-filter projection onto the expected recovery shape.

        Projecting the centred series onto the high-pool stretched
        exponential uses the whole curve shape, outperforming a raw
        slope for the front-loaded transient.  Falls back to Theil-Sen
        when ``robust`` is disabled explicitly for studies.
        """
        hours = series.hours_array - series.hours_array[0]
        template = (
            np.exp(-((hours / self.matched_tau_hours) ** self.matched_beta))
            - 1.0
        )
        norm = float(np.linalg.norm(template))
        if norm == 0.0:
            raise AnalysisError("degenerate matched-filter template")
        if self.robust:
            # Negated so the feature, like a slope, goes negative for a
            # recovering route.
            return -float(np.dot(series.centered, template)) / norm
        return theil_sen_slope(series.hours_array, series.centered)

    def classify_many(
        self,
        victim_series: Sequence[DeltaPsSeries],
        null_series: Sequence[DeltaPsSeries],
        conditioned_to: int = 0,
    ) -> dict[str, int]:
        """Classify victim routes against per-route null statistics.

        ``null_series`` must cover every victim route name (the null
        boards ran the identical probe, so they do).
        """
        if conditioned_to not in (0, 1):
            raise AnalysisError("conditioned_to must be 0 or 1")
        if not null_series:
            raise AnalysisError("need at least one null board's series")
        null_by_route: dict[str, list[float]] = {}
        for series in null_series:
            null_by_route.setdefault(series.route_name, []).append(
                self._slope(series)
            )
        all_null = [s for slopes in null_by_route.values() for s in slopes]
        global_std = float(np.std(all_null)) if len(all_null) > 1 else 0.0
        bits: dict[str, int] = {}
        for series in victim_series:
            if series.route_name not in null_by_route:
                raise AnalysisError(
                    f"no null reference for route {series.route_name!r}"
                )
            null = np.asarray(null_by_route[series.route_name])
            centre = float(null.mean())
            spread = float(null.std()) if null.size > 1 else global_std
            spread = max(spread, global_std, 1e-9)
            z = (self._slope(series) - centre) / spread
            if conditioned_to == 0:
                bits[series.route_name] = 1 if z < -self.z_threshold else 0
            else:
                bits[series.route_name] = 0 if z > self.z_threshold else 1
        return bits


def cluster_separation(features: Sequence[float]) -> float:
    """Bimodality score: inter-cluster gap over pooled in-cluster spread.

    Used to pick the victim's board out of a flash-attack haul: the
    board that carried data shows a bimodal recovery-feature split,
    while pristine boards show one noise cluster.
    """
    data = np.asarray(features, dtype=float).ravel()
    if data.size < 2:
        raise AnalysisError("separation needs >= 2 features")
    threshold = two_means_split(data)
    lower = data[data <= threshold]
    upper = data[data > threshold]
    if lower.size == 0 or upper.size == 0:
        return 0.0
    pooled = float(np.sqrt((lower.var() * lower.size + upper.var() * upper.size)
                           / data.size))
    gap = float(upper.mean() - lower.mean())
    return gap / max(pooled, 1e-9)


@dataclass(frozen=True)
class MatchedFilterClassifier:
    """Threat Model 2 alternative: correlate with the expected transient.

    The expected recovery shape is the high-pool stretched exponential;
    its correlation with the centred series is large and positive for
    routes that are actually recovering.
    """

    tau_hours: float = 28.0
    beta: float = 0.55

    def feature(self, series: DeltaPsSeries) -> float:
        """The classifier's decision feature for one series."""
        if len(series) < 4:
            raise AnalysisError(
                f"route {series.route_name!r}: need >= 4 measurements"
            )
        hours = series.hours_array - series.hours_array[0]
        template = np.exp(-((hours / self.tau_hours) ** self.beta)) - 1.0
        template_norm = float(np.linalg.norm(template))
        if template_norm == 0.0:
            raise AnalysisError("degenerate matched-filter template")
        values = series.centered
        # Projection onto the (downward) recovery template, per 1000 ps
        # of route so lengths share a threshold.
        projection = float(np.dot(values, template)) / template_norm
        return projection / max(series.nominal_delay_ps / 1000.0, 1e-9)

    def classify_many(
        self,
        series_list: Sequence[DeltaPsSeries],
        conditioned_to: int = 0,
    ) -> dict[str, int]:
        """Recovered bit per route, keyed by route name."""
        if conditioned_to not in (0, 1):
            raise AnalysisError("conditioned_to must be 0 or 1")
        names = [s.route_name for s in series_list]
        features = np.array([self.feature(s) for s in series_list])
        threshold = two_means_split(features)
        if conditioned_to == 0:
            bits = [1 if f >= threshold else 0 for f in features]
        else:
            bits = [0 if f <= threshold else 1 for f in features]
        return dict(zip(names, bits))
