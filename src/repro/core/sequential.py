"""Sequential extraction: burn in only as long as necessary.

Section 6.2: "The attacker can continue the burn-in process until they
are satisfied that the sensitive values are extracted."  This module
makes that precise with a per-route sequential probability ratio test
(SPRT): after every hourly measurement, each route's accumulated drift
is converted into a log-likelihood ratio between the burn-1 and burn-0
hypotheses; a route *settles* once the ratio clears the error-rate
thresholds, and the attack stops when every route has settled (or a
budget runs out).

Compared to a fixed 200-hour burn, long routes settle within hours and
only the shortest routes consume the budget -- rent time is the
attacker's main cost, so this is the economically rational attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.timeseries import DeltaPsSeries


@dataclass(frozen=True)
class SprtConfig:
    """Error targets and signal model for the sequential test.

    The signal model follows the BTI power law: the expected centred
    level after ``t`` hours of burn is
    ``+/- drift_per_1kps_at_24h * (L/1000) * (t/24)**drift_exponent``.
    A mis-specified amplitude trades settle time against error rate, so
    the default is deliberately conservative (about half a lightly-aged
    cloud device's true drift).

    Attributes:
        alpha: acceptable probability of reading a 0 as a 1.
        beta: acceptable probability of reading a 1 as a 0.
        drift_per_1kps_at_24h: expected |centred drift| at 24 hours per
            1000 ps of route under the true hypothesis.
        drift_exponent: power-law exponent of the drift's growth.
        noise_sigma_ps: per-measurement noise standard deviation.
        min_observations: measurements required before a route may
            settle -- the power-law model expects most of its drift
            early, so without this guard a couple of aligned noise
            samples in the first hours could cross a threshold.
        baseline_samples: measurements averaged into the pre-burn
            baseline.  A single-sample baseline's noise would bias every
            subsequent centred level the same way (a common-mode error
            the test would integrate into a false decision).
    """

    alpha: float = 0.005
    beta: float = 0.005
    drift_per_1kps_at_24h: float = 0.2
    drift_exponent: float = 0.35
    noise_sigma_ps: float = 0.45
    min_observations: int = 5
    baseline_samples: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 0.5 or not 0.0 < self.beta < 0.5:
            raise AnalysisError("error rates must be in (0, 0.5)")
        if self.drift_per_1kps_at_24h <= 0.0 or self.noise_sigma_ps <= 0.0:
            raise AnalysisError("signal model parameters must be positive")
        if not 0.0 < self.drift_exponent <= 1.0:
            raise AnalysisError("drift_exponent must be in (0, 1]")

    def expected_level_ps(
        self, nominal_delay_ps: float, elapsed_hours: float
    ) -> float:
        """Model |centred drift| for a route after a burn interval."""
        if elapsed_hours <= 0.0:
            return 0.0
        return (
            self.drift_per_1kps_at_24h
            * (nominal_delay_ps / 1000.0)
            * (elapsed_hours / 24.0) ** self.drift_exponent
        )

    @property
    def upper_threshold(self) -> float:
        """Log-LR above which the route settles as a 1."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_threshold(self) -> float:
        """Log-LR below which the route settles as a 0."""
        return math.log(self.beta / (1.0 - self.alpha))


@dataclass
class _RunningSums:
    """Sufficient statistics of the marginalised-bias LLR."""

    count: int = 0
    mu: float = 0.0
    y: float = 0.0
    mu_y: float = 0.0

    def add(self, expected: float, observed: float) -> None:
        """Accumulate one (expected, observed) pair."""
        self.count += 1
        self.mu += expected
        self.y += observed
        self.mu_y += expected * observed


@dataclass
class RouteDecision:
    """Evolving SPRT state for one route."""

    route_name: str
    nominal_delay_ps: float
    log_likelihood_ratio: float = 0.0
    settled_bit: Optional[int] = None
    settled_at_hour: Optional[float] = None

    @property
    def settled(self) -> bool:
        """Whether the route has reached a decision."""
        return self.settled_bit is not None


@dataclass
class SequentialExtractor:
    """Per-route SPRT over incoming measurements.

    Feed it each measurement as it arrives (:meth:`update`); consult
    :meth:`all_settled` to decide whether to keep paying for rent time.
    Call :meth:`decisions` at any point for the current best bits (the
    LLR sign breaks ties for unsettled routes).
    """

    config: SprtConfig = field(default_factory=SprtConfig)
    _routes: dict = field(default_factory=dict)
    _baseline_value: dict = field(default_factory=dict)
    _baseline_hour: dict = field(default_factory=dict)
    _last_hour: dict = field(default_factory=dict)
    _observations: dict = field(default_factory=dict)

    def update(
        self,
        route_name: str,
        nominal_delay_ps: float,
        hour: float,
        delta_ps: float,
    ) -> RouteDecision:
        """Ingest one measurement; returns the route's updated state.

        Each measurement's *level* relative to the pre-burn baseline is
        an independent-noise observation of the accumulated drift
        (+/- drift x elapsed hours), so the log-likelihood ratio gains a
        term proportional to ``expected_level x observed_level`` per
        measurement -- the statistic's information grows cubically in
        time, which is why long routes settle within hours.
        """
        state = self._routes.get(route_name)
        if state is None:
            state = RouteDecision(
                route_name=route_name, nominal_delay_ps=nominal_delay_ps
            )
            self._routes[route_name] = state
            self._baseline_value[route_name] = [delta_ps]
            self._baseline_hour[route_name] = [hour]
            self._last_hour[route_name] = hour
            self._observations[route_name] = _RunningSums()
            return state
        if state.settled:
            return state
        if hour <= self._last_hour[route_name]:
            raise AnalysisError(
                f"route {route_name!r}: measurements must move forward"
            )
        self._last_hour[route_name] = hour
        baseline_values = self._baseline_value[route_name]
        if len(baseline_values) < self.config.baseline_samples:
            baseline_values.append(delta_ps)
            self._baseline_hour[route_name].append(hour)
            return state
        baseline = float(np.mean(baseline_values))
        baseline_hour = float(np.mean(self._baseline_hour[route_name]))
        elapsed = hour - baseline_hour
        observed = delta_ps - baseline
        expected = self.config.expected_level_ps(nominal_delay_ps, elapsed)

        # The baseline's residual noise biases *every* centred level the
        # same way, so the hypotheses are level = +/-mu_t + b + eps_t
        # with b ~ N(0, sigma_b^2).  Marginalising b makes the noise
        # equicorrelated; the LLR has the closed form
        #   (2/sigma^2) * (sum(mu*y) - lam * sum(mu) * sum(y)),
        #   lam = sigma_b^2 / (sigma^2 + T*sigma_b^2),
        # whose bias contribution is bounded in T (an un-marginalised
        # level test would integrate b into a guaranteed false decision).
        sums = self._observations[route_name]
        sums.add(expected, observed)
        sigma_sq = self.config.noise_sigma_ps**2
        sigma_b_sq = sigma_sq / len(baseline_values)
        lam = sigma_b_sq / (sigma_sq + sums.count * sigma_b_sq)
        state.log_likelihood_ratio = (2.0 / sigma_sq) * (
            sums.mu_y - lam * sums.mu * sums.y
        )
        if sums.count < self.config.min_observations:
            return state
        if state.log_likelihood_ratio >= self.config.upper_threshold:
            state.settled_bit = 1
            state.settled_at_hour = hour
        elif state.log_likelihood_ratio <= self.config.lower_threshold:
            state.settled_bit = 0
            state.settled_at_hour = hour
        return state

    def update_from_series(self, series: DeltaPsSeries) -> RouteDecision:
        """Replay a whole recorded series through the test."""
        state = None
        for hour, value in zip(series.hours, series.raw_delta_ps):
            state = self.update(
                series.route_name, series.nominal_delay_ps, hour, value
            )
        if state is None:
            raise AnalysisError(f"series {series.route_name!r} is empty")
        return state

    def all_settled(self) -> bool:
        """Whether every tracked route has settled."""
        return bool(self._routes) and all(
            s.settled for s in self._routes.values()
        )

    def settled_fraction(self) -> float:
        """Fraction of tracked routes that have settled."""
        if not self._routes:
            return 0.0
        settled = sum(1 for s in self._routes.values() if s.settled)
        return settled / len(self._routes)

    def decisions(self) -> dict[str, int]:
        """Current best bit per route (LLR sign for unsettled routes)."""
        return {
            name: (
                state.settled_bit
                if state.settled
                else int(state.log_likelihood_ratio > 0.0)
            )
            for name, state in self._routes.items()
        }

    def settle_times(self) -> dict[str, float]:
        """Hours at which each settled route reached a decision."""
        return {
            name: state.settled_at_hour
            for name, state in self._routes.items()
            if state.settled
        }

    def confidence(self, route_name: str) -> float:
        """Posterior probability of the currently-favoured bit."""
        if route_name not in self._routes:
            raise AnalysisError(f"unknown route {route_name!r}")
        llr = self._routes[route_name].log_likelihood_ratio
        posterior_one = 1.0 / (1.0 + math.exp(-np.clip(llr, -500, 500)))
        return max(posterior_one, 1.0 - posterior_one)
