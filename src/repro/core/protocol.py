"""The interleaved condition/measurement protocol.

Experiments 1 and 2 alternate a one-hour Condition phase with a
sub-minute Measurement phase, repeated for hundreds of hours; Experiment
3 does the same during its 25-hour recovery window.
:class:`ConditionMeasureProtocol` runs that loop over any environment
and accumulates a :class:`~repro.analysis.timeseries.SeriesBundle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import AttackError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle
from repro.core.phases import CalibrationPhase, ConditionPhase, MeasurementPhase
from repro.designs.measure import MeasureDesign
from repro.fabric.bitstream import Bitstream
from repro.fabric.routing import Route
from repro.observability import trace
from repro.observability.metrics import registry

ProgressCallback = Callable[[int, int], None]


@dataclass
class ConditionMeasureProtocol:
    """Hourly condition/measure interleave over one route bank."""

    environment: object
    target_bitstream: Bitstream
    measure_design: MeasureDesign
    routes: Sequence[Route]
    condition_hours_per_cycle: float = 1.0
    calibration: Optional[CalibrationPhase] = None
    bundle: SeriesBundle = field(default_factory=lambda: SeriesBundle("run"))

    def __post_init__(self) -> None:
        if self.condition_hours_per_cycle <= 0.0:
            raise AttackError("condition interval must be positive")
        if self.calibration is None:
            self.calibration = CalibrationPhase(self.measure_design)
        for route in self.routes:
            self.bundle.add(
                DeltaPsSeries(
                    route_name=route.name,
                    nominal_delay_ps=route.nominal_delay_ps,
                )
            )
        self._measurement = MeasurementPhase(
            measure_design=self.measure_design, calibration=self.calibration
        )
        self._clock = 0.0

    def calibrate(self, theta_init: Optional[dict] = None) -> dict:
        """Run (or replay) the Calibration phase.  Call once, up front."""
        session = self.calibration.run(self.environment, theta_init=theta_init)
        return dict(session.theta_init)

    def measure_once(self) -> None:
        """One Measurement phase; records a point per measured route.

        Routes whose measurement stayed failed past the retry budget
        simply contribute no point this pass -- their series end up
        shorter, and classification degrades per-route downstream.
        """
        measurements = self._measurement.run(self.environment)
        for route in self.routes:
            measurement = measurements.get(route.name)
            if measurement is not None:
                self.bundle.series[route.name].append(
                    self._clock, measurement.delta_ps
                )
        self._clock += self.calibration.session.measurement_duration_hours()

    def run_cycles(
        self,
        cycles: int,
        progress: Optional[ProgressCallback] = None,
        target_for_cycle: Optional[Callable[[int], Bitstream]] = None,
    ) -> SeriesBundle:
        """``cycles`` repetitions of measure-then-condition.

        Measurement leads so that the first recorded point is the
        pre-stress baseline the series are centred on.
        ``target_for_cycle`` lets mitigation schedules substitute a
        different Target image per cycle (inversion, shuffling, key
        rotation); by default every cycle conditions with
        ``self.target_bitstream``.
        """
        if cycles <= 0:
            raise AttackError(f"cycles must be positive, got {cycles}")
        for cycle in range(cycles):
            with trace.span("protocol.cycle", index=cycle, hour=self._clock):
                self.measure_once()
                bitstream = (
                    target_for_cycle(cycle)
                    if target_for_cycle is not None
                    else self.target_bitstream
                )
                ConditionPhase(
                    target_bitstream=bitstream,
                    hours=self.condition_hours_per_cycle,
                ).run(self.environment)
                self._clock += self.condition_hours_per_cycle
            registry.counter(
                "protocol_cycles_total", "condition/measure cycles completed"
            ).inc()
            if progress is not None:
                progress(cycle + 1, cycles)
        self.measure_once()
        return self.bundle

    def condition_only(self, hours: float) -> None:
        """An unobserved stress interval (Experiment 3's victim period)."""
        with trace.span("protocol.condition_only", hours=hours):
            ConditionPhase(
                target_bitstream=self.target_bitstream, hours=hours
            ).run(self.environment)
            self._clock += hours
