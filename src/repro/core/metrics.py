"""Scoring recovered bits against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RecoveryScore:
    """Bitwise comparison of recovered vs. true values."""

    total_bits: int
    correct_bits: int
    per_route: dict[str, bool]

    @property
    def accuracy(self) -> float:
        """Fraction of bits recovered correctly."""
        return self.correct_bits / self.total_bits

    @property
    def bit_error_rate(self) -> float:
        """Fraction of bits recovered incorrectly."""
        return 1.0 - self.accuracy

    def __str__(self) -> str:
        return (
            f"recovered {self.correct_bits}/{self.total_bits} bits "
            f"({self.accuracy:.1%}, BER {self.bit_error_rate:.3f})"
        )


def score_recovery(
    recovered: Mapping[str, int], truth: Mapping[str, int]
) -> RecoveryScore:
    """Score a recovered bit assignment against the oracle values."""
    if not recovered:
        raise AnalysisError("no recovered bits to score")
    missing = set(recovered) - set(truth)
    if missing:
        raise AnalysisError(f"no ground truth for routes: {sorted(missing)}")
    per_route = {
        name: int(recovered[name]) == int(truth[name]) for name in recovered
    }
    correct = sum(per_route.values())
    return RecoveryScore(
        total_bits=len(per_route), correct_bits=correct, per_route=per_route
    )


def grouped_accuracy(
    score: RecoveryScore, groups: Mapping[str, float]
) -> dict[float, float]:
    """Accuracy broken down by a per-route grouping key (e.g. length)."""
    totals: dict[float, int] = {}
    hits: dict[float, int] = {}
    for name, correct in score.per_route.items():
        if name not in groups:
            raise AnalysisError(f"route {name!r} has no group assignment")
        key = groups[name]
        totals[key] = totals.get(key, 0) + 1
        hits[key] = hits.get(key, 0) + int(correct)
    return {key: hits[key] / totals[key] for key in sorted(totals)}
