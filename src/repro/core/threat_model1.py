"""Threat Model 1: proprietary design data extraction.

The attacker rents a marketplace AFI whose bitstream is sealed, knows
its route skeleton (Assumption 1), and wants the constants baked into
it.  Following Section 2's six steps:

1. rent an F1 instance;
2. measure the target routes pre-burn (the baseline the series are
   centred on);
3. deploy the victim AFI;
4. let it execute, burning its constants into the routes;
5. interleave measurement passes with further burn-in;
6. classify each route's drift to recover the constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AttackError
from repro.analysis.timeseries import SeriesBundle
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.classify import BurnTrendClassifier, classify_tolerantly
from repro.core.phases import CalibrationPhase, ConditionPhase, MeasurementPhase
from repro.designs.measure import build_measure_design
from repro.fabric.bitstream import DesignSkeleton
from repro.observability import trace
from repro.reliability.retry import retry_call
from repro.rng import SeedLike


@dataclass(frozen=True)
class ThreatModel1Result:
    """Outcome of a Threat Model 1 run."""

    recovered_bits: dict[str, int]
    bundle: SeriesBundle
    burn_hours: float
    #: Per-route recovery status: ``"ok"`` (full series), ``"degraded"``
    #: (some measurement passes lost past the retry budget) or
    #: ``"unrecovered"`` (too little data -- the bit is a guess).
    route_status: dict[str, str] = field(default_factory=dict)

    def bit_for(self, net_name: str) -> int:
        """The recovered bit of one net."""
        if net_name not in self.recovered_bits:
            raise AttackError(f"no recovered bit for net {net_name!r}")
        return self.recovered_bits[net_name]


def _note_pass(measurements: dict, route_status: dict) -> dict:
    """Mark routes a measurement pass lost as degraded; pass through."""
    for name in route_status:
        if name not in measurements and route_status[name] == "ok":
            route_status[name] = "degraded"
    return measurements


@dataclass
class ThreatModel1Attack:
    """End-to-end Type A (design data) extraction.

    Attributes:
        provider: the cloud platform.
        marketplace: where the victim AFI is listed.
        afi_id: the listing under attack.
        skeleton: the design skeleton (Assumption 1); fetched from the
            marketplace automatically when the publisher's sources are
            public.
        region: region to rent in.
        tenant: attacker's account name.
    """

    provider: CloudProvider
    marketplace: Marketplace
    afi_id: str
    region: str
    skeleton: Optional[DesignSkeleton] = None
    tenant: str = "attacker"
    seed: SeedLike = None
    classifier: BurnTrendClassifier = field(default_factory=BurnTrendClassifier)

    def run(
        self,
        burn_hours: int = 200,
        measure_every_hours: float = 1.0,
    ) -> ThreatModel1Result:
        """Execute the attack and recover the AFI's static net values."""
        if burn_hours <= 0:
            raise AttackError(f"burn_hours must be positive, got {burn_hours}")
        skeleton = self.skeleton or self.marketplace.skeleton_of(self.afi_id)
        # Target the constant-driven nets (Type A data); the skeleton
        # reveals which nets those are, never their values.
        routes = skeleton.static_routes()
        if not routes:
            routes = [skeleton.route_for(name) for name in skeleton.net_names]
        route_status = {route.name: "ok" for route in routes}
        instance = retry_call(self.provider.rent, self.region, self.tenant,
                              label="cloud.rent")
        try:
            part = instance.device.part
            measure_design = build_measure_design(
                part, routes, name=f"tm1-measure-{self.afi_id}"
            )
            calibration = CalibrationPhase(measure_design, seed=self.seed)
            measurement = MeasurementPhase(
                measure_design=measure_design, calibration=calibration
            )

            # Steps 1-2: pre-burn-in calibration and baseline.
            calibration.run(instance)
            bundle = SeriesBundle(label=f"tm1-{self.afi_id}")
            from repro.analysis.timeseries import DeltaPsSeries

            for route in routes:
                bundle.add(
                    DeltaPsSeries(
                        route_name=route.name,
                        nominal_delay_ps=route.nominal_delay_ps,
                    )
                )
            clock = 0.0
            for route_name, m in _note_pass(
                measurement.run(instance), route_status
            ).items():
                bundle.series[route_name].append(clock, m.delta_ps)

            # Steps 3-5: interleave AFI execution with measurement.
            listing = self.marketplace.listing(self.afi_id)
            cycles = int(round(burn_hours / measure_every_hours))
            for cycle in range(cycles):
                with trace.span("tm1.cycle", index=cycle, hour=clock):
                    retry_call(instance.load_image, listing.image,
                               label="tm1.load_target")
                    retry_call(instance.run_hours, measure_every_hours,
                               label="tm1.burn")
                    clock += measure_every_hours
                    measurements = _note_pass(
                        measurement.run(instance), route_status
                    )
                    for route_name, m in measurements.items():
                        bundle.series[route_name].append(clock, m.delta_ps)
                    clock += calibration.session.measurement_duration_hours()

            # Step 6: classify the drift into bits; routes whose series
            # came back too thin degrade to a guessed 0 instead of
            # aborting the whole extraction.
            recovered = classify_tolerantly(
                list(bundle), self.classifier.classify_many,
                min_points=4, route_status=route_status,
            )
        finally:
            self.provider.release(instance)
        return ThreatModel1Result(
            recovered_bits=recovered, bundle=bundle,
            burn_hours=float(burn_hours), route_status=route_status,
        )

    def run_until_confident(
        self,
        max_hours: int = 200,
        measure_every_hours: float = 1.0,
        sprt: Optional["SprtConfig"] = None,
    ) -> ThreatModel1Result:
        """Sequential variant: stop when every bit has settled.

        Section 6.2: "The attacker can continue the burn-in process
        until they are satisfied that the sensitive values are
        extracted."  Runs the same interleave but feeds every
        measurement into a per-route SPRT
        (:class:`~repro.core.sequential.SequentialExtractor`) and
        releases the instance as soon as all routes settle -- long
        routes settle within hours, so the attacker's rent bill shrinks
        dramatically against a fixed 200-hour burn.
        """
        from repro.core.sequential import SequentialExtractor, SprtConfig

        if max_hours <= 0:
            raise AttackError(f"max_hours must be positive, got {max_hours}")
        skeleton = self.skeleton or self.marketplace.skeleton_of(self.afi_id)
        routes = skeleton.static_routes()
        if not routes:
            routes = [skeleton.route_for(name) for name in skeleton.net_names]
        extractor = SequentialExtractor(config=sprt or SprtConfig())
        route_status = {route.name: "ok" for route in routes}
        instance = retry_call(self.provider.rent, self.region, self.tenant,
                              label="cloud.rent")
        try:
            part = instance.device.part
            measure_design = build_measure_design(
                part, routes, name=f"tm1-seq-measure-{self.afi_id}"
            )
            calibration = CalibrationPhase(measure_design, seed=self.seed)
            measurement = MeasurementPhase(
                measure_design=measure_design, calibration=calibration
            )
            calibration.run(instance)
            bundle = SeriesBundle(label=f"tm1-seq-{self.afi_id}")
            from repro.analysis.timeseries import DeltaPsSeries

            for route in routes:
                bundle.add(
                    DeltaPsSeries(
                        route_name=route.name,
                        nominal_delay_ps=route.nominal_delay_ps,
                    )
                )
            clock = 0.0
            for route_name, m in _note_pass(
                measurement.run(instance), route_status
            ).items():
                bundle.series[route_name].append(clock, m.delta_ps)
                route = bundle.series[route_name]
                extractor.update(
                    route_name, route.nominal_delay_ps, clock, m.delta_ps
                )
            listing = self.marketplace.listing(self.afi_id)
            cycles = int(round(max_hours / measure_every_hours))
            for cycle in range(cycles):
                with trace.span("tm1.cycle", index=cycle, hour=clock):
                    retry_call(instance.load_image, listing.image,
                               label="tm1.load_target")
                    retry_call(instance.run_hours, measure_every_hours,
                               label="tm1.burn")
                    clock += measure_every_hours
                    for route_name, m in _note_pass(
                        measurement.run(instance), route_status
                    ).items():
                        bundle.series[route_name].append(clock, m.delta_ps)
                        route = bundle.series[route_name]
                        extractor.update(
                            route_name, route.nominal_delay_ps, clock,
                            m.delta_ps,
                        )
                    clock += calibration.session.measurement_duration_hours()
                if extractor.all_settled():
                    break
            recovered = extractor.decisions()
            for route in routes:
                if route.name not in recovered:
                    # No data ever reached the SPRT for this route:
                    # report a guessed 0 rather than aborting.
                    recovered[route.name] = 0
                    route_status[route.name] = "unrecovered"
        finally:
            self.provider.release(instance)
        return ThreatModel1Result(
            recovered_bits=recovered, bundle=bundle, burn_hours=clock,
            route_status=route_status,
        )
