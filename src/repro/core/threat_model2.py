"""Threat Model 2: confidential user data extraction.

The attacker targets a *previous tenant* of a cloud FPGA.  Per Section
2's steps: the victim runs their design (burning their runtime data into
the routes), releases the device, and the provider wipes it.  The
attacker then

4. re-acquires the relinquished physical device (flash attack: exhaust
   the region's free stock, so the victim's board is guaranteed to be
   among the holdings);
5. loads a Measure design over the victim's route skeleton on **every**
   held board, replaying a-priori theta_init values (calibrated once on
   any same-part board -- the attacker never saw *this* board pre-burn);
6. alternates Measurement with Condition-to-0 for ~25 hours on all
   boards in lockstep (they are independent hardware), identifies the
   victim's board as the one showing recovery transients, and classifies
   each route's transient into the victim's bits.

Conditioning to logical 0 is the paper's choice "motivated by the
results in Experiment 1": the burn-1 imprint recovers fastest, giving
the largest detectable transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AttackError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle
from repro.cloud.colocation import FlashAttack
from repro.cloud.instance import F1Instance
from repro.cloud.provider import CloudProvider
from repro.core.classify import (
    NullReferencedSlopeClassifier,
    RecoverySlopeClassifier,
    classify_tolerantly,
)
from repro.core.phases import measure_with_recovery
from repro.designs.measure import MeasureSession, build_measure_design
from repro.designs.target import build_target_design
from repro.fabric.routing import Route
from repro.observability import trace
from repro.observability.metrics import registry
from repro.reliability.retry import retry_call
from repro.rng import RngFactory, SeedLike


@dataclass(frozen=True)
class ThreatModel2Result:
    """Outcome of a Threat Model 2 run."""

    recovered_bits: dict[str, int]
    bundle: SeriesBundle
    recovery_hours: float
    devices_probed: int
    all_bundles: tuple = ()
    #: Per-route recovery status: ``"ok"``, ``"degraded"`` (points lost
    #: past the retry budget) or ``"unrecovered"`` (bit is a guess).
    route_status: dict[str, str] = field(default_factory=dict)


@dataclass
class _BoardProbe:
    """Per-board sensing state during the lockstep recovery window."""

    instance: F1Instance
    session: MeasureSession
    bundle: SeriesBundle


@dataclass
class ThreatModel2Attack:
    """End-to-end Type B (user data) extraction.

    Attributes:
        provider: the cloud platform.
        region: region the victim computed in.
        routes: the victim design's route skeleton (Assumption 1).
        theta_init: a-priori per-route calibration, captured on any
            board of the same part.
        conditioned_to: value the attacker holds during the recovery
            window (0 per the paper's analysis).
    """

    provider: CloudProvider
    region: str
    routes: Sequence[Route]
    theta_init: dict[str, float]
    conditioned_to: int = 0
    tenant: str = "attacker"
    seed: SeedLike = None
    #: Measurement passes averaged per hourly point.  The paper measures
    #: once per hour, but measurement costs under a minute and the
    #: attacker owns the board for the full hour -- averaging a few
    #: passes is a free noise reduction (sqrt(passes)).
    measurement_passes: int = 4
    classifier: RecoverySlopeClassifier = field(
        default_factory=RecoverySlopeClassifier
    )

    def run(
        self,
        recovery_hours: int = 25,
        instances: Optional[Sequence[F1Instance]] = None,
    ) -> ThreatModel2Result:
        """Execute the recovery-side attack.

        With ``instances=None`` a flash attack first exhausts the
        region; all acquired boards are probed in lockstep and the one
        with the strongest transient is taken as the victim's.  Passing
        instances skips acquisition (e.g. when the attacker already
        confirmed the board by fingerprint).
        """
        if self.conditioned_to not in (0, 1):
            raise AttackError("conditioned_to must be 0 or 1")
        if recovery_hours < 3:
            raise AttackError("need at least 3 hourly points to see a trend")
        flash = None
        if instances is None:
            flash = FlashAttack(
                provider=self.provider,
                region_name=self.region,
                tenant=self.tenant,
            )
            instances = flash.acquire_all()
        self._route_status = {route.name: "ok" for route in self.routes}
        try:
            probes = self._arm_boards(instances)
            self._lockstep_recovery(probes, recovery_hours)
        finally:
            if flash is not None:
                flash.release_except(None)
        bundles = tuple(probe.bundle for probe in probes)
        if len(bundles) > 1:
            best = _identify_victim_board(bundles, self.conditioned_to)
            # The other flash-acquired boards ran the identical probe
            # without victim data: a measured null distribution.  Null
            # series too thin to yield a slope (their measurements were
            # dropped past the retry budget) are left out of the
            # reference; victim routes without any usable reference
            # degrade to a guess instead of aborting.
            null_series = [
                s for b in bundles if b is not best
                for s in b if len(s) >= 3
            ]
            covered = {s.route_name for s in null_series}
            recovered = classify_tolerantly(
                list(best),
                lambda usable: NullReferencedSlopeClassifier().classify_many(
                    [s for s in usable if s.route_name in covered],
                    null_series, conditioned_to=self.conditioned_to,
                ),
                min_points=3, route_status=self._route_status,
            )
        else:
            best = bundles[0]
            recovered = classify_tolerantly(
                list(best),
                lambda usable: self.classifier.classify_many(
                    usable, conditioned_to=self.conditioned_to
                ),
                min_points=3, route_status=self._route_status,
            )
        return ThreatModel2Result(
            recovered_bits=recovered,
            bundle=best,
            recovery_hours=float(recovery_hours),
            devices_probed=len(bundles),
            all_bundles=bundles,
            route_status=dict(self._route_status),
        )

    def _arm_boards(self, instances: Sequence[F1Instance]) -> list:
        """Step 5 on every board: load sensors, replay theta_init."""
        if not instances:
            raise AttackError("no boards to probe")
        rng = RngFactory(None if self.seed is None else int(self.seed))
        part = instances[0].device.part
        self._measure_design = build_measure_design(
            part, self.routes, name="tm2-measure"
        )
        self._hold_design = build_target_design(
            part,
            self.routes,
            burn_values=[self.conditioned_to] * len(self.routes),
            heater_dsps=0,
            name="tm2-hold",
        )
        probes = []
        for instance in instances:
            retry_call(instance.load_image, self._measure_design.bitstream,
                       label="tm2.arm")
            session = instance.attach_sensors(
                self._measure_design, seed=rng.spawn()
            )
            session.use_theta_init(self.theta_init)
            bundle = SeriesBundle(
                label=f"tm2-board-{instance.instance_id}"
            )
            for route in self.routes:
                bundle.add(
                    DeltaPsSeries(
                        route_name=route.name,
                        nominal_delay_ps=route.nominal_delay_ps,
                    )
                )
            probes.append(
                _BoardProbe(instance=instance, session=session, bundle=bundle)
            )
        return probes

    def _lockstep_recovery(self, probes: list, recovery_hours: int) -> None:
        """Step 6: hourly measure/condition on all boards in parallel.

        Boards are independent hardware, so one global clock advance
        covers every board's conditioning hour.
        """
        clock = 0.0
        measure_dt = probes[0].session.measurement_duration_hours()
        for hour in range(recovery_hours):
            with trace.span("tm2.lockstep_cycle", hour=hour,
                            boards=len(probes)):
                clock = self._measure_all_boards(probes, clock, measure_dt)
                for probe in probes:
                    retry_call(probe.instance.load_image,
                               self._hold_design.bitstream,
                               label="tm2.hold")
                self.provider.advance(1.0)
                clock += 1.0
        self._measure_all_boards(probes, clock, measure_dt)

    def _measure_all_boards(
        self, probes: list, clock: float, measure_dt: float
    ) -> float:
        passes = max(self.measurement_passes, 1)
        route_status = getattr(self, "_route_status", {})
        for probe in probes:
            with trace.span("tm2.board_measure",
                            board=probe.instance.instance_id, passes=passes):
                retry_call(probe.instance.load_image,
                           self._measure_design.bitstream,
                           label="tm2.measure_load")
                totals: dict[str, float] = {}
                counts: dict[str, int] = {}
                for _ in range(passes):
                    measurements, dropped = measure_with_recovery(
                        probe.session
                    )
                    for route_name, m in measurements.items():
                        totals[route_name] = (
                            totals.get(route_name, 0.0) + m.delta_ps
                        )
                        counts[route_name] = counts.get(route_name, 0) + 1
                    for route_name in dropped:
                        if route_status.get(route_name) == "ok":
                            route_status[route_name] = "degraded"
                # A route with zero surviving passes this hour simply
                # contributes no point; surviving passes still average.
                for route_name, total in totals.items():
                    probe.bundle.series[route_name].append(
                        clock, total / counts[route_name]
                    )
            registry.counter(
                "tm2_board_measurements_total",
                "per-board lockstep measurement passes",
            ).inc(passes)
        self.provider.advance(measure_dt * passes)
        return clock + measure_dt * passes


def _identify_victim_board(
    bundles: Sequence[SeriesBundle], conditioned_to: int
) -> SeriesBundle:
    """Pick the board that carried the victim out of a flash-attack haul.

    Two signatures distinguish the victim's board, both per unit route
    length over the longer (less noisy) routes:

    * its former burn-``conditioned_to`` routes sit on *saturated*
      trap pools, so the attacker's own conditioning adds almost
      nothing -- the majority of routes is **flatter** than on a
      pristine board, where every route shows the fresh conditioning
      drift (higher median feature when conditioning to 0);
    * its former burn-complement routes recover strongly -- a **wide
      dispersion** of features.

    The score combines both (median + 2 IQR for conditioning-to-0).
    Identification assumes the secret is not single-valued; for
    degenerate all-same-bit secrets, fingerprint-based re-acquisition
    (:mod:`repro.cloud.fingerprint`) is the reliable alternative.
    """
    classifier = RecoverySlopeClassifier()
    scores = []
    for bundle in bundles:
        features = np.asarray(
            [
                classifier.feature(series)
                / max(series.nominal_delay_ps / 1000.0, 1e-9)
                for series in bundle
                if series.nominal_delay_ps >= 1500.0
            ]
            or [
                classifier.feature(series)
                / max(series.nominal_delay_ps / 1000.0, 1e-9)
                for series in bundle
            ]
        )
        median = float(np.median(features))
        iqr = float(
            np.percentile(features, 75) - np.percentile(features, 25)
        )
        directional = median if conditioned_to == 0 else -median
        scores.append(directional + 2.0 * iqr)
    return bundles[int(np.argmax(scores))]
