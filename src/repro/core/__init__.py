"""The pentimento attack framework (the paper's contribution).

Orchestrates the calibration / condition / measurement phases over any
execution environment (a local lab bench or a rented cloud instance) and
turns the resulting delta-ps time series back into the victim's bits:

* :mod:`repro.core.bench` -- the lab-bench environment (Experiment 1);
* :mod:`repro.core.phases` / :mod:`repro.core.protocol` -- the phase
  machinery of Section 5.2;
* :mod:`repro.core.classify` -- bit-recovery classifiers for burn-in
  trends (Threat Model 1) and recovery transients (Threat Model 2);
* :mod:`repro.core.threat_model1` / :mod:`repro.core.threat_model2` --
  end-to-end attack orchestration on the cloud platform;
* :mod:`repro.core.metrics` -- bit-error-rate scoring.
"""

from repro.core.bench import LabBench
from repro.core.classify import (
    BurnTrendClassifier,
    MatchedFilterClassifier,
    RecoverySlopeClassifier,
    two_means_split,
)
from repro.core.metrics import RecoveryScore, score_recovery
from repro.core.phases import CalibrationPhase, ConditionPhase, MeasurementPhase
from repro.core.protocol import ConditionMeasureProtocol
from repro.core.threat_model1 import ThreatModel1Attack, ThreatModel1Result
from repro.core.threat_model2 import ThreatModel2Attack, ThreatModel2Result

__all__ = [
    "BurnTrendClassifier",
    "CalibrationPhase",
    "ConditionMeasureProtocol",
    "ConditionPhase",
    "LabBench",
    "MatchedFilterClassifier",
    "MeasurementPhase",
    "RecoveryScore",
    "RecoverySlopeClassifier",
    "ThreatModel1Attack",
    "ThreatModel1Result",
    "ThreatModel2Attack",
    "ThreatModel2Result",
    "score_recovery",
    "two_means_split",
]
