"""One-shot reproduction reports.

:func:`generate_reproduction_report` runs the paper's four evaluation
artefacts (Table 1, Figures 6-8) at the requested scale and renders a
self-contained markdown report with the reproduced numbers next to the
published ones -- the programmatic sibling of EXPERIMENTS.md, suitable
for regenerating after any model change (``python -m repro report``).
"""

from __future__ import annotations

import io
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments import (
    Experiment1Config,
    Experiment2Config,
    Experiment3Config,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)
from repro.opentitan import build_table1, render_table1

#: The paper's Figure 6 / Figure 7 magnitude bands, ps.
FIG6_PAPER_BANDS = {1000.0: (1.0, 2.0), 2000.0: (2.0, 3.0),
                    5000.0: (5.0, 6.0), 10000.0: (10.0, 11.0)}
FIG7_PAPER_MAX = {1000.0: 0.2, 2000.0: 0.4, 5000.0: 1.0, 10000.0: 2.0}


def generate_reproduction_report(
    scale: str = "quick",
    seed: int = 1,
    routes_per_length: Optional[int] = None,
) -> str:
    """Run every evaluation artefact and render the comparison report.

    ``scale`` is ``"quick"`` (minutes; reduced routes and hours) or
    ``"paper"`` (the full protocol).  The report is plain markdown.
    """
    if scale not in ("quick", "paper"):
        raise ConfigurationError(f"scale must be quick|paper, got {scale!r}")
    out = io.StringIO()
    out.write("# Pentimento reproduction report\n\n")
    out.write(f"scale: **{scale}**, seed {seed}\n\n")

    # --- Table 1 -------------------------------------------------------
    rows = build_table1(seed=seed)
    out.write("## Table 1 (OpenTitan route lengths)\n\n```\n")
    out.write(render_table1(rows, compare=True))
    out.write("\n```\n\n")

    def config_for(cls, **overrides):
        """The scale-appropriate config with overrides applied."""
        base = cls.quick(seed=seed) if scale == "quick" else cls.paper(seed=seed)
        if routes_per_length is not None:
            overrides["routes_per_length"] = routes_per_length
        if overrides:
            import dataclasses

            base = dataclasses.replace(base, **overrides)
        return base

    # --- Figure 6 ------------------------------------------------------
    result1 = run_experiment1(config_for(Experiment1Config))
    out.write("## Figure 6 (Experiment 1, lab)\n\n")
    out.write("| route class | reproduced band (ps) | paper band (ps) |\n")
    out.write("|---|---|---|\n")
    for length, (lo, hi) in sorted(FIG6_PAPER_BANDS.items()):
        ours = result1.magnitude_band(length)
        out.write(f"| {length:.0f} ps | ({ours[0]:.2f}, {ours[1]:.2f}) "
                  f"| ({lo}, {hi}) |\n")
    crossings = result1.recovery_crossing_hours()
    if crossings:
        out.write(
            f"\nburn-1 recovery crossings: median "
            f"{np.median(crossings):.0f} h (paper: 30-50 h)\n"
        )
    out.write(f"\nbit recovery: {result1.recovery_score}\n\n")

    # --- Figure 7 ------------------------------------------------------
    result2 = run_experiment2(config_for(Experiment2Config))
    out.write("## Figure 7 (Experiment 2, cloud Threat Model 1)\n\n")
    out.write("| route class | reproduced band (ps) | paper band (ps) |\n")
    out.write("|---|---|---|\n")
    for length, paper_max in sorted(FIG7_PAPER_MAX.items()):
        ours = result2.magnitude_band(length)
        out.write(f"| {length:.0f} ps | ({ours[0]:.3f}, {ours[1]:.3f}) "
                  f"| (0, {paper_max}) |\n")
    out.write(f"\nType A recovery: {result2.recovery_score}\n")
    out.write(f"accuracy by length: "
              f"{_fmt_accuracy(result2.accuracy_by_length())}\n\n")

    # --- Figure 8 ------------------------------------------------------
    result3 = run_experiment3(config_for(Experiment3Config))
    out.write("## Figure 8 (Experiment 3, cloud Threat Model 2)\n\n")
    out.write(f"boards probed (flash attack): {result3.devices_probed}\n\n")
    out.write(f"Type B recovery: {result3.recovery_score}\n")
    out.write(f"accuracy by length: "
              f"{_fmt_accuracy(result3.accuracy_by_length())}\n\n")
    out.write(
        "paper's qualitative claim: former burn-1 routes visibly "
        "recover while burn-0 routes stay flat; accuracy grows with "
        "route length.\n"
    )
    return out.getvalue()


def _fmt_accuracy(accuracy: dict) -> str:
    return ", ".join(
        f"{length:.0f} ps: {value:.2f}"
        for length, value in sorted(accuracy.items())
    )
