"""Routes: physically-placed chains of routing segments.

A :class:`SegmentId` names one physical segment instance on the die (the
same id always refers to the same transistors, across all designs ever
loaded -- this identity is what makes data remanence possible).  A
:class:`Route` is an ordered chain of segment ids plus bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import RoutingError
from repro.fabric.geometry import Coordinate
from repro.fabric.segments import SegmentKind, spec_for


@dataclass(frozen=True, order=True)
class SegmentId:
    """Identity of one physical routing segment.

    Attributes:
        kind: the wire class.
        origin: tile coordinate where the segment starts.
        track: which of the parallel tracks of this class at the origin.
    """

    kind: SegmentKind
    origin: Coordinate
    track: int

    def __str__(self) -> str:
        return f"{self.kind.value}@{self.origin}.{self.track}"


@dataclass(frozen=True)
class Route:
    """An ordered chain of physical segments forming one net's wiring.

    Attributes:
        name: net/route label (e.g. ``"burn[17]"``).
        segments: the ordered segment ids.
        nominal_delay_ps: the sum of library delays (before per-die
            process variation), cached for convenience.
    """

    name: str
    segments: tuple[SegmentId, ...]
    nominal_delay_ps: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.segments:
            raise RoutingError(f"route {self.name!r} has no segments")
        if self.nominal_delay_ps == 0.0:
            total = sum(spec_for(seg.kind).delay_ps for seg in self.segments)
            object.__setattr__(self, "nominal_delay_ps", total)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[SegmentId]:
        return iter(self.segments)

    @property
    def switch_count(self) -> int:
        """Total programmable switches along the route."""
        return sum(spec_for(seg.kind).switch_count for seg in self.segments)

    @property
    def endpoints(self) -> tuple[Coordinate, Coordinate]:
        """Origin of the first and of the last segment."""
        return self.segments[0].origin, self.segments[-1].origin

    def overlaps(self, other: "Route") -> bool:
        """Whether two routes share any physical segment."""
        return bool(set(self.segments) & set(other.segments))


def validate_disjoint(routes: Iterable[Route]) -> None:
    """Raise :class:`RoutingError` if any two routes share a segment.

    Real bitstreams cannot drive one wire from two sources; the builders
    of the Target and Measure designs call this before compiling.
    """
    seen: dict[SegmentId, str] = {}
    for route in routes:
        for segment in route.segments:
            owner = seen.get(segment)
            if owner is not None and owner != route.name:
                raise RoutingError(
                    f"segment {segment} used by both {owner!r} and {route.name!r}"
                )
            seen[segment] = route.name
