"""Routers: delay-targeting serpentine routes and maze routing.

Two routers serve two needs:

* :class:`DelayTargetRouter` realises the experiments' "a route with
  1000/2000/5000/10000 ps of delay" specification: it composes wire
  segments (preferring LONG lines, as the vendor router does for long
  connections) into a serpentine chain starting at a given tile, snaking
  within the die, and avoiding segments already claimed by other routes.
* :class:`MazeRouter` routes arbitrary netlist connections point-to-point
  over the interconnect graph (Dijkstra on delay), used by the OpenTitan
  route-length study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.errors import RoutingError
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import SegmentKind, spec_for

#: Wire classes usable for general routing, longest reach first.
_GENERAL_CLASSES = (
    SegmentKind.LONG,
    SegmentKind.QUAD,
    SegmentKind.DOUBLE,
    SegmentKind.SINGLE,
    SegmentKind.LOCAL,
)


def compose_delay(
    target_delay_ps: float, tolerance: float = 0.05
) -> list[SegmentKind]:
    """Choose a segment mix whose nominal delay approximates a target.

    Greedy over wire classes from longest to shortest reach, mirroring
    how physical-design tools build long connections.  Raises
    :class:`RoutingError` if the achievable delay misses the target by
    more than ``tolerance`` (fractional).
    """
    if target_delay_ps <= 0.0:
        raise RoutingError(f"target delay must be positive, got {target_delay_ps}")
    chosen: list[SegmentKind] = []
    remaining = target_delay_ps
    for kind in _GENERAL_CLASSES:
        delay = spec_for(kind).delay_ps
        while remaining >= delay - spec_for(SegmentKind.LOCAL).delay_ps / 2.0:
            chosen.append(kind)
            remaining -= delay
    if not chosen:
        chosen.append(SegmentKind.LOCAL)
        remaining -= spec_for(SegmentKind.LOCAL).delay_ps
    achieved = sum(spec_for(kind).delay_ps for kind in chosen)
    error = abs(achieved - target_delay_ps) / target_delay_ps
    if error > tolerance:
        raise RoutingError(
            f"cannot compose {target_delay_ps} ps within {tolerance:.0%}: "
            f"best achievable {achieved} ps"
        )
    return chosen


class _SerpentineCursor:
    """Walks a serpentine over the die: up a column, over, down the next.

    Horizontal motion bounces off the die edges, so arbitrarily long
    routes stay on-die; physical disjointness between revisited origins
    is handled by track allocation.
    """

    def __init__(self, grid: FabricGrid, anchor: Coordinate) -> None:
        if grid.columns < 2:
            raise RoutingError("serpentine routing needs at least two columns")
        self._grid = grid
        self._x = anchor.x
        self._y = anchor.y
        self._y_dir = 1
        self._x_dir = 1

    def advance(self, span: int) -> Coordinate:
        """Return the next segment origin and step the cursor by ``span``."""
        top = self._grid.rows - 1
        bottom = self._grid.shell_rows
        if self._y_dir > 0 and self._y + span > top:
            self._step_column()
            self._y_dir = -1
        elif self._y_dir < 0 and self._y - span < bottom:
            self._step_column()
            self._y_dir = 1
        origin = Coordinate(self._x, self._y)
        self._y += self._y_dir * span
        return origin

    def _step_column(self) -> None:
        nxt = self._x + self._x_dir
        if not 0 <= nxt < self._grid.columns:
            self._x_dir = -self._x_dir
            nxt = self._x + self._x_dir
        self._x = nxt


@dataclass
class DelayTargetRouter:
    """Builds serpentine routes of a requested nominal delay.

    The router walks up and down a column band starting from the route's
    anchor tile, claiming one segment per step and switching to the next
    column when it reaches the die edge.  A shared ``occupied`` set keeps
    simultaneously-built routes physically disjoint.
    """

    grid: FabricGrid
    tracks_per_class: int = 8
    occupied: set = field(default_factory=set)

    def route(
        self,
        name: str,
        anchor: Coordinate,
        target_delay_ps: float,
        tolerance: float = 0.05,
    ) -> Route:
        """Build a route named ``name`` anchored at ``anchor``.

        The anchor must be user-visible.  The achieved nominal delay is
        within ``tolerance`` of the target.
        """
        self.grid.require_user_visible(anchor)
        kinds = compose_delay(target_delay_ps, tolerance)
        segments: list[SegmentId] = []
        cursor = _SerpentineCursor(self.grid, anchor)
        for kind in kinds:
            span = max(spec_for(kind).span_tiles, 1)
            origin = cursor.advance(span)
            segments.append(self._claim(kind, origin))
        route = Route(name=name, segments=tuple(segments))
        return route

    def _claim(self, kind: SegmentKind, origin: Coordinate) -> SegmentId:
        """Claim a free track of ``kind`` at ``origin``."""
        for track in range(self.tracks_per_class):
            candidate = SegmentId(kind=kind, origin=origin, track=track)
            if candidate not in self.occupied:
                self.occupied.add(candidate)
                return candidate
        raise RoutingError(
            f"all {self.tracks_per_class} tracks of {kind.value} at "
            f"{origin} are occupied"
        )


class MazeRouter:
    """Dijkstra maze router over the interconnect graph.

    Nodes are tile coordinates, edges are wire-class hops in the four
    cardinal directions weighted by delay.  Used for point-to-point
    netlist routing (the OpenTitan study); returns a :class:`Route` whose
    physical segments are allocated from the same track space as
    :class:`DelayTargetRouter`.
    """

    _ROUTE_CLASSES = (
        SegmentKind.SINGLE,
        SegmentKind.DOUBLE,
        SegmentKind.QUAD,
        SegmentKind.LONG,
    )

    def __init__(self, grid: FabricGrid, tracks_per_class: int = 8) -> None:
        self.grid = grid
        self.tracks_per_class = tracks_per_class
        self.occupied: set = set()
        self._graph = self._build_graph()

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for x in range(self.grid.columns):
            for y in range(self.grid.shell_rows, self.grid.rows):
                graph.add_node((x, y))
        for x in range(self.grid.columns):
            for y in range(self.grid.shell_rows, self.grid.rows):
                for kind in self._ROUTE_CLASSES:
                    spec = spec_for(kind)
                    span = spec.span_tiles
                    for dx, dy in ((span, 0), (-span, 0), (0, span), (0, -span)):
                        nx_, ny_ = x + dx, y + dy
                        if (nx_, ny_) in graph:
                            graph.add_edge(
                                (x, y),
                                (nx_, ny_),
                                weight=spec.delay_ps,
                                kind=kind,
                            )
        return graph

    def route(self, name: str, source: Coordinate, sink: Coordinate) -> Route:
        """Route from ``source`` to ``sink``, minimising delay.

        Adds a LOCAL pin hop at each end, as every net must enter and
        leave the interconnect through the tile's local switchbox.
        """
        self.grid.require_user_visible(source)
        self.grid.require_user_visible(sink)
        segments: list[SegmentId] = [self._claim(SegmentKind.LOCAL, source)]
        if source != sink:
            try:
                path = nx.dijkstra_path(
                    self._graph, (source.x, source.y), (sink.x, sink.y)
                )
            except nx.NetworkXNoPath as exc:
                raise RoutingError(f"no path from {source} to {sink}") from exc
            for (x1, y1), (x2, y2) in zip(path, path[1:]):
                kind = self._graph.edges[(x1, y1), (x2, y2)]["kind"]
                segments.append(self._claim(kind, Coordinate(x1, y1)))
        segments.append(self._claim(SegmentKind.LOCAL, sink))
        return Route(name=name, segments=tuple(segments))

    def _claim(self, kind: SegmentKind, origin: Coordinate) -> SegmentId:
        for track in range(self.tracks_per_class):
            candidate = SegmentId(kind=kind, origin=origin, track=track)
            if candidate not in self.occupied:
                self.occupied.add(candidate)
                return candidate
        raise RoutingError(
            f"routing congestion: no free {kind.value} track at {origin}"
        )


def compose_displacement(dx: int, dy: int) -> list[SegmentKind]:
    """Segment kinds covering a tile displacement, longest-reach first.

    The greedy longest-first decomposition per axis is what a
    delay-minimising maze route over the uncongested interconnect graph
    produces (longer wire classes cover more tiles per picosecond), plus
    the LOCAL pin hop at each end.
    """
    kinds: list[SegmentKind] = [SegmentKind.LOCAL]
    for distance in (abs(dx), abs(dy)):
        remaining = distance
        for kind in (
            SegmentKind.LONG,
            SegmentKind.QUAD,
            SegmentKind.DOUBLE,
            SegmentKind.SINGLE,
        ):
            span = spec_for(kind).span_tiles
            while remaining >= span:
                kinds.append(kind)
                remaining -= span
    kinds.append(SegmentKind.LOCAL)
    return kinds


def displacement_delay_ps(dx: int, dy: int) -> float:
    """Nominal route delay for a tile displacement."""
    return float(
        sum(spec_for(kind).delay_ps for kind in compose_displacement(dx, dy))
    )


def total_nominal_delay(routes: Sequence[Route]) -> float:
    """Sum of nominal delays over several routes."""
    return float(sum(route.nominal_delay_ps for route in routes))


def anchor_grid(
    grid: FabricGrid,
    count: int,
    start: Optional[Coordinate] = None,
    column_stride: int = 2,
) -> list[Coordinate]:
    """Evenly-spaced anchor tiles for a bank of routes.

    Routes built by :class:`DelayTargetRouter` snake upward from their
    anchors; spacing anchors ``column_stride`` columns apart keeps large
    route banks from exhausting track capacity.
    """
    if count <= 0:
        raise RoutingError(f"count must be positive, got {count}")
    base = start or Coordinate(0, grid.shell_rows)
    anchors = []
    x = base.x
    for _ in range(count):
        if x >= grid.columns:
            raise RoutingError("anchor bank exceeds die width")
        anchors.append(Coordinate(x, base.y))
        x += column_stride
    return anchors
