"""Netlists: cells, nets and their runtime activity.

A design is a set of cells (logic elements) connected by nets.  For the
BTI simulation what matters about a net is its *activity* while the
design runs: a constant logic value (the stress pattern the paper
exploits), toggling activity (the arithmetic-heavy heater circuits), or
undriven.  Net routes bind the activity to physical segments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx

from repro.errors import ConfigurationError, FabricError
from repro.fabric.routing import Route


class CellType(enum.Enum):
    """Logic-resource classes a cell can occupy."""

    LUT = "lut"
    FLIP_FLOP = "ff"
    CARRY8 = "carry8"
    DSP48 = "dsp48"
    BRAM = "bram"
    BUFFER = "buf"
    PORT = "port"
    #: A LUT configured as an inverter inside a combinational loop --
    #: included so the DRC has something to catch in ring oscillators.
    INVERTER = "inv"


#: Cell types whose output combinationally depends on their inputs.
COMBINATIONAL_TYPES = frozenset(
    {CellType.LUT, CellType.CARRY8, CellType.BUFFER, CellType.INVERTER}
)


@dataclass(frozen=True)
class Cell:
    """One logic element instance."""

    name: str
    cell_type: CellType

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("cell name must be non-empty")


class NetActivity(enum.Enum):
    """Runtime behaviour of a net while the design executes."""

    #: Held at a constant logic value (see ``Net.static_value``).
    STATIC = "static"
    #: Toggling with some duty cycle (see ``Net.duty_high``).
    TOGGLING = "toggling"
    #: Configured but undriven.
    FLOATING = "floating"


@dataclass(frozen=True)
class Net:
    """One net: a driver, sinks, activity, and (once routed) a route.

    Attributes:
        name: net label.
        driver: driving cell name.
        sinks: driven cell names.
        activity: runtime behaviour class.
        static_value: the held value for STATIC nets (0 or 1).
        duty_high: fraction of time at logic 1 for TOGGLING nets.
        route: physical wiring, populated by the router.
    """

    name: str
    driver: str
    sinks: tuple[str, ...]
    activity: NetActivity = NetActivity.FLOATING
    static_value: Optional[int] = None
    duty_high: float = 0.5
    route: Optional[Route] = None

    def __post_init__(self) -> None:
        if self.activity is NetActivity.STATIC:
            if self.static_value not in (0, 1):
                raise ConfigurationError(
                    f"static net {self.name!r} needs static_value 0 or 1, "
                    f"got {self.static_value!r}"
                )
        if not 0.0 <= self.duty_high <= 1.0:
            raise ConfigurationError(
                f"duty_high must be in [0, 1], got {self.duty_high}"
            )

    def with_route(self, route: Route) -> "Net":
        """A copy of this net bound to a physical route."""
        return Net(
            name=self.name,
            driver=self.driver,
            sinks=self.sinks,
            activity=self.activity,
            static_value=self.static_value,
            duty_high=self.duty_high,
            route=route,
        )

    def with_static_value(self, value: int) -> "Net":
        """A copy of this net holding a different constant value."""
        return Net(
            name=self.name,
            driver=self.driver,
            sinks=self.sinks,
            activity=NetActivity.STATIC,
            static_value=value,
            duty_high=self.duty_high,
            route=self.route,
        )


@dataclass
class Netlist:
    """A design's cells and nets."""

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)
    nets: dict[str, Net] = field(default_factory=dict)

    def add_cell(self, cell: Cell) -> Cell:
        """Register a cell; names must be unique."""
        if cell.name in self.cells:
            raise FabricError(f"duplicate cell name {cell.name!r}")
        self.cells[cell.name] = cell
        return cell

    def add_net(self, net: Net) -> Net:
        """Register a net; driver and sinks must exist."""
        if net.name in self.nets:
            raise FabricError(f"duplicate net name {net.name!r}")
        if net.driver not in self.cells:
            raise FabricError(
                f"net {net.name!r} driven by unknown cell {net.driver!r}"
            )
        for sink in net.sinks:
            if sink not in self.cells:
                raise FabricError(
                    f"net {net.name!r} drives unknown cell {sink!r}"
                )
        self.nets[net.name] = net
        return net

    def replace_net(self, net: Net) -> None:
        """Replace an existing net (e.g. after routing)."""
        if net.name not in self.nets:
            raise FabricError(f"no net named {net.name!r} to replace")
        self.nets[net.name] = net

    def cells_of_type(self, cell_type: CellType) -> list[Cell]:
        """All cells of one resource class."""
        return [c for c in self.cells.values() if c.cell_type is cell_type]

    def combinational_graph(self) -> nx.DiGraph:
        """Directed graph of combinational cell-to-cell dependencies.

        Edges run driver -> sink, restricted to combinational cell
        types; flip-flops break the path.  Used by the DRC's
        ring-oscillator scan.
        """
        graph = nx.DiGraph()
        for cell in self.cells.values():
            graph.add_node(cell.name)
        for net in self.nets.values():
            driver_cell = self.cells[net.driver]
            if driver_cell.cell_type not in COMBINATIONAL_TYPES:
                continue
            for sink in net.sinks:
                if self.cells[sink].cell_type in COMBINATIONAL_TYPES:
                    graph.add_edge(net.driver, sink)
        return graph

    def static_nets(self) -> list[Net]:
        """Nets held at a constant value while the design runs."""
        return [n for n in self.nets.values() if n.activity is NetActivity.STATIC]

    def toggling_nets(self) -> list[Net]:
        """Nets with switching activity while the design runs."""
        return [n for n in self.nets.values() if n.activity is NetActivity.TOGGLING]

    def routed_nets(self) -> list[Net]:
        """Nets that have been bound to physical routes."""
        return [n for n in self.nets.values() if n.route is not None]

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Absorb another netlist, optionally prefixing its names."""
        for cell in other.cells.values():
            self.add_cell(Cell(name=prefix + cell.name, cell_type=cell.cell_type))
        for net in other.nets.values():
            renamed = Net(
                name=prefix + net.name,
                driver=prefix + net.driver,
                sinks=tuple(prefix + s for s in net.sinks),
                activity=net.activity,
                static_value=net.static_value,
                duty_high=net.duty_high,
                route=net.route,
            )
            self.add_net(renamed)
