"""Part descriptors for the simulated devices.

Two parts appear in the paper: the AWS F1 card's Virtex UltraScale+
(VU9P) and the ZCU102 development board's Zynq UltraScale+ (ZU9EG).
Grid sizes here are scaled-down stand-ins (the experiments use a few
hundred tiles); what matters is the resource mix, the carry-chain bin
delay and the platform power cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fabric.geometry import FabricGrid


@dataclass(frozen=True)
class PartDescriptor:
    """Static description of an FPGA part.

    Attributes:
        name: marketing part name.
        columns, rows: tile grid dimensions.
        shell_rows: rows reserved for the provider shell (AWS F1 only).
        tracks_per_class: parallel routing tracks of each wire class per
            tile (bounds routing congestion).
        carry_bin_ps: delay of one carry-chain element; the paper's
            TDC conversion constant of 2.8 ps/bit for UltraScale+.
        tdc_chain_length: carry-chain elements per TDC (64 in the paper).
        power_cap_watts: platform power limit (AWS F1 enforces 85 W).
        dsp_count: DSP blocks available to tenants.
    """

    name: str
    columns: int
    rows: int
    shell_rows: int
    tracks_per_class: int
    carry_bin_ps: float
    tdc_chain_length: int
    power_cap_watts: float
    dsp_count: int

    def __post_init__(self) -> None:
        if self.carry_bin_ps <= 0.0:
            raise ConfigurationError("carry_bin_ps must be positive")
        if self.tdc_chain_length <= 0:
            raise ConfigurationError("tdc_chain_length must be positive")
        if self.power_cap_watts <= 0.0:
            raise ConfigurationError("power_cap_watts must be positive")

    def make_grid(self) -> FabricGrid:
        """Instantiate the tile grid for this part."""
        return FabricGrid(self.columns, self.rows, shell_rows=self.shell_rows)


#: The AWS F1 card's FPGA (Experiments 2 and 3).
VIRTEX_ULTRASCALE_PLUS = PartDescriptor(
    name="xcvu9p",
    columns=64,
    rows=96,
    shell_rows=16,
    tracks_per_class=12,
    carry_bin_ps=2.8,
    tdc_chain_length=64,
    power_cap_watts=85.0,
    dsp_count=6840,
)

#: The ZCU102 development board's FPGA (Experiment 1).
ZYNQ_ULTRASCALE_PLUS = PartDescriptor(
    name="xczu9eg",
    columns=48,
    rows=64,
    shell_rows=0,
    tracks_per_class=12,
    carry_bin_ps=2.8,
    tdc_chain_length=64,
    power_cap_watts=40.0,
    dsp_count=2520,
)
