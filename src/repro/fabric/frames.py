"""Frame-level configuration memory.

Real FPGA bitstreams are a sequence of *configuration frames*, each
addressing a column-slice of the device.  This module models the layer
the platform's logical protections act on:

* :func:`compile_frames` renders a compiled design into per-column
  frames.  Crucially, frames encode design *contents* -- including the
  values of constant-driven nets -- which is why marketplace AFIs are
  sealed and why tenant **readback is disabled** on cloud platforms
  (:func:`readback` enforces that).  The pentimento attack's whole
  point is that the analog side channel recovers what the forbidden
  readback would have shown.
* :func:`diff_frames` reports which columns differ between two images
  (how an attacker with two related public bitstreams would find the
  key's columns -- an Assumption 1 channel).
* :func:`extract_partial` / :func:`apply_partial` implement partial
  reconfiguration over a column window, the mechanism behind the
  relocation/wear-levelling mitigation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import AccessError, ConfigurationError, FabricError
from repro.fabric.bitstream import Bitstream
from repro.fabric.netlist import Net, NetActivity, Netlist

#: 32-bit words per configuration frame.
FRAME_WORDS = 93


@dataclass(frozen=True)
class FrameAddress:
    """One frame's address: the column it configures plus a minor index."""

    column: int
    minor: int

    def __post_init__(self) -> None:
        if self.column < 0 or self.minor < 0:
            raise ConfigurationError("frame address components must be >= 0")


@dataclass(frozen=True)
class ConfigurationImage:
    """A design rendered to frames."""

    design_name: str
    frames: dict

    def columns(self) -> set[int]:
        """Device columns this image configures."""
        return {address.column for address in self.frames}

    def crc(self) -> str:
        """Whole-image checksum (load-time integrity check)."""
        digest = hashlib.sha256()
        for address in sorted(self.frames, key=lambda a: (a.column, a.minor)):
            digest.update(f"{address.column}:{address.minor}".encode())
            digest.update(self.frames[address].tobytes())
        return digest.hexdigest()[:16]


def _frame_word(*parts) -> np.ndarray:
    """Deterministic frame words from structural identifiers."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return np.frombuffer(digest[:16], dtype=np.uint8)


def compile_frames(bitstream: Bitstream) -> ConfigurationImage:
    """Render a compiled design into configuration frames.

    Each placed cell and each routed segment contributes words to its
    column's frame; statically-driven nets additionally encode their
    *held value* -- the Type A secret is literally in the bits.
    """
    columns: dict[int, list] = {}

    def touch(column: int, *parts) -> None:
        """Append words to a column's frame payload."""
        columns.setdefault(column, []).append(_frame_word(*parts))

    for name, site in bitstream.placement.sites.items():
        touch(site.coord.x, "cell", name, site.cell_type.value, site.index,
              site.coord.y)
    for net in bitstream.netlist.nets.values():
        if net.route is None:
            continue
        for segment in net.route:
            touch(segment.origin.x, "pip", segment.kind.value,
                  segment.origin.y, segment.track)
        if net.activity is NetActivity.STATIC:
            anchor = net.route.segments[0].origin
            touch(anchor.x, "const", net.name, int(net.static_value))
    frames = {}
    for column, words in columns.items():
        payload = np.concatenate(words)
        # Pack into fixed-size frames.
        frame_bytes = FRAME_WORDS * 4
        padded = np.zeros(
            ((payload.size + frame_bytes - 1) // frame_bytes) * frame_bytes,
            dtype=np.uint8,
        )
        padded[: payload.size] = payload
        for minor in range(padded.size // frame_bytes):
            frames[FrameAddress(column, minor)] = padded[
                minor * frame_bytes: (minor + 1) * frame_bytes
            ].copy()
    return ConfigurationImage(design_name=bitstream.name, frames=frames)


def readback(bitstream: Bitstream, platform_access: bool = False) -> ConfigurationImage:
    """Read configuration memory back out of a loaded design.

    Cloud platforms disable tenant readback precisely because frames
    encode design contents; only the platform itself may read them.
    The pentimento attack exists because this logical protection cannot
    reach the analog domain.
    """
    if not platform_access:
        raise AccessError(
            "configuration readback is disabled for tenants on this "
            "platform (it would expose design contents)"
        )
    return compile_frames(bitstream)


def diff_frames(
    a: ConfigurationImage, b: ConfigurationImage
) -> list[FrameAddress]:
    """Frame addresses whose contents differ between two images.

    Two builds of the same design differing only in a netlist constant
    differ only in the frames of the columns holding that constant --
    which localises the secret's routes (an Assumption 1 channel when a
    vendor ships multiple related public bitstreams).
    """
    addresses = set(a.frames) | set(b.frames)
    changed = []
    for address in sorted(addresses, key=lambda x: (x.column, x.minor)):
        left = a.frames.get(address)
        right = b.frames.get(address)
        if left is None or right is None or not np.array_equal(left, right):
            changed.append(address)
    return changed


@dataclass(frozen=True)
class PartialBitstream:
    """A reconfigurable region's worth of design: frames + netlist."""

    name: str
    columns: frozenset
    netlist: Netlist
    image: ConfigurationImage


def extract_partial(
    bitstream: Bitstream, columns: Iterable[int]
) -> PartialBitstream:
    """Carve the design content of a column window into a partial image.

    Takes the nets whose routes stay entirely inside the window (a
    legal reconfigurable partition may not cut live routes) and the
    cells placed there.
    """
    window = frozenset(int(c) for c in columns)
    if not window:
        raise ConfigurationError("partial window needs at least one column")
    partial_netlist = Netlist(name=f"{bitstream.name}-partial")
    kept_cells = set()
    for net in bitstream.netlist.nets.values():
        if net.route is None:
            continue
        touched = {segment.origin.x for segment in net.route}
        if touched <= window:
            for cell_name in (net.driver, *net.sinks):
                if cell_name not in kept_cells:
                    kept_cells.add(cell_name)
                    partial_netlist.add_cell(
                        bitstream.netlist.cells[cell_name]
                    )
            partial_netlist.add_net(net)
    full_image = compile_frames(bitstream)
    frames = {
        address: words
        for address, words in full_image.frames.items()
        if address.column in window
    }
    return PartialBitstream(
        name=f"{bitstream.name}-partial",
        columns=window,
        netlist=partial_netlist,
        image=ConfigurationImage(
            design_name=f"{bitstream.name}-partial", frames=frames
        ),
    )


def apply_partial(base: Bitstream, partial: PartialBitstream) -> Bitstream:
    """Merge a partial image over a running design.

    Nets of the base design routed entirely inside the window are
    replaced by the partial's; everything outside keeps running
    untouched (the semantics that make relocation/wear-levelling cheap).
    """
    merged = Netlist(name=f"{base.name}+{partial.name}")
    replaced_net_names = set(partial.netlist.nets)
    for cell in base.netlist.cells.values():
        merged.add_cell(cell)
    for net in base.netlist.nets.values():
        if net.route is not None:
            touched = {segment.origin.x for segment in net.route}
            if touched <= partial.columns and net.name in replaced_net_names:
                continue  # superseded by the partial
        if net.name in replaced_net_names and net.route is None:
            continue
        merged_net = net
        if net.name in merged.nets:
            raise FabricError(f"net collision merging {net.name!r}")
        merged.add_net(merged_net)
    for cell in partial.netlist.cells.values():
        if cell.name not in merged.cells:
            merged.add_cell(cell)
    for net in partial.netlist.nets.values():
        if net.name in merged.nets:
            merged.replace_net(net)
        else:
            merged.add_net(net)
    return Bitstream.compile(merged, base.placement)
