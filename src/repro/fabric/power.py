"""Design power estimation.

The cloud provider enforces a power cap (85 W on AWS F1), and power sets
the on-chip temperature through :mod:`repro.fabric.thermal`, which in
turn accelerates BTI -- the paper's Target design deliberately burns
63 W in DSP-heavy arithmetic to heat the die.

The estimate is a simple activity-weighted sum over resources: adequate
because only the total (for the cap and the thermal model) matters here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fabric.netlist import CellType, NetActivity, Netlist

#: Static leakage of the configured die, watts.
STATIC_POWER_WATTS = 3.0

#: Dynamic power per active cell at full toggle rate, watts.
DYNAMIC_POWER_PER_CELL: dict[CellType, float] = {
    CellType.LUT: 0.00035,
    CellType.FLIP_FLOP: 0.0002,
    CellType.CARRY8: 0.0005,
    CellType.DSP48: 0.015,
    CellType.BRAM: 0.004,
    CellType.BUFFER: 0.0002,
    CellType.PORT: 0.0,
    CellType.INVERTER: 0.0008,
}


@dataclass(frozen=True)
class PowerReport:
    """Breakdown of a design's estimated power draw."""

    static_watts: float
    dynamic_watts: float

    @property
    def total_watts(self) -> float:
        """Static plus dynamic power."""
        return self.static_watts + self.dynamic_watts


def estimate_power(netlist: Netlist, activity_factor: float = 1.0) -> PowerReport:
    """Estimate power for a netlist at a global activity scaling.

    Cells driven only by STATIC nets consume no dynamic power; all other
    cells are charged their full per-cell dynamic figure scaled by
    ``activity_factor``.
    """
    if not 0.0 <= activity_factor <= 1.0:
        raise ConfigurationError(
            f"activity_factor must be in [0, 1], got {activity_factor}"
        )
    static_inputs: set[str] = set()
    active_inputs: set[str] = set()
    for net in netlist.nets.values():
        targets = set(net.sinks) | {net.driver}
        if net.activity is NetActivity.TOGGLING:
            active_inputs |= targets
        elif net.activity is NetActivity.STATIC:
            static_inputs |= targets
    dynamic = 0.0
    for cell in netlist.cells.values():
        if cell.name in active_inputs:
            dynamic += DYNAMIC_POWER_PER_CELL[cell.cell_type]
    return PowerReport(
        static_watts=STATIC_POWER_WATTS,
        dynamic_watts=dynamic * activity_factor,
    )
