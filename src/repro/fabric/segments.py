"""Programmable-routing segment library.

FPGA routes are chains of pre-fabricated wire segments of graded reach
joined by programmable switches (PIPs).  Each switch is a pass-transistor
structure that accumulates BTI while the route holds a static value; the
wire itself does not age.  Longer wire classes cover more delay per
switch, which is why the paper's measured burn-in magnitude grows
slightly sub-linearly with route delay (a 10000 ps route built from LONG
wires has ~46 stressed switches, not 60).

Delays are loosely modelled on UltraScale+ interconnect timing; what
matters for the reproduction is the ratio of delay to switch count, which
sets the Figure 6/7 magnitude-vs-length relationship.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.physics.constants import PS_PER_SWITCH_AT_REFERENCE


class SegmentKind(enum.Enum):
    """Wire classes of the interconnect, by reach."""

    #: Intra-tile hop (bounce) -- LUT input pin connections.
    LOCAL = "local"
    #: Adjacent-tile wire.
    SINGLE = "single"
    #: Two-tile wire.
    DOUBLE = "double"
    #: Four-tile wire.
    QUAD = "quad"
    #: Twelve-tile long line.
    LONG = "long"
    #: One element of a CARRY8 chain (used by the TDC delay line).
    CARRY = "carry"


@dataclass(frozen=True)
class SegmentSpec:
    """Static description of one wire class.

    Attributes:
        kind: the wire class.
        delay_ps: nominal propagation delay through the segment,
            including its entry switch.
        switch_count: programmable switch transistors that see the held
            value (and therefore age).
        span_tiles: tile reach, for the maze router's geometry.
    """

    kind: SegmentKind
    delay_ps: float
    switch_count: int
    span_tiles: int

    def __post_init__(self) -> None:
        if self.delay_ps <= 0.0:
            raise ConfigurationError(f"delay must be positive, got {self.delay_ps}")
        if self.switch_count < 0:
            raise ConfigurationError(
                f"switch_count must be >= 0, got {self.switch_count}"
            )
        if self.span_tiles < 0:
            raise ConfigurationError(
                f"span_tiles must be >= 0, got {self.span_tiles}"
            )

    @property
    def burn_amplitude_ps(self) -> float:
        """Reference burn-in delta-ps contributed by this segment."""
        return self.switch_count * PS_PER_SWITCH_AT_REFERENCE


SEGMENT_LIBRARY: dict[SegmentKind, SegmentSpec] = {
    SegmentKind.LOCAL: SegmentSpec(SegmentKind.LOCAL, delay_ps=45.0, switch_count=1, span_tiles=0),
    SegmentKind.SINGLE: SegmentSpec(SegmentKind.SINGLE, delay_ps=120.0, switch_count=2, span_tiles=1),
    SegmentKind.DOUBLE: SegmentSpec(SegmentKind.DOUBLE, delay_ps=170.0, switch_count=2, span_tiles=2),
    SegmentKind.QUAD: SegmentSpec(SegmentKind.QUAD, delay_ps=260.0, switch_count=2, span_tiles=4),
    SegmentKind.LONG: SegmentSpec(SegmentKind.LONG, delay_ps=450.0, switch_count=2, span_tiles=12),
    SegmentKind.CARRY: SegmentSpec(SegmentKind.CARRY, delay_ps=2.8, switch_count=0, span_tiles=0),
}


def spec_for(kind: SegmentKind) -> SegmentSpec:
    """Look up the spec of a wire class."""
    return SEGMENT_LIBRARY[kind]
