"""Bitstreams: compiled design images, including sealed marketplace AFIs.

A :class:`Bitstream` is the loadable artefact produced from a netlist and
placement.  A :class:`SealedBitstream` wraps one for marketplace
distribution: the platform can load it, but a customer cannot inspect the
netlist or the static net values -- modelling the AWS guarantee that "no
FPGA internal design code is exposed" through an AFI.

What a sealed image *cannot* hide is physics: the routes still exist on
the die, and Threat Model 1 recovers their held values through BTI.  The
:class:`DesignSkeleton` captures Assumption 1 -- the attacker knows the
placement/routing structure (from public sources, being the original
author, or a leak) but not the data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AccessError, ConfigurationError
from repro.fabric.netlist import NetActivity, Netlist
from repro.fabric.placement import Placement
from repro.fabric.power import PowerReport, estimate_power
from repro.fabric.routing import Route

_bitstream_ids = itertools.count(1)


@dataclass(frozen=True)
class DesignSkeleton:
    """The physical structure of a design, without its contents.

    Maps net names to their physical routes, and records *which* nets
    are statically driven (netlist structure shows that a constant
    drives a net; the constant's value stays hidden).  This is exactly
    what the paper's Assumption 1 grants the attacker: "the placement,
    or 'skeleton', of the targeted design routes ... but not the
    contents".
    """

    design_name: str
    routes: dict[str, Route]
    static_net_names: tuple[str, ...] = ()

    def route_for(self, net_name: str) -> Route:
        """The physical route of one net."""
        if net_name not in self.routes:
            raise ConfigurationError(
                f"skeleton of {self.design_name!r} has no net {net_name!r}"
            )
        return self.routes[net_name]

    @property
    def net_names(self) -> tuple[str, ...]:
        """All net names in the skeleton, sorted."""
        return tuple(sorted(self.routes))

    def static_routes(self) -> list[Route]:
        """The routes carrying design constants -- Threat Model 1's
        targets -- in stable (sorted) order."""
        return [self.routes[name] for name in sorted(self.static_net_names)]


@dataclass
class Bitstream:
    """A compiled, loadable design image."""

    netlist: Netlist
    placement: Placement
    power: PowerReport
    bitstream_id: int = field(default_factory=lambda: next(_bitstream_ids))

    @classmethod
    def compile(
        cls,
        netlist: Netlist,
        placement: Placement,
        activity_factor: float = 1.0,
    ) -> "Bitstream":
        """Produce a bitstream from a netlist and placement.

        Power is estimated at compile time (as vendor tools report it)
        and travels with the image for the provider's DRC.
        """
        power = estimate_power(netlist, activity_factor=activity_factor)
        return cls(netlist=netlist, placement=placement, power=power)

    @property
    def name(self) -> str:
        """The design's name."""
        return self.netlist.name

    def skeleton(self) -> DesignSkeleton:
        """Extract the design's physical structure (routes, no values).

        Routes are re-labelled with their net names so that skeleton
        consumers (sensor arrays, classifiers, scoring) all key on the
        same identifiers.
        """
        routes = {
            net.name: Route(
                name=net.name,
                segments=net.route.segments,
                nominal_delay_ps=net.route.nominal_delay_ps,
            )
            for net in self.netlist.nets.values()
            if net.route is not None
        }
        static_names = tuple(
            sorted(
                net.name
                for net in self.netlist.nets.values()
                if net.activity is NetActivity.STATIC and net.route is not None
            )
        )
        return DesignSkeleton(
            design_name=self.name, routes=routes, static_net_names=static_names
        )

    def static_values(self) -> dict[str, int]:
        """Net name -> held value, for all statically-driven nets.

        This is the Type A secret a marketplace publisher embeds; sealed
        images refuse to reveal it.
        """
        return {
            net.name: int(net.static_value)
            for net in self.netlist.nets.values()
            if net.activity is NetActivity.STATIC and net.static_value is not None
        }


class SealedBitstream:
    """A marketplace AFI: loadable, but opaque to the customer.

    Attributes:
        publisher: marketplace seller name.
        public_skeleton: whether the publisher's sources are public
            (OpenTitan- or FINN-style distribution), making the skeleton
            available to anyone.  When False, only someone who already
            has the skeleton (e.g. the original author) can target it.
    """

    def __init__(
        self,
        inner: Bitstream,
        publisher: str,
        public_skeleton: bool = False,
    ) -> None:
        self._inner = inner
        self.publisher = publisher
        self.public_skeleton = public_skeleton

    @property
    def name(self) -> str:
        """The design's name."""
        return self._inner.name

    @property
    def bitstream_id(self) -> int:
        """Unique id of the underlying image."""
        return self._inner.bitstream_id

    @property
    def power(self) -> PowerReport:
        """Power is platform-visible (needed for the DRC)."""
        return self._inner.power

    @property
    def netlist(self) -> Netlist:
        """Sealed: customers may not read the netlist."""
        raise AccessError(
            f"AFI {self.name!r} is sealed: netlist is not exposed to customers"
        )

    def static_values(self) -> dict[str, int]:
        """Sealed: customers may not read design constants."""
        raise AccessError(
            f"AFI {self.name!r} is sealed: design constants are not exposed"
        )

    def skeleton(self) -> DesignSkeleton:
        """The skeleton, if the publisher distributes public sources."""
        if not self.public_skeleton:
            raise AccessError(
                f"AFI {self.name!r} does not publish its skeleton"
            )
        return self._inner.skeleton()

    def unseal_for_platform(self) -> Bitstream:
        """Platform-internal access for loading onto a device.

        Only the cloud provider calls this; customer-facing code paths
        must never touch it (mirrored by the access-control tests).
        """
        return self._inner


AnyBitstream = (Bitstream, SealedBitstream)


def loadable(image: object) -> Optional[Bitstream]:
    """Resolve any bitstream-like object to a loadable plain bitstream."""
    if isinstance(image, Bitstream):
        return image
    if isinstance(image, SealedBitstream):
        return image.unseal_for_platform()
    return None
