"""Simulated UltraScale+-like FPGA fabric.

This package is the substitution for physical FPGA hardware.  It models
the parts of the architecture the paper's attack touches:

* a tile grid with CLB/DSP/BRAM columns (:mod:`repro.fabric.geometry`);
* the programmable-routing segment library -- single/double/quad/long
  wires joined by switch (PIP) transistors (:mod:`repro.fabric.segments`);
* routes as chains of segments, with both a delay-targeting router (the
  experiments specify routes by nominal delay) and a maze router over the
  grid for netlists (:mod:`repro.fabric.router`);
* logic resources, netlists, placement (:mod:`repro.fabric.resources`,
  :mod:`repro.fabric.netlist`, :mod:`repro.fabric.placement`);
* compiled bitstreams, including sealed marketplace images
  (:mod:`repro.fabric.bitstream`);
* the provider-side design rule checks (:mod:`repro.fabric.drc`);
* power estimation and the thermal model (:mod:`repro.fabric.power`,
  :mod:`repro.fabric.thermal`);
* :class:`~repro.fabric.device.FpgaDevice` -- one physical die whose
  per-segment BTI state **persists across design loads and wipes**.
"""

from repro.fabric.bitstream import Bitstream, SealedBitstream
from repro.fabric.device import FpgaDevice
from repro.fabric.geometry import Coordinate, FabricGrid, TileType
from repro.fabric.netlist import Cell, CellType, Net, Netlist, NetActivity
from repro.fabric.parts import PartDescriptor, VIRTEX_ULTRASCALE_PLUS, ZYNQ_ULTRASCALE_PLUS
from repro.fabric.router import DelayTargetRouter, MazeRouter
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import SegmentKind, SEGMENT_LIBRARY

__all__ = [
    "Bitstream",
    "Cell",
    "CellType",
    "Coordinate",
    "DelayTargetRouter",
    "FabricGrid",
    "FpgaDevice",
    "MazeRouter",
    "Net",
    "NetActivity",
    "Netlist",
    "PartDescriptor",
    "Route",
    "SEGMENT_LIBRARY",
    "SealedBitstream",
    "SegmentId",
    "SegmentKind",
    "TileType",
    "VIRTEX_ULTRASCALE_PLUS",
    "ZYNQ_ULTRASCALE_PLUS",
]
