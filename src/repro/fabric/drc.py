"""Provider-side design rule checks.

Cloud FPGA providers vet submitted designs.  Two checks matter for the
paper's story:

* **Self-oscillator scan** -- combinational loops (ring oscillators) are
  rejected, which is why RO-based aging sensors (the prior-work baseline,
  Section 7) cannot be deployed on AWS F1, while the TDC sensor "uses
  computational structures that are common in many FPGA designs" and
  passes.
* **Power cap** -- AWS F1 imposes an 85 W limit; the Target design's
  63 W sits under it.

The scan also rejects designs that place logic in the provider's shell
region.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import DesignRuleViolation
from repro.fabric.bitstream import Bitstream
from repro.fabric.geometry import FabricGrid
from repro.observability.metrics import registry

#: DRC results are pure functions of (bitstream, grid shape, power cap),
#: and experiments reload the same few compiled images hundreds of times
#: (every Condition<->Measurement alternation re-vets its design), so a
#: small keyed cache removes the cycle-enumeration cost from every load
#: after the first.
_DRC_CACHE_MAX = 128

_drc_cache: "OrderedDict[tuple, DrcReport]" = OrderedDict()


@dataclass(frozen=True)
class DrcReport:
    """Outcome of a design rule check run."""

    design_name: str
    combinational_loops: tuple[tuple[str, ...], ...]
    power_watts: float
    power_cap_watts: float
    shell_violations: tuple[str, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return (
            not self.combinational_loops
            and self.power_watts <= self.power_cap_watts
            and not self.shell_violations
        )

    def raise_on_failure(self) -> None:
        """Raise :class:`DesignRuleViolation` describing every failure."""
        if self.passed:
            return
        problems = []
        if self.combinational_loops:
            loops = "; ".join(
                " -> ".join(loop) for loop in self.combinational_loops[:3]
            )
            problems.append(
                f"{len(self.combinational_loops)} combinational loop(s) "
                f"(self-oscillators are prohibited): {loops}"
            )
        if self.power_watts > self.power_cap_watts:
            problems.append(
                f"power {self.power_watts:.1f} W exceeds the "
                f"{self.power_cap_watts:.1f} W platform cap"
            )
        if self.shell_violations:
            problems.append(
                f"cells placed in the provider shell region: "
                f"{', '.join(self.shell_violations[:5])}"
            )
        raise DesignRuleViolation(
            f"design {self.design_name!r} failed DRC: " + " | ".join(problems)
        )


def clear_drc_cache() -> None:
    """Drop every cached report (tests and benchmarks)."""
    _drc_cache.clear()


def check_design(
    bitstream: Bitstream, grid: FabricGrid, power_cap_watts: float
) -> DrcReport:
    """Run all provider checks on a compiled bitstream.

    Reports are memoised per ``(bitstream_id, grid shape, power cap)``:
    bitstream ids are unique per compile and both :class:`Bitstream` and
    :class:`DrcReport` are frozen, so a cached report is exactly the
    report a fresh check would produce.  The cache is bounded LRU.
    """
    key = (
        bitstream.bitstream_id,
        grid.columns,
        grid.rows,
        grid.shell_rows,
        power_cap_watts,
    )
    cached = _drc_cache.get(key)
    if cached is not None:
        _drc_cache.move_to_end(key)
        registry.counter(
            "drc_cache_hits_total", "DRC reports served from the cache"
        ).inc()
        return cached
    graph = bitstream.netlist.combinational_graph()
    loops = tuple(
        tuple(cycle) for cycle in nx.simple_cycles(graph)
    )
    shell = tuple(
        name
        for name, site in bitstream.placement.sites.items()
        if not grid.is_user_visible(site.coord)
    )
    report = DrcReport(
        design_name=bitstream.name,
        combinational_loops=loops,
        power_watts=bitstream.power.total_watts,
        power_cap_watts=power_cap_watts,
        shell_violations=shell,
    )
    _drc_cache[key] = report
    if len(_drc_cache) > _DRC_CACHE_MAX:
        _drc_cache.popitem(last=False)
    return report
