"""Provider-side design rule checks.

Cloud FPGA providers vet submitted designs.  Two checks matter for the
paper's story:

* **Self-oscillator scan** -- combinational loops (ring oscillators) are
  rejected, which is why RO-based aging sensors (the prior-work baseline,
  Section 7) cannot be deployed on AWS F1, while the TDC sensor "uses
  computational structures that are common in many FPGA designs" and
  passes.
* **Power cap** -- AWS F1 imposes an 85 W limit; the Target design's
  63 W sits under it.

The scan also rejects designs that place logic in the provider's shell
region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import DesignRuleViolation
from repro.fabric.bitstream import Bitstream
from repro.fabric.geometry import FabricGrid


@dataclass(frozen=True)
class DrcReport:
    """Outcome of a design rule check run."""

    design_name: str
    combinational_loops: tuple[tuple[str, ...], ...]
    power_watts: float
    power_cap_watts: float
    shell_violations: tuple[str, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return (
            not self.combinational_loops
            and self.power_watts <= self.power_cap_watts
            and not self.shell_violations
        )

    def raise_on_failure(self) -> None:
        """Raise :class:`DesignRuleViolation` describing every failure."""
        if self.passed:
            return
        problems = []
        if self.combinational_loops:
            loops = "; ".join(
                " -> ".join(loop) for loop in self.combinational_loops[:3]
            )
            problems.append(
                f"{len(self.combinational_loops)} combinational loop(s) "
                f"(self-oscillators are prohibited): {loops}"
            )
        if self.power_watts > self.power_cap_watts:
            problems.append(
                f"power {self.power_watts:.1f} W exceeds the "
                f"{self.power_cap_watts:.1f} W platform cap"
            )
        if self.shell_violations:
            problems.append(
                f"cells placed in the provider shell region: "
                f"{', '.join(self.shell_violations[:5])}"
            )
        raise DesignRuleViolation(
            f"design {self.design_name!r} failed DRC: " + " | ".join(problems)
        )


def check_design(
    bitstream: Bitstream, grid: FabricGrid, power_cap_watts: float
) -> DrcReport:
    """Run all provider checks on a compiled bitstream."""
    graph = bitstream.netlist.combinational_graph()
    loops = tuple(
        tuple(cycle) for cycle in nx.simple_cycles(graph)
    )
    shell = tuple(
        name
        for name, site in bitstream.placement.sites.items()
        if not grid.is_user_visible(site.coord)
    )
    return DrcReport(
        design_name=bitstream.name,
        combinational_loops=loops,
        power_watts=bitstream.power.total_watts,
        power_cap_watts=power_cap_watts,
        shell_violations=shell,
    )
