"""Placement: binding cells to fabric sites.

The reproduction needs two placers:

* :class:`FixedPlacer` -- the Target/Measure designs use hand-placed,
  constraint-locked locations (the paper applies "identical routing
  constraints" across both designs), so their builders place explicitly.
* :class:`ClusteredPlacer` -- the OpenTitan study needs a plausible
  module-level placement: each block's cells cluster around a centroid
  with a spread, as a timing-driven placer produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlacementError
from repro.fabric.geometry import Coordinate, FabricGrid, TileType
from repro.fabric.netlist import CellType
from repro.rng import SeedLike, make_rng

#: How many cells of each type fit in one tile (an UltraScale+ CLB has
#: eight LUT/FF pairs and one CARRY8; a DSP tile here stands for a short
#: column stack of DSP48E2 slices, so the paper's 3896-DSP heater fits
#: the scaled-down grid).
SITES_PER_TILE: dict[CellType, int] = {
    CellType.LUT: 8,
    CellType.FLIP_FLOP: 16,
    CellType.CARRY8: 1,
    CellType.DSP48: 14,
    CellType.BRAM: 1,
    CellType.BUFFER: 8,
    CellType.PORT: 32,
    CellType.INVERTER: 8,
}

#: Which tile type hosts each cell type.
TILE_FOR_CELL: dict[CellType, TileType] = {
    CellType.LUT: TileType.CLB,
    CellType.FLIP_FLOP: TileType.CLB,
    CellType.CARRY8: TileType.CLB,
    CellType.BUFFER: TileType.CLB,
    CellType.INVERTER: TileType.CLB,
    CellType.PORT: TileType.CLB,
    CellType.DSP48: TileType.DSP,
    CellType.BRAM: TileType.BRAM,
}


@dataclass(frozen=True)
class Site:
    """One placement site: a tile, a resource class, and a site index."""

    coord: Coordinate
    cell_type: CellType
    index: int


@dataclass
class Placement:
    """A complete cell-to-site assignment for one design."""

    sites: dict[str, Site] = field(default_factory=dict)
    _occupied: set = field(default_factory=set, repr=False)

    def place(self, cell_name: str, site: Site) -> None:
        """Assign a cell to a site; both must be unused."""
        if cell_name in self.sites:
            raise PlacementError(f"cell {cell_name!r} is already placed")
        if site in self._occupied:
            raise PlacementError(f"site {site} is already occupied")
        self.sites[cell_name] = site
        self._occupied.add(site)

    def location_of(self, cell_name: str) -> Coordinate:
        """The tile coordinate a cell occupies."""
        if cell_name not in self.sites:
            raise PlacementError(f"cell {cell_name!r} is not placed")
        return self.sites[cell_name].coord

    def occupied_tiles(self) -> set[Coordinate]:
        """All tiles hosting at least one placed cell."""
        return {site.coord for site in self.sites.values()}


class FixedPlacer:
    """Places cells at caller-chosen tiles, tracking site occupancy."""

    def __init__(self, grid: FabricGrid) -> None:
        self.grid = grid
        self.placement = Placement()
        self._next_index: dict[tuple[Coordinate, CellType], int] = {}

    def place_at(
        self, cell_name: str, cell_type: CellType, coord: Coordinate
    ) -> Site:
        """Place a cell at the next free site of its type in a tile."""
        self.grid.require_user_visible(coord)
        expected_tile = TILE_FOR_CELL[cell_type]
        if self.grid.tile_type(coord) is not expected_tile:
            raise PlacementError(
                f"cell {cell_name!r} of type {cell_type.value} needs a "
                f"{expected_tile.value} tile, but {coord} is "
                f"{self.grid.tile_type(coord).value}"
            )
        key = (coord, cell_type)
        index = self._next_index.get(key, 0)
        if index >= SITES_PER_TILE[cell_type]:
            raise PlacementError(
                f"tile {coord} has no free {cell_type.value} site"
            )
        self._next_index[key] = index + 1
        site = Site(coord=coord, cell_type=cell_type, index=index)
        self.placement.place(cell_name, site)
        return site

    def nearest_tile(
        self, near: Coordinate, cell_type: CellType, max_radius: int = 48
    ) -> Coordinate:
        """The closest tile with a *free* site for a cell type.

        Searches outward in Manhattan rings, skipping tiles whose sites
        of this type are already exhausted.
        """
        target = TILE_FOR_CELL[cell_type]
        capacity = SITES_PER_TILE[cell_type]
        for radius in range(max_radius + 1):
            for dx in range(-radius, radius + 1):
                dy_mag = radius - abs(dx)
                for dy in {dy_mag, -dy_mag}:
                    coord = near.offset(dx, dy)
                    if (
                        self.grid.is_user_visible(coord)
                        and self.grid.tile_type(coord) is target
                        and self._next_index.get((coord, cell_type), 0) < capacity
                    ):
                        return coord
        raise PlacementError(
            f"no free {target.value} site within radius {max_radius} of {near}"
        )


class ClusteredPlacer:
    """Places each module's cells in a Gaussian cluster around a centroid.

    Mimics the locality of a timing-driven placer: cells of one module
    land near each other, while inter-module nets span the centroid
    distance.  Used to generate the OpenTitan Earl Grey placement.
    """

    def __init__(self, grid: FabricGrid, seed: SeedLike = None) -> None:
        self.grid = grid
        self._fixed = FixedPlacer(grid)
        self._rng = make_rng(seed)

    @property
    def placement(self) -> Placement:
        """The accumulated cell-to-site assignment."""
        return self._fixed.placement

    def place_cluster(
        self,
        cell_names: list[str],
        cell_type: CellType,
        centroid: Coordinate,
        spread_tiles: float,
        max_attempts: int = 64,
    ) -> None:
        """Place cells around ``centroid`` with the given spread."""
        if spread_tiles < 0.0:
            raise PlacementError(f"spread must be >= 0, got {spread_tiles}")
        for name in cell_names:
            site = self._sample_site(cell_type, centroid, spread_tiles, max_attempts)
            self._fixed.placement.place(name, site)

    def _sample_site(
        self,
        cell_type: CellType,
        centroid: Coordinate,
        spread: float,
        max_attempts: int,
    ) -> Site:
        for _ in range(max_attempts):
            dx = int(round(self._rng.normal(0.0, max(spread, 0.01))))
            dy = int(round(self._rng.normal(0.0, max(spread, 0.01))))
            candidate = centroid.offset(dx, dy)
            if not self.grid.is_user_visible(candidate):
                continue
            try:
                tile = self._fixed.nearest_tile(candidate, cell_type, max_radius=6)
            except PlacementError:
                continue
            key = (tile, cell_type)
            index = self._fixed._next_index.get(key, 0)
            if index >= SITES_PER_TILE[cell_type]:
                continue
            self._fixed._next_index[key] = index + 1
            return Site(coord=tile, cell_type=cell_type, index=index)
        raise PlacementError(
            f"could not place a {cell_type.value} near {centroid} "
            f"(spread {spread}) after {max_attempts} attempts"
        )
