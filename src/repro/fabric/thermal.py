"""Thermal model: ambient conditions and junction temperature.

Junction temperature follows the usual lumped model
``T_j = T_ambient + R_theta * P``.  Two ambient profiles cover the
paper's settings:

* :class:`OvenAmbient` -- Experiment 1's forced-convection oven, which
  "maintains a constant temperature" of 60 C;
* :class:`DataCenterAmbient` -- the cloud, where the paper notes
  "non-constant temperature" as a noise source: a diurnal swing plus
  stochastic drift from neighbouring machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.units import celsius_to_kelvin


class OvenAmbient:
    """Constant-temperature ambient (the Lab Companion OF-01E oven)."""

    def __init__(self, temperature_c: float = 60.0) -> None:
        self._kelvin = celsius_to_kelvin(temperature_c)

    def at(self, sim_hours: float) -> float:
        """Ambient temperature in kelvin at an absolute simulation time."""
        return self._kelvin


class DataCenterAmbient:
    """Fluctuating data-centre inlet temperature.

    A mean level, a sinusoidal diurnal swing, and a slowly-varying
    stochastic component (AR(1) over one-hour steps) representing rack
    neighbours and cooling dynamics.
    """

    def __init__(
        self,
        mean_c: float = 38.0,
        diurnal_amplitude_c: float = 2.5,
        drift_sigma_c: float = 1.2,
        seed: SeedLike = None,
    ) -> None:
        if diurnal_amplitude_c < 0.0 or drift_sigma_c < 0.0:
            raise ConfigurationError("amplitudes must be >= 0")
        self._mean_k = celsius_to_kelvin(mean_c)
        self._diurnal = diurnal_amplitude_c
        self._sigma = drift_sigma_c
        self._rng = make_rng(seed)
        self._drift_cache: dict[int, float] = {}

    def _drift(self, hour: int) -> float:
        """AR(1) drift, memoised per integer hour for reproducibility."""
        if hour <= 0:
            return 0.0
        if hour not in self._drift_cache:
            previous = self._drift(hour - 1)
            innovation = float(self._rng.normal(0.0, self._sigma))
            self._drift_cache[hour] = 0.9 * previous + 0.435 * innovation
        return self._drift_cache[hour]

    def at(self, sim_hours: float) -> float:
        """Ambient temperature in kelvin at an absolute simulation time."""
        diurnal = self._diurnal * math.sin(2.0 * math.pi * sim_hours / 24.0)
        return self._mean_k + diurnal + self._drift(int(sim_hours))


@dataclass(frozen=True)
class ThermalModel:
    """Junction temperature from ambient and power."""

    #: Junction-to-ambient thermal resistance, kelvin per watt.
    theta_ja_k_per_w: float = 0.35

    def junction_k(self, ambient_k: float, power_watts: float) -> float:
        """Junction temperature for a given ambient and power draw."""
        if power_watts < 0.0:
            raise ConfigurationError(f"power must be >= 0, got {power_watts}")
        return ambient_k + self.theta_ja_k_per_w * power_watts
