"""The physical FPGA die: persistent analog state across tenants.

:class:`FpgaDevice` is the central object of the vulnerability.  Its
per-segment BTI state lives in the *device*, keyed by physical segment
identity, and survives design loads, design wipes and tenant changes.
``wipe()`` does exactly what the cloud provider's scrubbing does: it
destroys all logical state (the loaded design and its values) -- and
nothing else.  The analog imprint remains, which is the paper's entire
point.

Time advances through :meth:`advance_hours`: every segment bound to a
net of the loaded design experiences that net's activity (static hold,
toggling, or floating), every other known segment anneals, and the die's
effective age accumulates while powered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import FabricError
from repro.fabric.bitstream import Bitstream
from repro.fabric.geometry import FabricGrid
from repro.fabric.netlist import Net, NetActivity
from repro.fabric.parts import PartDescriptor
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import spec_for
from repro.fabric.thermal import ThermalModel
from repro.physics.aging import NEW_PART, WearProfile
from repro.physics.constants import REFERENCE_VOLTAGE_V
from repro.physics.bti import SegmentBti, SegmentTraits
from repro.physics.delay import TransitionDelays
from repro.physics.variation import ProcessVariation
from repro.rng import SeedLike, make_rng

#: Fractional delay increase per kelvin of junction temperature.  Applies
#: (almost) equally to rising and falling transitions, so it nearly
#: cancels in the falling-minus-rising observable; the residual is a
#: realistic cloud noise source.
DELAY_TEMP_COEFF_PER_K = 2.0e-4

#: Junction temperature reference for the delay temperature coefficient.
_DELAY_TEMP_REF_K = 338.15

_device_ids = itertools.count(1)


@dataclass(frozen=True)
class DeviceInfo:
    """Provider-side identity and wear summary of one die."""

    device_id: int
    part_name: str
    effective_age_hours: float


class FpgaDevice:
    """One physical FPGA die with persistent per-segment analog state."""

    def __init__(
        self,
        part: PartDescriptor,
        wear: WearProfile = NEW_PART,
        seed: SeedLike = None,
    ) -> None:
        self.part = part
        self.wear = wear
        self.device_id = next(_device_ids)
        rng = make_rng(seed)
        self._variation = ProcessVariation(seed=rng)
        self._imprint_rng = make_rng(rng.integers(0, 2**63))
        self.effective_age_hours = wear.sample_age_hours(
            make_rng(rng.integers(0, 2**63))
        )
        self.sim_hours = 0.0
        self.core_voltage_v = REFERENCE_VOLTAGE_V
        self.grid: FabricGrid = part.make_grid()
        self._segments: dict[SegmentId, SegmentBti] = {}
        self._loaded: Optional[Bitstream] = None
        self._ambient_k: float = 308.15  # 35 C until an environment says otherwise

    # ------------------------------------------------------------------
    # Analog state store
    # ------------------------------------------------------------------

    def segment_state(self, segment_id: SegmentId) -> SegmentBti:
        """The persistent analog state of one physical segment.

        Created lazily on first touch, with die-specific process
        variation and (for worn devices) residual imprints from prior,
        unobserved tenants.
        """
        state = self._segments.get(segment_id)
        if state is None:
            spec = spec_for(segment_id.kind)
            rising, falling, amplitude = self._variation.sample_segment(
                spec.delay_ps, spec.burn_amplitude_ps
            )
            state = SegmentBti(
                SegmentTraits(
                    rising_delay_ps=rising,
                    falling_delay_ps=falling,
                    burn_amplitude_ps=amplitude,
                )
            )
            high, low = self.wear.sample_residual_imprints(
                amplitude, self._imprint_rng
            )
            if high or low:
                state.preload_imprint(high_charge_ps=high, low_charge_ps=low)
            self._segments[segment_id] = state
        return state

    # ------------------------------------------------------------------
    # Design lifecycle
    # ------------------------------------------------------------------

    @property
    def loaded_design(self) -> Optional[Bitstream]:
        """The currently programmed bitstream, if any."""
        return self._loaded

    def load(self, bitstream: Bitstream) -> None:
        """Program a design onto the device.

        Touching every routed segment here materialises its analog state,
        so the first load on a worn device also realises the residual
        imprints of its unobserved history.
        """
        if self._loaded is not None:
            raise FabricError(
                f"device {self.device_id} already has "
                f"{self._loaded.name!r} loaded; wipe first"
            )
        for net in bitstream.netlist.routed_nets():
            for segment_id in net.route:
                self.segment_state(segment_id)
        self._loaded = bitstream

    def wipe(self) -> None:
        """The provider's scrub: clear all logical state.

        Analog (BTI) state is physically incapable of being cleared by a
        configuration wipe, so ``self._segments`` is deliberately left
        untouched.
        """
        self._loaded = None

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance_hours(self, duration_hours: float, ambient_k: float) -> None:
        """Advance simulated time with the current design (if any) active.

        All routed nets of the loaded design stress/anneal their segments
        according to their activity; all other materialised segments
        anneal.  The die ages while a design is powered.
        """
        if duration_hours < 0.0:
            raise FabricError(f"duration must be >= 0, got {duration_hours}")
        if duration_hours == 0.0:
            return
        self._ambient_k = ambient_k
        junction = self.junction_k()
        driven: set[SegmentId] = set()
        if self._loaded is not None:
            for net in self._loaded.netlist.routed_nets():
                self._apply_net_activity(net, duration_hours, junction)
                driven.update(net.route)
        for segment_id, state in self._segments.items():
            if segment_id not in driven:
                state.idle(duration_hours, junction)
        if self._loaded is not None:
            self.effective_age_hours += duration_hours
        self.sim_hours += duration_hours

    def _apply_net_activity(
        self, net: Net, duration_hours: float, junction_k: float
    ) -> None:
        for segment_id in net.route:
            state = self.segment_state(segment_id)
            if net.activity is NetActivity.STATIC:
                state.hold(
                    int(net.static_value),
                    duration_hours,
                    junction_k,
                    device_age_hours=self.effective_age_hours,
                    voltage_v=self.core_voltage_v,
                )
            elif net.activity is NetActivity.TOGGLING:
                state.toggle(
                    duration_hours,
                    junction_k,
                    device_age_hours=self.effective_age_hours,
                    duty_high=net.duty_high,
                    voltage_v=self.core_voltage_v,
                )
            else:
                state.idle(duration_hours, junction_k)

    # ------------------------------------------------------------------
    # Delay queries (used only by on-fabric sensors)
    # ------------------------------------------------------------------

    def set_core_voltage(self, voltage_v: float) -> None:
        """Operate the die at a non-nominal core supply.

        Undervolting is the Section 8.2/8.3 provider/manufacturer
        mitigation: BTI accelerates exponentially in gate voltage, so a
        50 mV reduction roughly halves the burn-in rate (at some
        performance cost, which is why providers hesitate).
        """
        if voltage_v <= 0.0:
            raise FabricError(f"voltage must be positive, got {voltage_v}")
        self.core_voltage_v = voltage_v

    def set_ambient(self, ambient_k: float) -> None:
        """Record the current ambient (board installed in oven/rack)."""
        if ambient_k <= 0.0:
            raise FabricError(f"ambient must be > 0 K, got {ambient_k}")
        self._ambient_k = ambient_k

    def junction_k(self) -> float:
        """Current junction temperature from ambient and loaded power.

        Computed live (not cached from the last time step): loading or
        wiping a design changes power draw, and the delay temperature
        coefficient must see the conditions that hold *now* -- this is
        what keeps theta_init portable between calibration and
        measurement passes (both run under the low-power Measure
        design).
        """
        power = self._loaded.power.total_watts if self._loaded else 0.0
        return ThermalModel().junction_k(self._ambient_k, power)

    def transition_delays(self, route: Route) -> TransitionDelays:
        """True rising/falling propagation delay through a route, now.

        Includes BTI degradation and the junction-temperature delay
        coefficient.  Only on-fabric sensor models may call this; tenant
        code observes delays exclusively through the TDC's quantised,
        noisy output.
        """
        total = TransitionDelays.zero()
        for segment_id in route:
            total = total + self.segment_state(segment_id).transition_delays()
        scale = 1.0 + DELAY_TEMP_COEFF_PER_K * (self.junction_k() - _DELAY_TEMP_REF_K)
        return TransitionDelays(
            rising_ps=total.rising_ps * scale,
            falling_ps=total.falling_ps * scale,
        )

    def route_delta_ps(self, route: Route) -> float:
        """True BTI delta-ps of a route (oracle; for tests/analysis only)."""
        return float(
            sum(self.segment_state(seg).delta_ps for seg in route)
        )

    def info(self) -> DeviceInfo:
        """Provider-side identity record."""
        return DeviceInfo(
            device_id=self.device_id,
            part_name=self.part.name,
            effective_age_hours=self.effective_age_hours,
        )

    def __repr__(self) -> str:
        loaded = self._loaded.name if self._loaded else None
        return (
            f"FpgaDevice(id={self.device_id}, part={self.part.name!r}, "
            f"age={self.effective_age_hours:.0f}h, loaded={loaded!r})"
        )
