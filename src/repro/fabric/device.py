"""The physical FPGA die: persistent analog state across tenants.

:class:`FpgaDevice` is the central object of the vulnerability.  Its
per-segment BTI state lives in the *device*, keyed by physical segment
identity, and survives design loads, design wipes and tenant changes.
``wipe()`` does exactly what the cloud provider's scrubbing does: it
destroys all logical state (the loaded design and its values) -- and
nothing else.  The analog imprint remains, which is the paper's entire
point.

Time advances through :meth:`advance_hours`: every segment bound to a
net of the loaded design experiences that net's activity (static hold,
toggling, or floating), every other known segment anneals, and the die's
effective age accumulates while powered.

Lazy aging: a device racked into a cloud region is *bound* to the
region's append-only timeline of clock intervals
(:class:`~repro.cloud.provider.RegionTimeline`) and carries only its
position in it.  :meth:`sync` replays the pending intervals -- exactly
the ``advance_hours`` calls an eager walker would have made, in the
same order -- and every observation or mutation of device state
(loading, wiping, delay reads, voltage changes) syncs first, so lazy
and eager providers are bit-identical.  A device with no materialised
analog state skips the replay in O(1): its ``sim_hours`` fast-forwards
along the timeline's identically-accumulated clock.

Two aging kernels implement the advance (selected per process via
:func:`repro.physics.pool_array.set_aging_kernel`, resolved when the
device is constructed):

* ``"array"`` (default) -- segments register into a
  :class:`~repro.physics.pool_array.SegmentBtiArray`; routed nets are
  grouped by activity class (static-1, static-0, toggling-by-duty,
  idle), so one interval is a handful of masked array updates.
  ``segment_state`` returns thin views into the arrays.
* ``"scalar"`` -- the per-object reference path: one
  :class:`~repro.physics.bti.SegmentBti` per segment, walked in Python.

Both kernels are bit-identical (same RNG draws at materialisation, same
numpy transcendentals in the kinetics); the equivalence suite pins this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import FabricError
from repro.fabric.bitstream import Bitstream
from repro.fabric.geometry import FabricGrid
from repro.fabric.netlist import Net, NetActivity
from repro.fabric.parts import PartDescriptor
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import spec_for
from repro.fabric.thermal import ThermalModel
from repro.observability.metrics import registry
from repro.physics.aging import NEW_PART, WearProfile
from repro.physics.constants import REFERENCE_VOLTAGE_V
from repro.physics.bti import SegmentBti, SegmentTraits
from repro.physics.delay import TransitionDelays
from repro.physics.pool_array import (
    SegmentBtiArray,
    SegmentBtiSlot,
    get_aging_kernel,
)
from repro.physics.variation import ProcessVariation
from repro.rng import SeedLike, make_rng

#: Fractional delay increase per kelvin of junction temperature.  Applies
#: (almost) equally to rising and falling transitions, so it nearly
#: cancels in the falling-minus-rising observable; the residual is a
#: realistic cloud noise source.
DELAY_TEMP_COEFF_PER_K = 2.0e-4

#: Junction temperature reference for the delay temperature coefficient.
_DELAY_TEMP_REF_K = 338.15

_device_ids = itertools.count(1)


@dataclass(frozen=True)
class DeviceInfo:
    """Provider-side identity and wear summary of one die."""

    device_id: int
    part_name: str
    effective_age_hours: float


@dataclass(frozen=True)
class _ActivityGroups:
    """Segment indices of one loaded design, grouped by activity class.

    Rebuilt (and cached) per (loaded design, materialised-segment
    count); the per-interval scalars (duration, junction temperature,
    age, voltage) are *not* part of the grouping, so the cache survives
    across intervals of a burn schedule.
    """

    static_one: np.ndarray
    static_zero: np.ndarray
    toggling: np.ndarray
    toggling_duty_high: np.ndarray
    #: Floating-net segments plus every materialised undriven segment.
    idle: np.ndarray


class FpgaDevice:
    """One physical FPGA die with persistent per-segment analog state."""

    def __init__(
        self,
        part: PartDescriptor,
        wear: WearProfile = NEW_PART,
        seed: SeedLike = None,
        aging_kernel: Optional[str] = None,
        bti_store: Optional[SegmentBtiArray] = None,
    ) -> None:
        self.part = part
        self.wear = wear
        self.device_id = next(_device_ids)
        rng = make_rng(seed)
        self._variation = ProcessVariation(seed=rng)
        self._imprint_rng = make_rng(rng.integers(0, 2**63))
        self.effective_age_hours = wear.sample_age_hours(
            make_rng(rng.integers(0, 2**63))
        )
        self.sim_hours = 0.0
        self.core_voltage_v = REFERENCE_VOLTAGE_V
        self.grid: FabricGrid = part.make_grid()
        self.aging_kernel = (
            aging_kernel if aging_kernel is not None else get_aging_kernel()
        )
        if self.aging_kernel not in ("array", "scalar"):
            raise FabricError(
                f"unknown aging kernel {self.aging_kernel!r}"
            )
        if bti_store is not None and self.aging_kernel != "array":
            raise FabricError(
                "a shared bti_store requires the array aging kernel"
            )
        # Scalar kernel: one SegmentBti object per materialised segment.
        self._segments: dict[SegmentId, SegmentBti] = {}
        # Array kernel: SoA state plus the SegmentId -> slot index map
        # and the cached per-slot views.  ``bti_store`` lets a whole
        # fleet share one backing array (slot blocks per device), which
        # is what enables cross-device bulk catch-up.
        self._bti_array = bti_store if bti_store is not None else SegmentBtiArray()
        self._array_index: dict[SegmentId, int] = {}
        self._array_slots: dict[SegmentId, SegmentBtiSlot] = {}
        self._groups: Optional[_ActivityGroups] = None
        self._groups_loaded: Optional[Bitstream] = None
        self._groups_count: int = -1
        self._loaded: Optional[Bitstream] = None
        self._ambient_k: float = 308.15  # 35 C until an environment says otherwise
        # Lazy aging: the bound region timeline and this device's
        # position in it (both None/0 for standalone devices).
        self._timeline = None
        self._timeline_pos = 0

    # ------------------------------------------------------------------
    # Analog state store
    # ------------------------------------------------------------------

    def segment_state(
        self, segment_id: SegmentId
    ) -> Union[SegmentBti, SegmentBtiSlot]:
        """The persistent analog state of one physical segment.

        Created lazily on first touch, with die-specific process
        variation and (for worn devices) residual imprints from prior,
        unobserved tenants.  Under the array kernel the returned object
        is a thin view into the device's arrays; either way it exposes
        the full :class:`~repro.physics.bti.SegmentBti` surface.
        """
        self.sync()
        if self.aging_kernel == "array":
            slot = self._array_slots.get(segment_id)
            if slot is None:
                slot = self._bti_array.view(self._segment_index(segment_id))
                self._array_slots[segment_id] = slot
            return slot
        state = self._segments.get(segment_id)
        if state is None:
            traits, high, low = self._materialise(segment_id)
            state = SegmentBti(traits)
            if high or low:
                state.preload_imprint(high_charge_ps=high, low_charge_ps=low)
            self._segments[segment_id] = state
        return state

    def _materialise(
        self, segment_id: SegmentId
    ) -> tuple[SegmentTraits, float, float]:
        """Sample one segment's traits and residual imprints.

        The RNG draw order is identical under both kernels (one
        variation sample, then one imprint sample), which is what keeps
        the kernels' device states bit-identical from a shared seed.
        """
        spec = spec_for(segment_id.kind)
        rising, falling, amplitude = self._variation.sample_segment(
            spec.delay_ps, spec.burn_amplitude_ps
        )
        traits = SegmentTraits(
            rising_delay_ps=rising,
            falling_delay_ps=falling,
            burn_amplitude_ps=amplitude,
        )
        high, low = self.wear.sample_residual_imprints(
            amplitude, self._imprint_rng
        )
        return traits, high, low

    def _segment_index(self, segment_id: SegmentId) -> int:
        """Array-kernel slot of a segment, materialising on first touch."""
        index = self._array_index.get(segment_id)
        if index is None:
            traits, high, low = self._materialise(segment_id)
            index = self._bti_array.register(traits)
            if high or low:
                self._bti_array.preload_imprint(
                    [index], high_charge_ps=high, low_charge_ps=low
                )
            self._array_index[segment_id] = index
        return index

    @property
    def materialised_segments(self) -> int:
        """Number of segments whose analog state has been realised."""
        if self.aging_kernel == "array":
            return len(self._array_index)
        return len(self._segments)

    # ------------------------------------------------------------------
    # Design lifecycle
    # ------------------------------------------------------------------

    @property
    def loaded_design(self) -> Optional[Bitstream]:
        """The currently programmed bitstream, if any."""
        return self._loaded

    def load(self, bitstream: Bitstream) -> None:
        """Program a design onto the device.

        Touching every routed segment here materialises its analog state,
        so the first load on a worn device also realises the residual
        imprints of its unobserved history.
        """
        self.sync()
        if self._loaded is not None:
            raise FabricError(
                f"device {self.device_id} already has "
                f"{self._loaded.name!r} loaded; wipe first"
            )
        for net in bitstream.netlist.routed_nets():
            for segment_id in net.route:
                self.segment_state(segment_id)
        self._loaded = bitstream

    def wipe(self) -> None:
        """The provider's scrub: clear all logical state.

        Analog (BTI) state is physically incapable of being cleared by a
        configuration wipe, so the segment store is deliberately left
        untouched.  (Under lazy aging the device first integrates the
        pending intervals *with* the design still loaded.)
        """
        self.sync()
        self._loaded = None

    # ------------------------------------------------------------------
    # Lazy aging (region timelines)
    # ------------------------------------------------------------------

    def bind_timeline(self, timeline, position: int = 0) -> None:
        """Attach this device to a region's interval timeline.

        From now on the device ages lazily: the region records clock
        intervals, and :meth:`sync` (called by every state observation
        or mutation) replays the pending ones.
        """
        self._timeline = timeline
        self._timeline_pos = position

    @property
    def timeline_position(self) -> int:
        """This device's position in its bound timeline."""
        return self._timeline_pos

    @property
    def pending_intervals(self) -> int:
        """Recorded intervals this device has not yet integrated."""
        if self._timeline is None:
            return 0
        return len(self._timeline) - self._timeline_pos

    @property
    def aging_store(self) -> SegmentBtiArray:
        """The backing SoA store (shared across a fleet, or private)."""
        return self._bti_array

    def sync(self) -> int:
        """Catch up to the bound timeline; returns intervals replayed.

        A device with no materialised analog state skips the replay:
        nothing but ``sim_hours`` (and the last-seen ambient) can
        change, and the timeline's ``clock_after`` values were
        accumulated with the identical ``+=`` sequence, so the
        fast-forward is bit-identical to the interval-by-interval walk.
        """
        timeline = self._timeline
        if timeline is None:
            return 0
        pending = len(timeline) - self._timeline_pos
        if pending <= 0:
            return 0
        position = self._timeline_pos
        # Mark synced first: the replay below touches segment state,
        # which re-enters sync() and must see nothing pending.
        self._timeline_pos = len(timeline)
        if (
            self._loaded is None
            and self.materialised_segments == 0
            and self.sim_hours == timeline.clock_before(position)
        ):
            self.sim_hours = timeline.clock_after[-1]
            self._ambient_k = timeline.ambients[-1]
            registry.counter(
                "device_advance_intervals_total",
                "device time-advance intervals",
            ).inc(pending)
            return pending
        for i in range(position, len(timeline)):
            self._advance_hours_raw(
                timeline.durations[i], timeline.ambients[i]
            )
        return pending

    def _lazy_idle_indices(self) -> np.ndarray:
        """Array-store slots an idle catch-up must anneal (all of this
        device's materialised segments; requires no loaded design)."""
        assert self._loaded is None
        return self._activity_groups().idle

    def _finish_lazy_idle(self) -> None:
        """Bookkeeping after a cross-device bulk idle catch-up.

        The fleet-level catch-up already applied the array updates for
        every pending interval; this replays only the per-interval
        scalar bookkeeping (``sim_hours`` accumulation, last ambient,
        counters), bit-identical to :meth:`sync`'s slow path.
        """
        timeline = self._timeline
        assert timeline is not None and self._loaded is None
        position = self._timeline_pos
        pending = len(timeline) - position
        if pending <= 0:
            return
        self._timeline_pos = len(timeline)
        for i in range(position, len(timeline)):
            self.sim_hours += timeline.durations[i]
        self._ambient_k = timeline.ambients[-1]
        registry.counter(
            "device_advance_intervals_total", "device time-advance intervals"
        ).inc(pending)
        registry.counter(
            "device_segment_hours_total",
            "simulated segment-hours of BTI integration",
        ).inc(sum(timeline.durations[position:]) * self.materialised_segments)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance_hours(self, duration_hours: float, ambient_k: float) -> None:
        """Advance simulated time with the current design (if any) active.

        All routed nets of the loaded design stress/anneal their segments
        according to their activity; all other materialised segments
        anneal.  The die ages while a design is powered.  A device bound
        to a region timeline catches up on the recorded intervals first.
        """
        self.sync()
        self._advance_hours_raw(duration_hours, ambient_k)

    def _advance_hours_raw(
        self, duration_hours: float, ambient_k: float
    ) -> None:
        """One interval of aging, without consulting the timeline (the
        replay primitive :meth:`sync` drives)."""
        if duration_hours < 0.0:
            raise FabricError(f"duration must be >= 0, got {duration_hours}")
        if duration_hours == 0.0:
            return
        self._ambient_k = ambient_k
        junction = self.junction_k()
        if self.aging_kernel == "array":
            self._advance_array(duration_hours, junction)
        else:
            self._advance_scalar(duration_hours, junction)
        if self._loaded is not None:
            self.effective_age_hours += duration_hours
        self.sim_hours += duration_hours
        registry.counter(
            "device_advance_intervals_total", "device time-advance intervals"
        ).inc()
        registry.counter(
            "device_segment_hours_total",
            "simulated segment-hours of BTI integration",
        ).inc(duration_hours * self.materialised_segments)

    def _advance_scalar(self, duration_hours: float, junction_k: float) -> None:
        """Reference path: walk every segment object in Python."""
        driven: set[SegmentId] = set()
        if self._loaded is not None:
            for net in self._loaded.netlist.routed_nets():
                self._apply_net_activity(net, duration_hours, junction_k)
                driven.update(net.route)
        for segment_id, state in self._segments.items():
            if segment_id not in driven:
                state.idle(duration_hours, junction_k)

    def _advance_array(self, duration_hours: float, junction_k: float) -> None:
        """Vectorised path: a handful of masked array updates."""
        groups = self._activity_groups()
        age = self.effective_age_hours
        voltage = self.core_voltage_v
        bti = self._bti_array
        if groups.static_one.size:
            bti.hold(
                groups.static_one, 1, duration_hours, junction_k,
                device_age_hours=age, voltage_v=voltage,
            )
        if groups.static_zero.size:
            bti.hold(
                groups.static_zero, 0, duration_hours, junction_k,
                device_age_hours=age, voltage_v=voltage,
            )
        if groups.toggling.size:
            bti.toggle(
                groups.toggling, duration_hours, junction_k,
                device_age_hours=age, duty_high=groups.toggling_duty_high,
                voltage_v=voltage,
            )
        if groups.idle.size:
            bti.idle(groups.idle, duration_hours, junction_k)

    def _activity_groups(self) -> _ActivityGroups:
        """Activity-class index groups for the current design, cached.

        The cache key is (loaded design, materialised-segment count):
        loading, wiping, or materialising a new segment invalidates it;
        advancing time does not.
        """
        if (
            self._groups is not None
            and self._groups_loaded is self._loaded
            and self._groups_count == len(self._array_index)
        ):
            return self._groups
        static_one: list[int] = []
        static_zero: list[int] = []
        toggling: list[int] = []
        duty_high: list[float] = []
        floating: list[int] = []
        driven: set[int] = set()
        if self._loaded is not None:
            for net in self._loaded.netlist.routed_nets():
                indices = [self._segment_index(s) for s in net.route]
                if net.activity is NetActivity.STATIC:
                    target = (
                        static_one if int(net.static_value) == 1 else static_zero
                    )
                    target.extend(indices)
                elif net.activity is NetActivity.TOGGLING:
                    toggling.extend(indices)
                    duty_high.extend([net.duty_high] * len(indices))
                else:
                    floating.extend(indices)
                driven.update(indices)
        # Own slots only: under a shared fleet store this device's
        # indices are an arbitrary block, not range(len(...)).  For a
        # private store the two spellings are identical (insertion
        # order is 0..n-1).
        idle = floating + [
            i for i in self._array_index.values() if i not in driven
        ]
        self._groups = _ActivityGroups(
            static_one=np.asarray(static_one, dtype=np.intp),
            static_zero=np.asarray(static_zero, dtype=np.intp),
            toggling=np.asarray(toggling, dtype=np.intp),
            toggling_duty_high=np.asarray(duty_high, dtype=float),
            idle=np.asarray(idle, dtype=np.intp),
        )
        # Keyed after the build: materialising the design's own segments
        # above grows the index map, and the key must reflect that.
        self._groups_loaded = self._loaded
        self._groups_count = len(self._array_index)
        return self._groups

    def _apply_net_activity(
        self, net: Net, duration_hours: float, junction_k: float
    ) -> None:
        for segment_id in net.route:
            state = self.segment_state(segment_id)
            if net.activity is NetActivity.STATIC:
                state.hold(
                    int(net.static_value),
                    duration_hours,
                    junction_k,
                    device_age_hours=self.effective_age_hours,
                    voltage_v=self.core_voltage_v,
                )
            elif net.activity is NetActivity.TOGGLING:
                state.toggle(
                    duration_hours,
                    junction_k,
                    device_age_hours=self.effective_age_hours,
                    duty_high=net.duty_high,
                    voltage_v=self.core_voltage_v,
                )
            else:
                state.idle(duration_hours, junction_k)

    # ------------------------------------------------------------------
    # Delay queries (used only by on-fabric sensors)
    # ------------------------------------------------------------------

    def set_core_voltage(self, voltage_v: float) -> None:
        """Operate the die at a non-nominal core supply.

        Undervolting is the Section 8.2/8.3 provider/manufacturer
        mitigation: BTI accelerates exponentially in gate voltage, so a
        50 mV reduction roughly halves the burn-in rate (at some
        performance cost, which is why providers hesitate).
        """
        if voltage_v <= 0.0:
            raise FabricError(f"voltage must be positive, got {voltage_v}")
        # Pending intervals ran at the *old* supply; integrate them
        # before the change takes effect.
        self.sync()
        self.core_voltage_v = voltage_v

    def set_ambient(self, ambient_k: float) -> None:
        """Record the current ambient (board installed in oven/rack)."""
        if ambient_k <= 0.0:
            raise FabricError(f"ambient must be > 0 K, got {ambient_k}")
        self.sync()
        self._ambient_k = ambient_k

    def junction_k(self) -> float:
        """Current junction temperature from ambient and loaded power.

        Computed live (not cached from the last time step): loading or
        wiping a design changes power draw, and the delay temperature
        coefficient must see the conditions that hold *now* -- this is
        what keeps theta_init portable between calibration and
        measurement passes (both run under the low-power Measure
        design).
        """
        power = self._loaded.power.total_watts if self._loaded else 0.0
        return ThermalModel().junction_k(self._ambient_k, power)

    def _route_indices(self, route: Route) -> np.ndarray:
        """Array-kernel slots of a route's segments (materialising)."""
        return np.fromiter(
            (self._segment_index(s) for s in route), dtype=np.intp,
            count=len(route),
        )

    def transition_delays(self, route: Route) -> TransitionDelays:
        """True rising/falling propagation delay through a route, now.

        Includes BTI degradation and the junction-temperature delay
        coefficient.  Only on-fabric sensor models may call this; tenant
        code observes delays exclusively through the TDC's quantised,
        noisy output.
        """
        self.sync()
        if self.aging_kernel == "array":
            indices = self._route_indices(route)
            # Sequential left-to-right sum: bit-identical to the scalar
            # kernel's TransitionDelays accumulation.
            rising = sum(self._bti_array.rising_delay_ps(indices).tolist())
            falling = sum(self._bti_array.falling_delay_ps(indices).tolist())
            total = TransitionDelays(rising_ps=rising, falling_ps=falling)
        else:
            total = TransitionDelays.zero()
            for segment_id in route:
                total = total + self.segment_state(segment_id).transition_delays()
        scale = 1.0 + DELAY_TEMP_COEFF_PER_K * (self.junction_k() - _DELAY_TEMP_REF_K)
        return TransitionDelays(
            rising_ps=total.rising_ps * scale,
            falling_ps=total.falling_ps * scale,
        )

    def route_delta_ps(self, route: Route) -> float:
        """True BTI delta-ps of a route (oracle; for tests/analysis only)."""
        self.sync()
        if self.aging_kernel == "array":
            indices = self._route_indices(route)
            return float(sum(self._bti_array.delta_ps(indices).tolist()))
        return float(
            sum(self.segment_state(seg).delta_ps for seg in route)
        )

    def info(self) -> DeviceInfo:
        """Provider-side identity record."""
        self.sync()
        return DeviceInfo(
            device_id=self.device_id,
            part_name=self.part.name,
            effective_age_hours=self.effective_age_hours,
        )

    def __repr__(self) -> str:
        loaded = self._loaded.name if self._loaded else None
        return (
            f"FpgaDevice(id={self.device_id}, part={self.part.name!r}, "
            f"age={self.effective_age_hours:.0f}h, loaded={loaded!r}, "
            f"kernel={self.aging_kernel!r})"
        )
