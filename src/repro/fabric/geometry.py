"""Fabric geometry: coordinates, tile types and the tile grid.

The model follows the column-based floorplan of Xilinx UltraScale+
devices: most columns are CLBs, with periodic DSP and BRAM columns, and
every tile has an adjacent interconnect (INT) switchbox through which all
programmable routing passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError, FabricError


@dataclass(frozen=True, order=True)
class Coordinate:
    """A tile coordinate: ``x`` is the column, ``y`` the row."""

    x: int
    y: int

    def offset(self, dx: int = 0, dy: int = 0) -> "Coordinate":
        """The coordinate displaced by (dx, dy)."""
        return Coordinate(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Coordinate") -> int:
        """Manhattan (L1) distance to another coordinate."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __str__(self) -> str:
        return f"X{self.x}Y{self.y}"


class TileType(enum.Enum):
    """Functional type of a fabric tile."""

    CLB = "clb"
    DSP = "dsp"
    BRAM = "bram"
    #: Tiles belonging to the provider's shell; not visible to tenants.
    SHELL = "shell"


# Column pattern approximating an UltraScale+ region: mostly CLB with
# interleaved DSP and BRAM columns.
_COLUMN_PATTERN = (
    TileType.CLB,
    TileType.CLB,
    TileType.CLB,
    TileType.DSP,
    TileType.CLB,
    TileType.CLB,
    TileType.BRAM,
    TileType.CLB,
)


class FabricGrid:
    """The tile grid of one die.

    The bottom ``shell_rows`` rows model the AWS shell region: present on
    the device, but invisible and unusable for tenants ("the attacker is
    limited by the interfaces exposed by the cloud provider").
    """

    def __init__(self, columns: int, rows: int, shell_rows: int = 0) -> None:
        if columns <= 0 or rows <= 0:
            raise ConfigurationError(
                f"grid must be positive, got {columns}x{rows}"
            )
        if not 0 <= shell_rows < rows:
            raise ConfigurationError(
                f"shell_rows must be in [0, rows), got {shell_rows}"
            )
        self.columns = columns
        self.rows = rows
        self.shell_rows = shell_rows

    def contains(self, coord: Coordinate) -> bool:
        """Whether the coordinate lies on the die at all."""
        return 0 <= coord.x < self.columns and 0 <= coord.y < self.rows

    def is_user_visible(self, coord: Coordinate) -> bool:
        """Whether a tenant may place logic at the coordinate."""
        return self.contains(coord) and coord.y >= self.shell_rows

    def tile_type(self, coord: Coordinate) -> TileType:
        """The functional type of the tile at a coordinate."""
        if not self.contains(coord):
            raise FabricError(f"coordinate {coord} is off the die")
        if coord.y < self.shell_rows:
            return TileType.SHELL
        return _COLUMN_PATTERN[coord.x % len(_COLUMN_PATTERN)]

    def require_user_visible(self, coord: Coordinate) -> None:
        """Raise :class:`FabricError` unless a tenant can use the tile."""
        if not self.contains(coord):
            raise FabricError(f"coordinate {coord} is off the die")
        if not self.is_user_visible(coord):
            raise FabricError(
                f"coordinate {coord} lies in the provider shell region"
            )

    def user_tiles(self, tile_type: TileType) -> Iterator[Coordinate]:
        """Iterate all user-visible tiles of a given type, column-major."""
        for x in range(self.columns):
            for y in range(self.shell_rows, self.rows):
                coord = Coordinate(x, y)
                if self.tile_type(coord) is tile_type:
                    yield coord

    def count_user_tiles(self, tile_type: TileType) -> int:
        """Number of user-visible tiles of a given type."""
        return sum(1 for _ in self.user_tiles(tile_type))
