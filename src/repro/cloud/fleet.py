"""Fleet construction: populations of physical devices.

Cloud regions hold fleets of FPGAs of mixed age and history.  The paper
notes its eu-west-2 devices carried "potentially four years of wear";
:func:`build_fleet` samples each device's effective age and residual
imprints from a :class:`~repro.physics.aging.WearProfile`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, PreemptionError
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import PartDescriptor
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.physics.aging import CLOUD_PART, WearProfile
from repro.physics.pool_array import SegmentBtiArray, get_aging_kernel
from repro.reliability.faults import maybe_inject
from repro.rng import SeedLike, make_rng

_log = get_logger("cloud.fleet")


def preemption_check(instance_id: int, tenant: str) -> None:
    """Fleet-level capacity pressure can reclaim a running instance.

    Chaos fault site ``cloud.preempt``: called at the head of every
    ``run_hours`` interval, before the interval's hours are billed or
    the shared clock advances -- the spot-reclamation notice arrives
    *before* the run starts, so a tenant that backs off and re-issues
    the run resumes with the simulation state untouched.
    """
    maybe_inject(
        "cloud.preempt", PreemptionError,
        f"instance {instance_id} (tenant {tenant!r}): spot capacity "
        f"reclaimed (injected preemption notice)",
    )


def apply_thermal_excursions(region, excursions) -> None:
    """Replay thermal excursions through a region's ambient profile.

    Wraps the region's ambient in an
    :class:`~repro.reliability.fleet_chaos.ExcursionAmbient` so every
    *subsequent* clock interval recorded on the region's
    :class:`~repro.cloud.provider.RegionTimeline` (lazy path) or walked
    eagerly samples the spiked temperature.  The wrapper is a pure
    function of time, so lazy and eager aging integrate identical
    ambient sequences.  No-op for an empty excursion list.
    """
    from repro.reliability.fleet_chaos import ExcursionAmbient

    excursions = tuple(excursions)
    if not excursions:
        return
    region.ambient = ExcursionAmbient(region.ambient, excursions)
    _log.info("thermal_excursions_applied", region=region.name,
              excursions=len(excursions))


def cloud_wear_profile(age_mean_hours: float) -> WearProfile:
    """The standard cloud wear profile at a configurable mean age.

    Returns :data:`~repro.physics.aging.CLOUD_PART` itself at its
    default age; otherwise a profile with the same residual-imprint
    character scaled to the requested age.
    """
    if age_mean_hours == CLOUD_PART.age_mean_hours:
        return CLOUD_PART
    if age_mean_hours < 0.0:
        raise ConfigurationError(f"age must be >= 0, got {age_mean_hours}")
    return WearProfile(
        name=f"cloud-aged-{age_mean_hours:.0f}h",
        age_mean_hours=age_mean_hours,
        age_sigma_hours=age_mean_hours * 0.22,
        residual_imprint_fraction=CLOUD_PART.residual_imprint_fraction,
    )


def build_fleet(
    part: PartDescriptor,
    size: int,
    wear: WearProfile = CLOUD_PART,
    seed: SeedLike = None,
    aging_kernel: Optional[str] = None,
    bti_store: Optional["SegmentBtiArray"] = None,
) -> list[FpgaDevice]:
    """Manufacture ``size`` devices of one part with sampled wear.

    ``aging_kernel`` pins every device of the fleet to one aging kernel
    (``"array"``/``"scalar"``); by default each device resolves the
    process-wide default at construction.  Fleet-scale workloads age
    many devices over hundreds of simulated hours, so this is the knob
    A/B comparisons of the kernels reach for.

    ``bti_store`` lets every device of the fleet share one backing
    :class:`~repro.physics.pool_array.SegmentBtiArray` (slot blocks per
    device), which is what enables the lazy-aging path to catch idle
    devices up in cross-device bulk updates.  Implies the array kernel.
    """
    if size <= 0:
        raise ConfigurationError(f"fleet size must be positive, got {size}")
    rng = make_rng(seed)
    if aging_kernel is None and bti_store is not None:
        kernel = "array"
    else:
        kernel = (
            aging_kernel if aging_kernel is not None else get_aging_kernel()
        )
    with trace.span("cloud.build_fleet", part=part.name, size=size,
                    wear=wear.name, aging_kernel=kernel):
        devices = [
            FpgaDevice(
                part=part, wear=wear, seed=rng.integers(0, 2**63),
                aging_kernel=kernel, bti_store=bti_store,
            )
            for _ in range(size)
        ]
    registry.counter(
        "fleet_devices_built_total", "physical devices manufactured"
    ).inc(size)
    _log.info("fleet_built", part=part.name, size=size, wear=wear.name,
              aging_kernel=kernel)
    return devices
