"""Simulated cloud FPGA platform (AWS-F1-like).

Models the platform semantics Threat Models 1 and 2 depend on:

* a provider with regions, each holding a fleet of physical devices with
  realistic age distributions (:mod:`repro.cloud.provider`,
  :mod:`repro.cloud.fleet`);
* temporally-shared instances: rent, load (after DRC), run, release --
  and on release the provider **wipes all logical state**, exactly as
  AWS scrubs "FPGA state on termination of an F1 instance"
  (:mod:`repro.cloud.instance`);
* a marketplace distributing sealed AFIs whose "internal design code is
  not exposed" (:mod:`repro.cloud.marketplace`);
* device re-acquisition: flash attacks that exhaust regional capacity,
  and process-variation fingerprinting to confirm the victim's physical
  board was obtained (:mod:`repro.cloud.colocation`,
  :mod:`repro.cloud.fingerprint`);
* allocation policies, including the launch-rate-control (hold-back)
  mitigation of Section 8.2 (:mod:`repro.cloud.allocation`).
"""

from repro.cloud.allocation import AllocationPolicy
from repro.cloud.colocation import FlashAttack
from repro.cloud.fingerprint import RouteFingerprint, fingerprint_session, match_score
from repro.cloud.fleet import build_fleet
from repro.cloud.instance import F1Instance
from repro.cloud.marketplace import Marketplace, MarketplaceListing
from repro.cloud.provider import CloudProvider, Region

__all__ = [
    "AllocationPolicy",
    "CloudProvider",
    "F1Instance",
    "FlashAttack",
    "Marketplace",
    "MarketplaceListing",
    "Region",
    "RouteFingerprint",
    "build_fleet",
    "fingerprint_session",
    "match_score",
]
