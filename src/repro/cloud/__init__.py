"""Simulated cloud FPGA platform (AWS-F1-like).

Models the platform semantics Threat Models 1 and 2 depend on:

* a provider with regions, each holding a fleet of physical devices with
  realistic age distributions (:mod:`repro.cloud.provider`,
  :mod:`repro.cloud.fleet`);
* temporally-shared instances: rent, load (after DRC), run, release --
  and on release the provider **wipes all logical state**, exactly as
  AWS scrubs "FPGA state on termination of an F1 instance"
  (:mod:`repro.cloud.instance`);
* a marketplace distributing sealed AFIs whose "internal design code is
  not exposed" (:mod:`repro.cloud.marketplace`);
* device re-acquisition: flash attacks that exhaust regional capacity,
  and process-variation fingerprinting to confirm the victim's physical
  board was obtained (:mod:`repro.cloud.colocation`,
  :mod:`repro.cloud.fingerprint`);
* allocation policies, including the launch-rate-control (hold-back)
  mitigation of Section 8.2 (:mod:`repro.cloud.allocation`);
* fleet-scale discrete-event simulation: a deterministic event loop
  (:mod:`repro.cloud.events`), lazy aging over region timelines
  (:mod:`repro.cloud.provider`), and attacker campaigns over a
  churning 100k-board fleet (:mod:`repro.cloud.campaigns`).
"""

from repro.cloud.allocation import AllocationPolicy
from repro.cloud.campaigns import (
    CampaignResult,
    ChurnModel,
    ChurnTrace,
    FleetScenario,
    FleetSimulator,
    FlashAttackPlan,
    LazyFleet,
    ScanPlan,
    VirtualRegion,
    run_churn_benchmark,
    run_flash_campaign,
    run_scan_campaign,
)
from repro.cloud.colocation import FlashAttack
from repro.cloud.events import Event, EventKind, EventLoop
from repro.cloud.fingerprint import RouteFingerprint, fingerprint_session, match_score
from repro.cloud.fleet import build_fleet
from repro.cloud.instance import F1Instance
from repro.cloud.marketplace import Marketplace, MarketplaceListing
from repro.cloud.provider import CloudProvider, Region, RegionTimeline

__all__ = [
    "AllocationPolicy",
    "CampaignResult",
    "ChurnModel",
    "ChurnTrace",
    "CloudProvider",
    "Event",
    "EventKind",
    "EventLoop",
    "F1Instance",
    "FlashAttack",
    "FlashAttackPlan",
    "FleetScenario",
    "FleetSimulator",
    "LazyFleet",
    "Marketplace",
    "MarketplaceListing",
    "Region",
    "RegionTimeline",
    "RouteFingerprint",
    "ScanPlan",
    "VirtualRegion",
    "build_fleet",
    "fingerprint_session",
    "match_score",
    "run_churn_benchmark",
    "run_flash_campaign",
    "run_scan_campaign",
]
