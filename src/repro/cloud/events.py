"""Discrete-event scheduler for fleet-scale cloud simulation.

The eager provider advances every device on every clock tick, which
caps simulations at a few hundred boards.  At fleet scale the clock
instead jumps from event to event: an :class:`EventLoop` keeps a
``heapq`` of pending :class:`Event` records and, between events, moves
the shared clock exactly once -- under the provider's lazy aging that
is a single timeline append, not a fleet walk.

Determinism: the heap orders events by ``(time, kind, seq)``.  Kind
priorities are chosen so that at one timestamp a board's release (and
its wipe) lands before the next tenant's rent -- the paper's rapid
release-then-rent reallocation race resolves the same way on every
run -- and ``seq`` is a per-loop monotone counter, so runs are
seed-reproducible regardless of how handlers interleave their
scheduling.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import CloudError
from repro.observability.metrics import registry
from repro.observability.progress import note_sim_hours
from repro.observability.timeseries import SERIES_TRACKED


class EventKind(enum.IntEnum):
    """Lifecycle event types, in same-timestamp processing order."""

    #: A tenancy ends; the board returns to the pool.
    RELEASE = 0
    #: The provider scrubs a board's logical state.
    WIPE = 1
    #: A tenant (or attacker) requests an instance.
    RENT = 2
    #: Spot capacity pressure reclaims a running instance.
    PREEMPT = 3
    #: An attacker probes held boards for pentimenti.
    SCAN = 4
    #: A device hard-fails and leaves the free pool permanently.
    RETIRE = 5


@dataclass
class Event:
    """One scheduled occurrence."""

    time_hours: float
    kind: EventKind
    seq: int
    handler: Callable[["EventLoop", "Event"], None]
    data: dict[str, Any] = field(default_factory=dict)
    cancelled: bool = False


class EventLoop:
    """A deterministic heap-ordered scheduler over a shared clock.

    ``clock`` is anything exposing ``clock_hours`` and
    ``advance(hours)`` -- a :class:`~repro.cloud.provider.CloudProvider`
    in fleet simulations, or a lightweight stand-in in tests.

    ``recorder`` is an optional
    :class:`~repro.observability.timeseries.FlightRecorder`; when set,
    every dispatched (tracked) event samples the cumulative
    ``fleet.tracked_events`` series at its sim time.
    """

    def __init__(self, clock: Any, recorder: Any = None) -> None:
        self._clock = clock
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self.events_processed = 0
        self.recorder = recorder

    @property
    def now_hours(self) -> float:
        """The shared clock's current simulated time."""
        return float(self._clock.clock_hours)

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self,
        time_hours: float,
        kind: EventKind,
        handler: Callable[["EventLoop", Event], None],
        **data: Any,
    ) -> Event:
        """Enqueue an event; returns it (for :meth:`cancel`)."""
        if time_hours < self._clock.clock_hours:
            raise CloudError(
                f"cannot schedule {kind.name} at {time_hours}h: the "
                f"clock is already at {self._clock.clock_hours}h"
            )
        event = Event(
            time_hours=float(time_hours), kind=kind,
            seq=next(self._seq), handler=handler, data=dict(data),
        )
        heapq.heappush(
            self._heap, (event.time_hours, int(kind), event.seq, event)
        )
        return event

    def cancel(self, event: Event) -> None:
        """Drop a scheduled event (lazy removal; O(1))."""
        event.cancelled = True

    def run(
        self,
        until_hours: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in deterministic order; returns the count.

        The clock advances exactly once per distinct event time.  With
        ``until_hours`` the loop stops after the last event at or
        before that time and then advances the clock the rest of the
        way; with ``max_events`` it stops after that many dispatches.
        """
        processed = 0
        by_kind: dict[EventKind, int] = {}
        while self._heap:
            time_hours = self._heap[0][0]
            if until_hours is not None and time_hours > until_hours:
                break
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            delta = time_hours - self._clock.clock_hours
            if delta > 0.0:
                self._clock.advance(delta)
                note_sim_hours(self._clock.clock_hours)
            event.handler(self, event)
            processed += 1
            self.events_processed += 1
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            if self.recorder is not None:
                self.recorder.sample_rate(
                    SERIES_TRACKED, time_hours, self.events_processed,
                    help="cumulative tracked events dispatched",
                )
            if max_events is not None and processed >= max_events:
                break
        if until_hours is not None and until_hours > self._clock.clock_hours:
            self._clock.advance(until_hours - self._clock.clock_hours)
            note_sim_hours(self._clock.clock_hours)
        registry.counter(
            "fleet_events_total", "discrete events dispatched by event loops"
        ).inc(processed)
        for kind, count in sorted(by_kind.items()):
            registry.counter(
                f"fleet_events_{kind.name.lower()}_total",
                f"{kind.name} events across loop dispatch and churn",
            ).inc(count)
        return processed
