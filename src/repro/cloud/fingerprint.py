"""Device fingerprinting through process variation.

Assumption 2 requires the attacker to confirm they re-acquired the
victim's *physical* board.  The platform hides device identities, but
manufacturing variation does not: each die's vector of route delays is
unique and stable.  An attacker who measured a set of probe routes on a
device can later recognise that device by re-measuring the same probes
and correlating -- the "cloud FPGA fingerprinting techniques" the paper
cites for this step.

The fingerprint features are the TDC's mean falling/rising propagation
distances at a *fixed* set of theta values: a pure tenant-visible
observable.  Crucially, when probing a candidate device the attacker
must **replay the reference device's theta values**
(:meth:`~repro.designs.measure.MeasureSession.use_theta_init`) rather
than recalibrate -- per-device calibration re-centres the capture window
and cancels exactly the die-to-die delay differences that identify the
board.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AttackError
from repro.designs.measure import MeasureSession

#: Similarity threshold above which two fingerprints are declared the
#: same die.  Distinct dies differ by whole bins on most probes (delay
#: variation is tens of ps against a 2.8 ps bin), so genuine matches
#: score near 1 and impostors score far below.
MATCH_THRESHOLD = 0.85


@dataclass(frozen=True)
class RouteFingerprint:
    """Per-route (rising, falling) mean distances, in chain bins."""

    route_names: tuple[str, ...]
    features: np.ndarray  # shape (routes, 2)

    def __post_init__(self) -> None:
        if self.features.shape != (len(self.route_names), 2):
            raise AttackError(
                f"feature shape {self.features.shape} does not match "
                f"{len(self.route_names)} routes"
            )


def fingerprint_session(
    session: MeasureSession, repeats: int = 4
) -> RouteFingerprint:
    """Fingerprint the device behind a calibrated measure session.

    Each route is measured ``repeats`` times and the features averaged:
    per-sample jitter scales the feature noise down by sqrt(repeats),
    while the die-identifying delay offsets are deterministic and
    survive the mean.  Measurement is cheap (one batched capture per
    repeat), so a handful of repeats buys a fingerprint stable to small
    fractions of a bin.
    """
    if repeats < 1:
        raise AttackError("repeats must be >= 1")
    names = session.route_names
    features = np.zeros((len(names), 2))
    for i, name in enumerate(names):
        for _ in range(repeats):
            measurement = session.measure_route(name)
            features[i, 0] += measurement.rising_distance
            features[i, 1] += measurement.falling_distance
    features /= repeats
    return RouteFingerprint(route_names=tuple(names), features=features)


def match_score(reference: RouteFingerprint, probe: RouteFingerprint) -> float:
    """Similarity in [0, 1] between two fingerprints.

    Computed as an exponential kernel over the mean absolute feature
    distance in bins: identical dies re-measure within fractions of a
    bin; different dies disagree by several bins.
    """
    if reference.route_names != probe.route_names:
        raise AttackError("fingerprints cover different probe routes")
    distance = float(
        np.mean(np.abs(reference.features - probe.features))
    )
    return float(np.exp(-distance / 0.75))


def is_same_device(
    reference: RouteFingerprint,
    probe: RouteFingerprint,
    threshold: float = MATCH_THRESHOLD,
) -> bool:
    """Decision rule over :func:`match_score`."""
    return match_score(reference, probe) >= threshold
